//! Side-by-side comparison of the mostly-concurrent collector (CGC) and
//! the stop-the-world baseline (STW) on the jbb workload — the headline
//! experiment of the paper in miniature.
//!
//! ```sh
//! cargo run --release --example gc_compare [heap_mb] [warehouses] [seconds]
//! ```

use std::time::Duration;

use mcgc::workloads::jbb::{run_standalone, JbbOptions};
use mcgc::{CollectorMode, GcConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let heap_mb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let warehouses: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let seconds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let heap = heap_mb << 20;
    let mut opts = JbbOptions::sized_for(heap, warehouses, 0.6);
    opts.duration = Duration::from_secs(seconds);

    println!(
        "jbb: {heap_mb} MiB heap, {warehouses} warehouses, 60% residency, {seconds}s per run\n"
    );
    println!(
        "{:<10} {:>12} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "collector",
        "throughput",
        "cycles",
        "avg pause",
        "max pause",
        "avg mark",
        "avg wall",
        "occupancy"
    );

    for (name, mode) in [
        ("STW", CollectorMode::StopTheWorld),
        ("CGC", CollectorMode::Concurrent),
    ] {
        let mut cfg = GcConfig::with_heap_bytes(heap);
        cfg.mode = mode;
        let report = run_standalone(cfg, &opts);
        if std::env::var("MCGC_DUMP").is_ok() {
            for c in &report.log.cycles {
                println!(
                    "  cycle {:>3} {:<18} pause {:>6.1}ms mark {:>6.1} sweep {:>5.1} conc {:>8}KB stw {:>8}KB cards c/s {:>5}/{:<5} incr {:>4} tf {:.2} freeSTW {:>6}KB ovf {} def {} hs {}",
                    c.cycle,
                    format!("{:?}", c.trigger.unwrap()),
                    c.pause_ms, c.mark_ms, c.sweep_ms,
                    c.concurrent_traced_bytes() / 1024,
                    c.stw_traced_bytes / 1024,
                    c.cards_cleaned_concurrent, c.cards_cleaned_stw,
                    c.increments, c.tracing_factor(), c.free_at_stw_start/1024, c.overflows, c.deferred_objects, c.handshakes,
                );
            }
        }
        println!(
            "{:<10} {:>9.0} tx/s {:>8} {:>9.1} ms {:>9.1} ms {:>9.1} ms {:>9.1} ms {:>9.1}%",
            name,
            report.throughput(),
            report.log.cycles.len(),
            report.log.avg_pause_ms(),
            report.log.max_pause_ms(),
            report.log.avg_mark_ms(),
            report.log.avg(|c| c.pause_wall.as_secs_f64() * 1e3),
            report.log.avg_occupancy_after() * 100.0,
        );
    }
    println!("\npause times are work-model milliseconds (see DESIGN.md); the CGC");
    println!("pause should be a small fraction of the STW pause, at a modest");
    println!("throughput cost — the paper's Figure 1 shape.");
}
