//! Quickstart: create a collector, allocate a linked structure, watch a
//! concurrent collection happen, and read the cycle statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mcgc::{Gc, GcConfig, GcError, ObjectShape};

fn main() -> Result<(), GcError> {
    // 32 MiB heap, paper-default knobs: tracing rate 8.0, 1000 work
    // packets, 4 background threads, one concurrent card-cleaning pass.
    let gc = Gc::new(GcConfig::with_heap_bytes(32 << 20));
    let mut mutator = gc.register_mutator();

    // Build a live linked list: node = 1 ref slot + 2 data granules.
    let node = ObjectShape::new(1, 2, 0);
    let head = mutator.alloc(node)?;
    mutator.root_push(Some(head)); // shadow-stack root
    let mut tail = head;
    for i in 0..10_000 {
        let n = mutator.alloc(node)?;
        mutator.write_data(n, 0, i);
        mutator.write_ref(tail, 0, Some(n)); // write barrier
        tail = n;
    }

    // Churn garbage until the collector kicks off and completes cycles.
    let junk = ObjectShape::new(0, 30, 0);
    while gc.log().cycles.len() < 3 {
        for _ in 0..10_000 {
            mutator.alloc(junk)?;
        }
    }

    // The live list survived every cycle.
    let mut len = 1u64;
    let mut cur = head;
    while let Some(next) = mutator.read_ref(cur, 0) {
        len += 1;
        cur = next;
    }
    assert_eq!(len, 10_001);
    println!(
        "list intact after {} GC cycles: {len} nodes",
        gc.log().cycles.len()
    );

    println!("\ncycle  trigger            pause(ms)  mark(ms)  sweep(ms)  conc-traced(KB)");
    for c in gc.log().cycles {
        println!(
            "{:>5}  {:<17} {:>9.2} {:>9.2} {:>10.2} {:>16}",
            c.cycle,
            format!("{:?}", c.trigger.unwrap()),
            c.pause_ms,
            c.mark_ms,
            c.sweep_ms,
            c.concurrent_traced_bytes() / 1024,
        );
    }

    drop(mutator);
    gc.shutdown();
    Ok(())
}
