//! `gc_pressure` — drive a burst/trough allocation pattern against a
//! growable segmented heap and report its memory-pressure behaviour:
//! segment grow/shrink events, the peak segment count, emergency
//! (soft-limit) kickoffs, and allocation backpressure stalls.
//!
//! ```text
//! cargo run --release --example gc_pressure [bursts] [out.json]
//! ```
//!
//! The run self-validates the acceptance contract: every burst must
//! raise the committed-segment count past the initial reservation, and
//! every trough must return segments — the process exits non-zero
//! otherwise. The optional JSON output carries the machine-readable
//! summary that CI appends to EXPERIMENTS.md.

use mcgc::{Gc, GcConfig, ObjectShape};

fn main() {
    let mut args = std::env::args().skip(1);
    let bursts: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let out_path = args.next();

    // 2 MiB reserved, 256 KiB segments, 8 MiB hard limit, soft limit at
    // 3 MiB so each burst also forces an emergency kickoff.
    let mut cfg = GcConfig::with_heap_bytes(2 << 20);
    cfg.heap.segment_bytes = 256 << 10;
    cfg.heap.max_heap_bytes = 8 << 20;
    cfg.soft_limit_bytes = 3 << 20;
    let gc = Gc::new(cfg);
    let mut m = gc.register_mutator();

    let initial = gc.heap().segment_stats();
    println!(
        "gc_pressure: {} bursts; {} segments reserved ({} KiB each), hard limit {}",
        bursts,
        initial.initial,
        initial.seg_bytes >> 10,
        initial.max
    );

    let node = ObjectShape::new(1, 30, 0); // 32 granules = 256 B
    let mut peak_seen = initial.committed;
    let mut trough_failures = 0;
    for burst in 0..bursts {
        // Burst: ~3.5 MiB of live chain in the 2 MiB reservation.
        let head = m.alloc(node).expect("burst alloc");
        let slot = m.root_push(Some(head));
        let mut prev = head;
        let mut allocated = node.bytes();
        while allocated < (3 << 20) + (1 << 19) {
            let n = m.alloc(node).expect("burst alloc");
            m.write_ref(n, 0, Some(prev));
            m.root_set(slot, Some(n));
            prev = n;
            allocated += node.bytes();
        }
        let at_peak = gc.heap().segment_stats();
        peak_seen = peak_seen.max(at_peak.committed);
        // Trough: drop the chain and collect until the empties return.
        m.root_truncate(0);
        m.collect();
        m.collect();
        let at_trough = gc.heap().segment_stats();
        println!(
            "burst {}: {} -> {} segments at peak, {} after the trough",
            burst + 1,
            initial.initial,
            at_peak.committed,
            at_trough.committed
        );
        if at_peak.committed <= initial.initial || at_trough.committed >= at_peak.committed {
            trough_failures += 1;
        }
    }

    gc.telemetry_sample();
    let s: std::collections::BTreeMap<String, f64> =
        gc.telemetry().registry().sample().into_iter().collect();
    let stats = gc.heap().segment_stats();
    println!(
        "totals: peak {} segments, {} grows, {} shrinks, {} emergency kickoffs, {} stalls",
        stats.peak,
        stats.grows,
        stats.shrinks,
        s["gc_emergency_kickoffs_total"],
        s["gc_alloc_stalls_total"]
    );
    print!("{}", mcgc::heap::inspect(gc.heap()).render());
    drop(m);
    gc.shutdown();

    if let Some(path) = out_path {
        let json = format!(
            "{{\n  \"bursts\": {},\n  \"initial_segments\": {},\n  \"peak_segments\": {},\n  \
             \"final_segments\": {},\n  \"grow_events\": {},\n  \"shrink_events\": {},\n  \
             \"emergency_kickoffs\": {},\n  \"alloc_stalls\": {}\n}}\n",
            bursts,
            stats.initial,
            stats.peak,
            stats.committed,
            stats.grows,
            stats.shrinks,
            s["gc_emergency_kickoffs_total"],
            s["gc_alloc_stalls_total"]
        );
        std::fs::write(&path, json).expect("write json");
        println!("wrote {path}");
    }

    if trough_failures > 0 {
        eprintln!("gc_pressure: {trough_failures} burst(s) violated the grow-then-shrink contract");
        std::process::exit(1);
    }
    if stats.grows == 0 || stats.shrinks == 0 {
        eprintln!("gc_pressure: no grow/shrink events recorded");
        std::process::exit(1);
    }
}
