//! `gc_trace` — capture a flight-recorder trace from a short jbb run
//! and write it as Chrome trace-event JSON (load `trace.json` at
//! <https://ui.perfetto.dev> or `chrome://tracing`). The trace carries
//! one track per scheduler worker and mutator, pause
//! phases nested under their pause/cycle spans on the coordinator
//! track, and heap-occupancy counter tracks snapshotted at each cycle
//! boundary.
//!
//! ```text
//! cargo run --release --example gc_trace [seconds] [heap_mb] [out.json]
//! ```
//!
//! After the run the trace is validated against the trace-event schema
//! (the process exits non-zero if the exporter ever emits a malformed
//! or unbalanced trace), then the worst-pause postmortem and a final
//! heap-occupancy inspection are printed.

use std::sync::Arc;
use std::time::Duration;

use mcgc::telemetry::{export_chrome_trace, pause_postmortems, validate_chrome_trace};
use mcgc::workloads::jbb::{self, JbbOptions};
use mcgc::{Gc, GcConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let heap_mb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let out_path = args.next().unwrap_or_else(|| "trace.json".to_string());
    let heap = heap_mb << 20;

    let gc = Gc::new(GcConfig::with_heap_bytes(heap));
    let mut opts = JbbOptions::sized_for(heap, 2, 0.6);
    opts.duration = Duration::from_secs(secs);

    println!(
        "gc_trace: jbb workload, {heap_mb} MB heap, {} warehouses, {secs}s -> {out_path}",
        opts.warehouses
    );
    let report = {
        let gc = Arc::clone(&gc);
        std::thread::spawn(move || jbb::run(&gc, &opts))
            .join()
            .expect("workload thread")
    };
    gc.shutdown();
    gc.telemetry_sample();

    let rec = gc.telemetry().spans();
    let trace = export_chrome_trace(rec);
    let stats = match validate_chrome_trace(&trace) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("gc_trace: exported trace failed validation: {e}");
            std::process::exit(1);
        }
    };
    std::fs::write(&out_path, &trace).expect("write trace");
    println!(
        "wrote {out_path}: {} events ({} spans on {} tracks, {} counter points), {} cycles, \
         {:.0} tx/s",
        stats.events,
        stats.spans,
        stats.span_tracks,
        stats.counters,
        report.log.cycles.len(),
        report.throughput(),
    );

    // Worst pause = headline attribution; latest pause = full per-worker
    // detail (early cycles' worker job spans may have aged out of the
    // bounded per-thread rings on a long run, the coordinator phases
    // never do).
    let pms = pause_postmortems(rec);
    match pms.iter().max_by_key(|p| p.wall_ns) {
        Some(pm) => print!("\n--- worst pause ---\n{}", pm.render()),
        None => println!("\nno pauses recorded (heap large enough to never collect?)"),
    }
    if let Some(last) = pms.last() {
        print!("\n--- latest pause ---\n{}", last.render());
    }
    println!("\n--- final heap inspection ---");
    print!("{}", mcgc::heap::inspect(gc.heap()).render());
}
