//! Tuning walkthrough: how the collector's §3 knobs trade throughput for
//! pause time and floating garbage on a jbb-style workload.
//!
//! ```sh
//! cargo run --release --example tuning [heap_mb] [seconds]
//! ```

use std::time::Duration;

use mcgc::workloads::jbb::{run_standalone, JbbOptions};
use mcgc::{CollectorMode, GcConfig, SweepMode};

fn row(label: &str, cfg: GcConfig, opts: &JbbOptions) {
    let r = run_standalone(cfg, opts);
    println!(
        "{:<28} {:>9.0} tx/s {:>8.1} ms {:>8.1} ms {:>8.1}% {:>7}",
        label,
        r.throughput(),
        r.log.avg_pause_ms(),
        r.log.max_pause_ms(),
        r.log.avg_occupancy_after() * 100.0,
        r.log.cycles.len(),
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let heap_mb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let seconds: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let heap = heap_mb << 20;
    let mut opts = JbbOptions::sized_for(heap, 4, 0.6);
    opts.duration = Duration::from_secs_f64(seconds);

    println!("jbb, {heap_mb} MiB heap, 4 warehouses, {seconds}s per row\n");
    println!(
        "{:<28} {:>14} {:>11} {:>11} {:>9} {:>7}",
        "configuration", "throughput", "avg pause", "max pause", "occupancy", "cycles"
    );

    let base = |mode| {
        let mut c = GcConfig::with_heap_bytes(heap);
        c.mode = mode;
        c
    };

    row("STW baseline", base(CollectorMode::StopTheWorld), &opts);

    for rate in [1.0f64, 4.0, 8.0, 10.0] {
        let mut c = base(CollectorMode::Concurrent);
        c.tracing_rate = rate;
        row(&format!("CGC tracing rate {rate}"), c, &opts);
    }

    let mut c = base(CollectorMode::Concurrent);
    c.background_threads = 0;
    row("CGC no background threads", c, &opts);

    let mut c = base(CollectorMode::Concurrent);
    c.card_clean_passes = 2;
    row("CGC 2 card-cleaning passes", c, &opts);

    let mut c = base(CollectorMode::Concurrent);
    c.sweep = SweepMode::Lazy;
    row("CGC lazy sweep", c, &opts);

    let mut c = base(CollectorMode::Concurrent);
    c.pool.packets = 64;
    row("CGC only 64 work packets", c, &opts);

    println!("\nreading the table:");
    println!("- higher tracing rates start collection later: better throughput");
    println!("  and less floating garbage, at some risk of unfinished phases;");
    println!("- lazy sweep removes the sweep component from every pause;");
    println!("- starving the packet pool degrades load balancing (§6.3).");
}
