//! `gc_top` — a live, `top`-style one-line-per-second view of the
//! collector, driven entirely by the telemetry hub (event ring,
//! histograms, gauges). Runs a jbb-style workload in the background and
//! prints, each second: phase, cycle, pause p50/p99/max, minimum mutator
//! utilization, heap and packet-pool occupancy, bytes traced by
//! mutators/background/STW, and the pacer's §3 estimates.
//!
//! ```text
//! cargo run --release --example gc_top [seconds] [heap_mb]
//! ```
//!
//! End with a text + JSON export of the metrics registry.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use mcgc::workloads::jbb::{self, JbbOptions};
use mcgc::{Gc, GcConfig, Phase};

fn mb(v: f64) -> f64 {
    v / (1 << 20) as f64
}

/// Retired metric names the display still accepts: the scheduler's
/// `gc_sched_*` counters replaced the worker-gang's `gang_*` family,
/// and the drain wait replaced the per-phase barrier wait.
const METRIC_ALIASES: &[(&str, &str)] = &[
    ("gc_sched_workers", "gang_workers"),
    ("gc_sched_sessions_total", "gang_dispatches_total"),
    ("gc_sched_stalls_total", "gang_stalls_total"),
    (
        "gc_postmortem_drain_wait_ns",
        "gc_postmortem_barrier_wait_ns",
    ),
];

/// Reads a metric by its current (prefixed) name, falling back to the
/// pre-`gc_`/`heap_` convention alias (and the retired `gang_*` names)
/// so the display keeps working against registries serialized before
/// the renames.
fn metric(m: &BTreeMap<String, f64>, name: &str) -> f64 {
    if let Some(v) = m.get(name) {
        return *v;
    }
    if let Some((_, old)) = METRIC_ALIASES.iter().find(|(new, _)| *new == name) {
        if let Some(v) = m.get(*old) {
            return *v;
        }
    }
    if let Some(i) = name
        .strip_prefix("gc_sched_worker")
        .and_then(|rest| rest.strip_suffix("_items_total"))
    {
        if let Some(v) = m.get(&format!("gang_worker{i}_tasks_total")) {
            return *v;
        }
    }
    for prefix in ["gc_", "heap_"] {
        if let Some(old) = name.strip_prefix(prefix) {
            if let Some(v) = m.get(old) {
                return *v;
            }
        }
    }
    0.0
}

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let heap_mb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let heap = heap_mb << 20;

    let gc = Gc::new(GcConfig::with_heap_bytes(heap));
    let mut opts = JbbOptions::sized_for(heap, 2, 0.6);
    opts.duration = Duration::from_secs(secs);

    println!(
        "gc_top: jbb workload, {heap_mb} MB heap, {} warehouses, {secs}s",
        opts.warehouses
    );
    println!(
        "{:<4} {:>5} {:>5}  {:>9} {:>9} {:>9}  {:>6}  {:>5} {:>5}  {:>7} {:>7} {:>7}  {:>5} {:>7} {:>7} {:>6}",
        "sec", "phase", "cycle", "p50ms", "p99ms", "maxms", "mmu1s", "heap%", "pool%",
        "mu_MB", "bg_MB", "stw_MB", "K0", "L_MB", "M_MB", "B"
    );

    let worker = {
        let gc = Arc::clone(&gc);
        std::thread::spawn(move || jbb::run(&gc, &opts))
    };

    let mut sec = 0u64;
    while !worker.is_finished() {
        std::thread::sleep(Duration::from_secs(1));
        sec += 1;
        gc.telemetry_sample();
        let tel = gc.telemetry();
        let pauses = tel.pause_histogram().snapshot();
        let mmu = tel.minimum_mutator_utilization(1_000_000_000);
        let m: BTreeMap<String, f64> = tel.registry().sample().into_iter().collect();
        let g = |name: &str| metric(&m, name);
        println!(
            "{:<4} {:>5} {:>5}  {:>9.2} {:>9.2} {:>9.2}  {:>6.3}  {:>5.1} {:>5.2}  {:>7.1} {:>7.1} {:>7.1}  {:>5.1} {:>7.1} {:>7.1} {:>6.3}",
            sec,
            match gc.phase() {
                Phase::Concurrent => "CONC",
                Phase::Idle => "idle",
            },
            g("gc_cycle") as u64,
            pauses.p50 as f64 / 1e6,
            pauses.p99 as f64 / 1e6,
            pauses.max as f64 / 1e6,
            mmu,
            g("heap_occupancy") * 100.0,
            g("gc_pool_occupancy") * 100.0,
            mb(g("gc_traced_mutator_bytes_total")),
            mb(g("gc_traced_background_bytes_total")),
            mb(g("gc_traced_stw_bytes_total")),
            g("gc_pacer_k0"),
            mb(g("gc_pacer_l_bytes")),
            mb(g("gc_pacer_m_bytes")),
            g("gc_pacer_b"),
        );
    }
    let report = worker.join().expect("workload thread");
    gc.shutdown();
    gc.telemetry_sample();

    println!(
        "\nworkload: {:.0} tx/s over {:.1}s, {} cycles",
        report.throughput(),
        report.wall.as_secs_f64(),
        report.log.cycles.len()
    );
    // Degraded-mode health: all zeros on a healthy run; non-zero rows
    // show the resilience machinery (escalation ladder, pause watchdog,
    // handshake timeout fallback, overflow backoff) actually engaging.
    let m: BTreeMap<String, f64> = gc.telemetry().registry().sample().into_iter().collect();
    let g = |name: &str| metric(&m, name) as u64;
    println!("\n--- degraded-mode counters ---");
    println!(
        "alloc ladder : {} retries, rungs lazy/finish/stw {}/{}/{}, {} OOMs",
        g("gc_alloc_retry_total"),
        g("gc_alloc_rung_lazy_total"),
        g("gc_alloc_rung_finish_total"),
        g("gc_alloc_rung_stw_total"),
        g("gc_alloc_oom_total"),
    );
    println!(
        "watchdog     : {} packets reclaimed from stalled tracers ({} alive)",
        g("gc_watchdog_reclaimed_packets_total"),
        g("gc_bg_tracers_alive"),
    );
    println!(
        "handshakes   : {} acked, {} timed out into the global fence",
        g("gc_handshake_acks_total"),
        g("gc_handshake_timeouts_total"),
    );
    println!(
        "pool         : {} overflow backoffs, {} input / {} output packet claims",
        g("gc_pool_overflow_backoffs_total"),
        g("gc_pool_input_claims_total"),
        g("gc_pool_output_claims_total"),
    );
    println!(
        "alloc shards : {} shards, {} contended locks, {} refill steals, {} wilderness refills",
        g("heap_alloc_shards"),
        g("heap_alloc_shard_lock_contention_total"),
        g("heap_alloc_refill_steals_total"),
        g("heap_alloc_wilderness_refills_total"),
    );
    // Scheduler utilization: per-worker claimed item counts show the
    // atomic-cursor load balancing; stalls come from the chaos site.
    // One session (= one wakeup round) per pause is the design point.
    let claimed: Vec<String> = (0..g("gc_sched_workers") as usize)
        .map(|i| g(&format!("gc_sched_worker{i}_items_total")).to_string())
        .collect();
    println!(
        "scheduler    : {} workers ({} pool threads), {} sessions, {} wakeups, {} stalls, claims/worker [{}]",
        g("gc_sched_workers"),
        g("gc_sched_pool_threads"),
        g("gc_sched_sessions_total"),
        g("gc_sched_wakeups_total"),
        g("gc_sched_stalls_total"),
        claimed.join(" "),
    );
    // Per-bucket runs/items: which work buckets each session opened and
    // how much was claimed out of them across all workers.
    let buckets: Vec<String> = [
        "cards",
        "roots",
        "drain",
        "sweep",
        "flood",
        "clear_bits",
        "straggler",
    ]
    .iter()
    .filter_map(|name| {
        let runs = g(&format!("gc_sched_bucket_{name}_runs_total"));
        let items = g(&format!("gc_sched_bucket_{name}_items_total"));
        (runs > 0).then(|| format!("{name} {runs}r/{items}i"))
    })
    .collect();
    println!("sched buckets: {}", buckets.join(", "));
    println!(
        "pause phases : cards {}ms roots {}ms drain {}ms sweep {}ms clear {}ms (wall, cumulative)",
        g("gc_pause_cards_ns_total") / 1_000_000,
        g("gc_pause_roots_ns_total") / 1_000_000,
        g("gc_pause_drain_ns_total") / 1_000_000,
        g("gc_pause_sweep_ns_total") / 1_000_000,
        g("gc_pause_clear_ns_total") / 1_000_000,
    );
    // Sweep-epoch split: with lazy sweep, reclamation should land almost
    // entirely off-pause (refill + background), with a small straggler
    // remainder drained just before the next cycle.
    println!(
        "sweep epochs : reclaimed {:.1}/{:.1} MiB on/off-pause; chunks refill {} bg {} straggler {} ({}ms fences)",
        metric(&m, "gc_sweep_reclaimed_on_pause_granules_total") * mcgc::heap::GRANULE_BYTES as f64
            / (1 << 20) as f64,
        metric(&m, "gc_sweep_reclaimed_off_pause_granules_total")
            * mcgc::heap::GRANULE_BYTES as f64
            / (1 << 20) as f64,
        g("gc_sweep_on_refill_chunks_total"),
        g("gc_bg_sweep_chunks_total"),
        g("gc_sweep_straggler_chunks_total"),
        g("gc_sweep_straggler_ns_total") / 1_000_000,
    );
    println!(
        "postmortem   : worst pause {:.2}ms, {:.0}% attributed, imbalance {:.2}, drain wait {:.2}ms",
        metric(&m, "gc_postmortem_pause_wall_ns") / 1e6,
        metric(&m, "gc_postmortem_coverage") * 100.0,
        metric(&m, "gc_postmortem_worst_imbalance"),
        metric(&m, "gc_postmortem_drain_wait_ns") / 1e6,
    );
    // The flight recorder's full attribution for the worst pause —
    // per-phase wall shares and per-worker busy/idle splits.
    if let Some(pm) = mcgc::telemetry::trace_export::worst_pause_postmortem(gc.telemetry().spans())
    {
        println!("\n--- worst-pause postmortem ---\n{}", pm.render());
    }

    println!(
        "\n--- registry (text) ---\n{}",
        gc.telemetry().registry().render_text()
    );
    println!(
        "--- registry (json) ---\n{}",
        gc.telemetry().registry().render_json()
    );
}
