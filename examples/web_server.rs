//! A latency-sensitive "web application server" — the workload class the
//! paper targets (§1: servers that "must provide relatively fast
//! responses to client requests and scale to support thousands of
//! clients"). Worker threads serve simulated requests; request tail
//! latency shows how collector pauses surface to clients.
//!
//! ```sh
//! cargo run --release --example web_server [workers] [seconds]
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcgc::{CollectorMode, Gc, GcConfig, GcError, Mutator, ObjectShape};
use std::sync::Mutex;

const HEAP: usize = 48 << 20;

/// Handles one "request": build a session object graph, do some work
/// over it, keep a fraction in the session cache (live set), drop the
/// rest.
fn handle_request(
    m: &mut Mutator,
    cache_ring: mcgc::ObjectRef,
    slot: u32,
    reqno: u64,
) -> Result<(), GcError> {
    let session = m.alloc(ObjectShape::new(4, 8, 1))?;
    let root = m.root_push(Some(session));
    for i in 0..4 {
        let part = m.alloc_into(session, i, ObjectShape::new(0, 24, 2))?;
        m.write_data(part, 0, reqno);
    }
    // "Render the response": touch every byte we allocated.
    for i in 0..4 {
        let part = m.read_ref(session, i).expect("part");
        let mut acc = 0u64;
        for d in 0..24 {
            acc = acc.wrapping_add(m.read_data(part, d));
        }
        m.write_data(part, 1, acc);
    }
    // One request in 8 is a "login": its session goes in the cache ring,
    // displacing an old session (bounded live set).
    if reqno.is_multiple_of(8) {
        m.write_ref(cache_ring, slot, Some(session));
    }
    m.root_truncate(root);
    Ok(())
}

fn serve(mode: CollectorMode, workers: usize, run_for: Duration) -> (Vec<Duration>, usize) {
    let mut cfg = GcConfig::with_heap_bytes(HEAP);
    cfg.mode = mode;
    let gc = Gc::new(cfg);
    let stop = AtomicBool::new(false);
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..workers {
            let gc = Arc::clone(&gc);
            let stop = &stop;
            let latencies = &latencies;
            s.spawn(move || {
                let mut m = gc.register_mutator();
                let ring = m.alloc(ObjectShape::new(64, 0, 3)).expect("ring");
                m.root_push(Some(ring));
                let mut local = Vec::new();
                let mut reqno = w as u64;
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    if handle_request(&mut m, ring, (reqno % 64) as u32, reqno).is_err() {
                        break;
                    }
                    local.push(t0.elapsed());
                    reqno += 1;
                }
                latencies.lock().unwrap().append(&mut local);
            });
        }
        std::thread::sleep(run_for);
        stop.store(true, Ordering::SeqCst);
    });
    let cycles = gc.log().cycles.len();
    gc.shutdown();
    let mut all = latencies.into_inner().unwrap();
    all.sort_unstable();
    (all, cycles)
}

fn pct(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p) as usize;
    sorted[idx].as_secs_f64() * 1e6
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let seconds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    println!("simulated app server: {workers} workers, {seconds}s per collector, 48 MiB heap\n");
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "collector", "requests", "cycles", "p50 (us)", "p99 (us)", "p99.9 (us)", "max (us)"
    );
    for (name, mode) in [
        ("STW", CollectorMode::StopTheWorld),
        ("CGC", CollectorMode::Concurrent),
    ] {
        let (lat, cycles) = serve(mode, workers, Duration::from_secs(seconds));
        println!(
            "{:<10} {:>10} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            name,
            lat.len(),
            cycles,
            pct(&lat, 0.50),
            pct(&lat, 0.99),
            pct(&lat, 0.999),
            pct(&lat, 1.0),
        );
    }
    println!("\nthe tail (p99.9/max) is where stop-the-world pauses land on");
    println!("clients; the mostly concurrent collector trims it (paper §1's");
    println!("motivation for server-oriented GC).");
}
