//! End-to-end flight-recorder tests: a live collector must emit a trace
//! that validates against the Chrome trace-event schema with the
//! expected tracks, the worst-pause postmortem must attribute (nearly)
//! all pause wall time to phase spans — the ISSUE's ≥ 95% acceptance
//! criterion — and every registry metric must follow the
//! `gc_`/`heap_` naming convention.

use std::collections::BTreeMap;

use mcgc::telemetry::trace_export::worst_pause_postmortem;
use mcgc::telemetry::{export_chrome_trace, validate_chrome_trace, SpanKind};
use mcgc::{Gc, GcConfig, ObjectShape};

fn small_config() -> GcConfig {
    let mut c = GcConfig::with_heap_bytes(4 << 20);
    c.background_threads = 1;
    c.stw_workers = 2;
    c
}

/// Churns allocations until at least `cycles` collections completed.
fn churn(gc: &std::sync::Arc<Gc>, cycles: usize) {
    let mut m = gc.register_mutator();
    let keep = m.alloc(ObjectShape::new(1, 20, 0)).unwrap();
    m.root_push(Some(keep));
    let junk = ObjectShape::new(0, 30, 0);
    while gc.log().cycles.len() < cycles {
        for _ in 0..2_000 {
            m.alloc(junk).unwrap();
        }
    }
}

/// A live run's exported trace validates, and carries the coordinator
/// track (cycle + pause-phase spans), at least one scheduler-worker
/// track, and heap counter tracks.
#[test]
fn live_trace_validates_with_expected_tracks() {
    let gc = Gc::new(small_config());
    churn(&gc, 3);
    gc.shutdown();
    let rec = gc.telemetry().spans();

    let trace = export_chrome_trace(rec);
    let stats = validate_chrome_trace(&trace).expect("live trace validates");
    assert!(stats.spans > 0, "trace has spans");
    assert!(stats.span_tracks >= 2, "coordinator + at least one worker");
    assert!(stats.counters > 0, "heap inspection counter points");
    assert!(trace.contains("\"gc coordinator\""));
    assert!(
        trace.contains("mcgc-sched-"),
        "scheduler worker track present"
    );
    assert!(trace.contains("\"heap_occupancy\""));

    // The coordinator track holds the nested pause-phase spans.
    let spans = rec.all_spans();
    for kind in [SpanKind::Cycle, SpanKind::Pause, SpanKind::PauseSweep] {
        assert!(
            spans.iter().any(|(_, s)| s.kind == kind),
            "missing {kind:?} span"
        );
    }
}

/// The acceptance criterion: the worst recorded pause attributes at
/// least 95% of its wall time to pause-phase spans.
#[test]
fn worst_pause_postmortem_attributes_wall_time() {
    let gc = Gc::new(small_config());
    churn(&gc, 4);
    gc.shutdown();
    let pm = worst_pause_postmortem(gc.telemetry().spans()).expect("pauses recorded");
    assert!(pm.wall_ns > 0);
    assert!(
        pm.coverage >= 0.95,
        "phase spans cover {:.1}% of the worst pause (need >= 95%)",
        pm.coverage * 100.0
    );
    assert!(!pm.phases.is_empty());
    // Postmortem gauges are published through the registry.
    gc.telemetry_sample();
    let m: BTreeMap<String, f64> = gc.telemetry().registry().sample().into_iter().collect();
    assert!(m["gc_postmortem_coverage"] >= 0.95);
    assert!(m["gc_postmortem_pause_wall_ns"] > 0.0);
}

/// Every metric the registry samples follows the `gc_`/`heap_` prefix
/// convention (the PR 6 naming audit; new metrics must comply — the
/// scheduler's counters live under `gc_sched_`).
#[test]
fn registry_metric_names_follow_prefix_convention() {
    let gc = Gc::new(small_config());
    churn(&gc, 2);
    gc.shutdown();
    gc.telemetry_sample();
    let offenders: Vec<String> = gc
        .telemetry()
        .registry()
        .sample()
        .into_iter()
        .map(|(name, _)| name)
        .filter(|n| !["gc_", "heap_"].iter().any(|p| n.starts_with(p)))
        .collect();
    assert!(
        offenders.is_empty(),
        "metrics violating the prefix convention: {offenders:?}"
    );
}

/// Disabling telemetry silences the flight recorder too, and collection
/// still works.
#[test]
fn disabled_recorder_stays_silent() {
    let gc = Gc::new(small_config());
    gc.telemetry().set_enabled(false);
    churn(&gc, 2);
    gc.shutdown();
    assert!(gc.log().cycles.len() >= 2);
    let rec = gc.telemetry().spans();
    assert!(rec.all_spans().is_empty(), "no spans while disabled");
    assert!(
        rec.counter_points().is_empty(),
        "no counters while disabled"
    );
}
