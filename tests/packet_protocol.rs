//! End-to-end tests of the §4 work-packet protocol and the §5 fence
//! protocols as exercised by the collector.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mcgc::membar::FenceStats;
use mcgc::packets::{PacketPool, PoolConfig, PushOutcome, WorkBuffer};
use mcgc::workloads::rng::SmallRng;
use mcgc::{Gc, GcConfig, ObjectShape};

/// §4.3 termination: after arbitrary single-threaded push/pop sequences,
/// the pool reports completion exactly when no work remains anywhere.
/// Sequences come from the in-repo seeded PRNG (256 cases).
#[test]
fn termination_matches_reality_proptest() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E51_0000 + seed);
        let pool: PacketPool<u64> = PacketPool::new(PoolConfig {
            packets: 16,
            capacity: 8,
        });
        let mut buf = WorkBuffer::new(&pool);
        let mut outstanding = 0u64;
        let mut next = 0u64;
        for _ in 0..rng.gen_range_usize(1, 500) {
            if rng.gen_bool() {
                if let PushOutcome::Pushed = buf.push(next) {
                    outstanding += 1;
                    next += 1;
                }
            } else if buf.pop().is_some() {
                outstanding -= 1;
            }
        }
        while buf.pop().is_some() {
            outstanding -= 1;
        }
        buf.finish();
        assert_eq!(outstanding, 0, "seed {seed}");
        assert!(pool.is_tracing_complete(), "seed {seed}");
    }
}

/// Many concurrent producer/consumer threads over a small pool: every
/// item is consumed exactly once and termination is detected.
#[test]
fn stress_no_loss_no_duplication() {
    let pool: Arc<PacketPool<u64>> = Arc::new(PacketPool::new(PoolConfig {
        packets: 48,
        capacity: 16,
    }));
    let total_items = 40_000u64;
    let seen: Vec<_> = (0..total_items).map(|_| AtomicBool::new(false)).collect();
    std::thread::scope(|s| {
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let mut buf = WorkBuffer::new(&pool);
                let per = total_items / 4;
                for i in (t * per)..((t + 1) * per) {
                    loop {
                        match buf.push(i) {
                            PushOutcome::Pushed => break,
                            PushOutcome::Overflow(_) => std::thread::yield_now(),
                        }
                    }
                }
            });
        }
        for _ in 0..3 {
            let pool = Arc::clone(&pool);
            let seen = &seen;
            s.spawn(move || {
                let mut buf = WorkBuffer::new(&pool);
                let mut idle = 0;
                while idle < 1000 {
                    match buf.pop() {
                        Some(i) => {
                            idle = 0;
                            let was = seen[i as usize].swap(true, Ordering::Relaxed);
                            assert!(!was, "item {i} consumed twice");
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
    let consumed = seen.iter().filter(|b| b.load(Ordering::Relaxed)).count() as u64;
    let left = pool.stats().entries as u64;
    assert_eq!(consumed + left, total_items);
}

/// §5.1/§5.2 fence batching at the system level: a jbb-style run emits
/// far fewer fences than the naive one-per-object/one-per-write scheme
/// would, and every §5 fence category shows up.
#[test]
fn fence_batching_reduces_fence_count() {
    let heap = 16 << 20;
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.background_threads = 1;
    let gc = Gc::new(cfg);
    let before = FenceStats::snapshot();
    let objects_before = gc.heap().objects_allocated();
    {
        let mut m = gc.register_mutator();
        let shape = ObjectShape::new(1, 3, 0);
        let keep = m.alloc(shape).unwrap();
        m.root_push(Some(keep));
        for i in 0..200_000u64 {
            let o = m.alloc(shape).unwrap();
            if i % 7 == 0 {
                m.write_ref(keep, 0, Some(o)); // write barrier, no fence
            }
        }
    }
    let fences = FenceStats::snapshot().since(&before);
    let objects = gc.heap().objects_allocated() - objects_before;
    let barrier_stores = gc.heap().cards().dirty_store_count();
    // Naive scheme: one fence per allocated object + one per barrier.
    let naive = objects + barrier_stores;
    assert!(
        fences.total() * 20 < naive,
        "batched fences {} should be <5% of naive {}",
        fences.total(),
        naive
    );
    // Allocation batches dominate and are roughly one per cache of
    // objects, not one per object.
    assert!(fences.alloc_batch > 0);
    assert!(
        fences.alloc_batch < objects / 10,
        "alloc fences {} vs objects {}",
        fences.alloc_batch,
        objects
    );
    gc.shutdown();
}

/// §5.2 deferral end-to-end: objects referenced before their allocation
/// bits are published get deferred, then traced later — never lost.
#[test]
fn deferred_objects_are_eventually_traced() {
    let heap = 12 << 20;
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.background_threads = 2;
    cfg.tracing_rate = 2.0; // long concurrent phases: more deferral windows
    let gc = Gc::new(cfg);
    let mut m = gc.register_mutator();
    let node = ObjectShape::new(1, 1, 0);
    let junk = ObjectShape::new(0, 20, 0);
    // A chain extended object-by-object: each new node is referenced from
    // a published node the instant it is allocated (before its own bit is
    // published), which is the §5.2 hazard window.
    let head = m.alloc(node).unwrap();
    m.root_push(Some(head));
    let mut tail = head;
    for _ in 0..20_000 {
        let n = m.alloc(node).unwrap();
        m.write_ref(tail, 0, Some(n));
        tail = n;
        for _ in 0..4 {
            m.alloc(junk).unwrap();
        }
    }
    let cycles = gc.log();
    assert!(!cycles.cycles.is_empty());
    // The chain is fully intact.
    let mut len = 1;
    let mut cur = head;
    while let Some(next) = m.read_ref(cur, 0) {
        len += 1;
        cur = next;
    }
    assert_eq!(len, 20_001);
    drop(m);
    gc.shutdown();
}

/// The §6.3 watermarks are recorded and plausible: packet memory use is
/// a tiny fraction of the heap.
#[test]
fn packet_memory_watermarks_small() {
    let heap = 16 << 20;
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.background_threads = 2;
    let gc = Gc::new(cfg);
    {
        let mut m = gc.register_mutator();
        let node = ObjectShape::new(2, 1, 0);
        let root = m.alloc(node).unwrap();
        m.root_push(Some(root));
        // A wide tree (BFS-hostile) plus churn to force cycles.
        let mut frontier = vec![root];
        for _ in 0..6 {
            let mut next = Vec::new();
            for &p in &frontier {
                for s in 0..2 {
                    next.push(m.alloc_into(p, s, node).unwrap());
                }
            }
            frontier = next;
        }
        let junk = ObjectShape::new(0, 30, 0);
        for _ in 0..120_000 {
            m.alloc(junk).unwrap();
        }
    }
    let log = gc.log();
    assert!(!log.cycles.is_empty());
    let max_entries = log
        .cycles
        .iter()
        .map(|c| c.packet_entries_watermark)
        .max()
        .unwrap();
    // Entry = 8 bytes; §6.3 found 0.11%-0.25% of heap. Allow 2%.
    let bytes = max_entries * 8;
    assert!(
        bytes < heap / 50,
        "packet memory watermark {bytes} B too large for {heap} B heap"
    );
    gc.shutdown();
}
