//! Memory-pressure resilience tests (tier-1, no special features):
//! segmented heap growth under an allocation burst, occupancy-driven
//! shrink after the trough, soft-limit emergency kickoff, and the
//! bounded allocation-backpressure stall at the hard limit.

use std::time::{Duration, Instant};

use mcgc::{Gc, GcConfig, GcError, Mutator, ObjectShape, SweepMode};

/// A small growable configuration: 2 MiB reserved, 256 KiB segments,
/// 8 MiB hard limit.
fn growable(sweep: SweepMode) -> GcConfig {
    let mut c = GcConfig::with_heap_bytes(2 << 20);
    c.heap.segment_bytes = 256 << 10;
    c.heap.max_heap_bytes = 8 << 20;
    c.background_threads = 1;
    c.stw_workers = 2;
    c.sweep = sweep;
    c
}

/// Builds a rooted chain of `bytes` worth of live 256 B nodes, growing
/// the heap on demand through the escalation ladder.
fn fill_live(m: &mut Mutator, bytes: usize) -> Result<(), GcError> {
    let node = ObjectShape::new(1, 30, 0);
    let head = m.alloc(node)?;
    let slot = m.root_push(Some(head));
    let mut prev = head;
    let mut allocated = node.bytes();
    while allocated < bytes {
        let n = m.alloc(node)?;
        m.write_ref(n, 0, Some(prev));
        m.root_set(slot, Some(n));
        prev = n;
        allocated += node.bytes();
    }
    Ok(())
}

fn counter(gc: &std::sync::Arc<Gc>, name: &str) -> f64 {
    gc.telemetry_sample();
    gc.telemetry()
        .registry()
        .sample()
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("no metric named {name}"))
}

/// The acceptance scenario: an allocation burst raises the segment count
/// past the initial reservation via the grow rung, and the trough after
/// it returns the empty segments at the next full collections.
#[test]
fn burst_grows_then_trough_shrinks() {
    for sweep in [SweepMode::Eager, SweepMode::Lazy] {
        let gc = Gc::new(growable(sweep));
        let initial = gc.heap().segment_stats();
        assert_eq!(initial.committed, initial.initial);

        // Burst: ~3 MiB of live data in a 2 MiB reservation.
        let mut m = gc.register_mutator();
        fill_live(&mut m, 3 << 20).unwrap();
        let peak = gc.heap().segment_stats();
        assert!(
            peak.committed > initial.committed,
            "{sweep:?}: burst never grew the heap ({} segments)",
            peak.committed
        );
        assert!(peak.grows > 0, "{sweep:?}: no grow events");
        assert!(counter(&gc, "gc_alloc_rung_grow_total") >= 1.0);
        assert!(counter(&gc, "heap_segments_committed") > initial.committed as f64);

        // Trough: drop the chain; full collections release the empties.
        m.root_truncate(0);
        m.collect();
        m.collect();
        let after = gc.heap().segment_stats();
        assert!(
            after.committed < peak.committed,
            "{sweep:?}: trough returned no segments ({} committed)",
            after.committed
        );
        assert!(after.shrinks > 0, "{sweep:?}: no shrink events");
        assert!(
            after.committed >= after.initial,
            "{sweep:?}: shrink went below the initial reservation"
        );
        assert_eq!(after.peak, peak.committed.max(after.peak));
        assert!(counter(&gc, "heap_segment_shrinks_total") >= 1.0);
        assert!(counter(&gc, "heap_segments_peak") > initial.initial as f64);

        // The shrunken heap still works.
        fill_live(&mut m, 1 << 20).unwrap();
        m.root_truncate(0);
        drop(m);
        gc.audit_now();
        gc.shutdown();
    }
}

/// Crossing the soft limit starts an emergency cycle even though the
/// pacer's own kickoff threshold has not been reached.
#[test]
fn soft_limit_triggers_emergency_kickoff() {
    let mut cfg = GcConfig::with_heap_bytes(16 << 20);
    cfg.background_threads = 1;
    cfg.stw_workers = 2;
    // With 16 MiB of headroom the pacer would not collect for a 2 MiB
    // chain; the soft limit must force it to.
    cfg.soft_limit_bytes = 1 << 20;
    let gc = Gc::new(cfg);
    let mut m = gc.register_mutator();
    fill_live(&mut m, 2 << 20).unwrap();
    assert!(
        counter(&gc, "gc_emergency_kickoffs_total") >= 1.0,
        "soft limit never forced a kickoff"
    );
    assert!(gc.cycle() >= 1, "no cycle ran");
    m.root_truncate(0);
    // Finish the in-flight emergency cycle: the audit below needs a
    // quiescent point, and with the soft limit permanently crossed a
    // cycle is almost certainly active here.
    m.collect();
    drop(m);
    gc.audit_now();
    gc.shutdown();
}

/// At the hard limit (no growth configured) the ladder's final rung is
/// one bounded backpressure stall: the failing request returns a typed
/// OOM carrying the segment map and ladder history, within a deadline —
/// never an unbounded hang.
#[test]
fn hard_limit_stall_is_bounded_and_oom_is_typed() {
    let mut cfg = GcConfig::with_heap_bytes(2 << 20); // max_heap_bytes: 0
    cfg.background_threads = 1;
    cfg.stw_workers = 2;
    cfg.alloc_stall_deadline = Duration::from_millis(50);
    let gc = Gc::new(cfg);
    let mut m = gc.register_mutator();
    let started = Instant::now();
    let err = fill_live(&mut m, 4 << 20).expect_err("live data past a fixed heap must OOM");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "ladder took {:?}: stall not bounded",
        started.elapsed()
    );
    match err {
        GcError::OutOfMemory {
            stalled,
            grows,
            full_collections,
            segments_committed,
            segments_max,
            segment_map,
            ..
        } => {
            assert!(stalled, "the bounded stall never ran");
            assert_eq!(grows, 0, "a fixed heap must not grow");
            assert!(full_collections >= 1, "ladder skipped collections");
            assert_eq!(segments_committed, segments_max, "heap not at its limit");
            assert_ne!(segment_map, 0, "empty segment map in the snapshot");
        }
    }
    let msg = err.to_string();
    assert!(msg.contains("requested"), "no request context: {msg}");
    assert!(msg.contains("occupied"), "no occupancy context: {msg}");
    assert!(msg.contains("segments"), "no segment context: {msg}");
    assert!(counter(&gc, "gc_alloc_stalls_total") >= 1.0);
    // The collector survives the OOM.
    m.root_truncate(0);
    m.collect();
    let ok = m.alloc(ObjectShape::new(0, 4, 0)).unwrap();
    m.root_push(Some(ok));
    drop(m);
    gc.audit_now();
    gc.shutdown();
}

/// OOM context reaches `main` through the error trait objects most
/// servers funnel errors into.
#[test]
fn oom_context_survives_boxing() {
    let mut cfg = GcConfig::with_heap_bytes(1 << 20);
    cfg.background_threads = 1;
    cfg.stw_workers = 2;
    cfg.alloc_stall_deadline = Duration::from_millis(10);
    let gc = Gc::new(cfg);
    let mut m = gc.register_mutator();
    let err = fill_live(&mut m, 2 << 20).expect_err("must OOM");
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    let msg = boxed.to_string();
    assert!(msg.contains("segments committed"), "context lost: {msg}");
    assert!(msg.contains("ladder"), "ladder history lost: {msg}");
    m.root_truncate(0);
    drop(m);
    gc.shutdown();
}
