//! Property-based tests of the §3 pacing formulas.

use mcgc::{GcConfig, Pacer};
use proptest::prelude::*;

fn pacer_with(k0: f64, heap: usize) -> Pacer {
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.tracing_rate = k0;
    Pacer::new(&cfg, heap)
}

proptest! {
    /// The effective tracing rate is always within [0, Kmax].
    #[test]
    fn rate_bounded(
        k0 in 1.0f64..10.0,
        traced in 0u64..(1 << 30),
        free in 1u64..(1 << 30),
        bg in prop::collection::vec((0u64..(1<<24), 1u64..(1<<24)), 0..10),
    ) {
        let mut p = pacer_with(k0, 256 << 20);
        for (t, a) in bg {
            p.observe_background(t, a);
        }
        let k = p.tracing_rate(traced, free);
        prop_assert!(k >= 0.0, "negative rate {}", k);
        prop_assert!(k <= 2.0 * k0 + 1e-9, "rate {} exceeds Kmax {}", k, 2.0 * k0);
    }

    /// More background credit never increases the mutator rate.
    #[test]
    fn background_credit_monotone(
        traced in 0u64..(1 << 28),
        free in 1u64..(1 << 28),
        ratio_a in 0.0f64..4.0,
        ratio_b in 0.0f64..4.0,
    ) {
        let (lo, hi) = if ratio_a <= ratio_b { (ratio_a, ratio_b) } else { (ratio_b, ratio_a) };
        let mut p_lo = pacer_with(8.0, 256 << 20);
        let mut p_hi = pacer_with(8.0, 256 << 20);
        for _ in 0..30 {
            p_lo.observe_background((lo * 1e6) as u64, 1_000_000);
            p_hi.observe_background((hi * 1e6) as u64, 1_000_000);
        }
        prop_assert!(
            p_hi.tracing_rate(traced, free) <= p_lo.tracing_rate(traced, free) + 1e-9
        );
    }

    /// Kickoff threshold scales inversely with K0: higher desired rates
    /// start the cycle later (§6.2's observation that rate 1 starts
    /// immediately and rate 10 starts near heap-full).
    #[test]
    fn kickoff_inverse_in_k0(k0a in 1.0f64..10.0, k0b in 1.0f64..10.0) {
        prop_assume!((k0a - k0b).abs() > 0.1);
        let pa = pacer_with(k0a, 64 << 20);
        let pb = pacer_with(k0b, 64 << 20);
        let (hi_rate, lo_rate) = if k0a > k0b { (&pa, &pb) } else { (&pb, &pa) };
        prop_assert!(hi_rate.kickoff_threshold() < lo_rate.kickoff_threshold());
    }

    /// Smoothing converges to a constant observation.
    #[test]
    fn estimates_converge(l in 1u64..(1 << 28), m in 1u64..(1 << 24)) {
        let mut p = pacer_with(8.0, 256 << 20);
        for _ in 0..100 {
            p.end_cycle(l, m);
        }
        prop_assert!((p.l_est() - l as f64).abs() < l as f64 * 0.01 + 2.0);
        prop_assert!((p.m_est() - m as f64).abs() < m as f64 * 0.01 + 2.0);
    }

    /// The quota never exceeds Kmax times the allocation.
    #[test]
    fn quota_bounded(alloc in 1u64..(1 << 24), traced in 0u64..(1 << 28), free in 1u64..(1 << 28)) {
        let p = pacer_with(8.0, 256 << 20);
        let q = p.increment_quota(alloc, traced, free);
        prop_assert!(q <= (16.0 * alloc as f64) as u64 + 1);
    }
}
