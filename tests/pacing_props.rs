//! Property-based tests of the §3 pacing formulas, driven by the in-repo
//! seeded PRNG so the suite runs hermetically.

use mcgc::workloads::rng::SmallRng;
use mcgc::{GcConfig, Pacer};

fn pacer_with(k0: f64, heap: usize) -> Pacer {
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.tracing_rate = k0;
    Pacer::new(&cfg, heap)
}

/// The effective tracing rate is always within [0, Kmax].
#[test]
fn rate_bounded() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7A7E_0000 + seed);
        let k0 = 1.0 + 9.0 * rng.gen_f64();
        let traced = rng.gen_range_u64(0, 1 << 30);
        let free = rng.gen_range_u64(1, 1 << 30);
        let mut p = pacer_with(k0, 256 << 20);
        for _ in 0..rng.gen_range_usize(0, 10) {
            let t = rng.gen_range_u64(0, 1 << 24);
            let a = rng.gen_range_u64(1, 1 << 24);
            p.observe_background(t, a);
        }
        let k = p.tracing_rate(traced, free);
        assert!(k >= 0.0, "seed {seed}: negative rate {k}");
        assert!(
            k <= 2.0 * k0 + 1e-9,
            "seed {seed}: rate {k} exceeds Kmax {}",
            2.0 * k0
        );
    }
}

/// More background credit never increases the mutator rate.
#[test]
fn background_credit_monotone() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC4ED_0000 + seed);
        let traced = rng.gen_range_u64(0, 1 << 28);
        let free = rng.gen_range_u64(1, 1 << 28);
        let ratio_a = 4.0 * rng.gen_f64();
        let ratio_b = 4.0 * rng.gen_f64();
        let (lo, hi) = if ratio_a <= ratio_b {
            (ratio_a, ratio_b)
        } else {
            (ratio_b, ratio_a)
        };
        let mut p_lo = pacer_with(8.0, 256 << 20);
        let mut p_hi = pacer_with(8.0, 256 << 20);
        for _ in 0..30 {
            p_lo.observe_background((lo * 1e6) as u64, 1_000_000);
            p_hi.observe_background((hi * 1e6) as u64, 1_000_000);
        }
        assert!(
            p_hi.tracing_rate(traced, free) <= p_lo.tracing_rate(traced, free) + 1e-9,
            "seed {seed}"
        );
    }
}

/// Kickoff threshold scales inversely with K0: higher desired rates
/// start the cycle later (§6.2's observation that rate 1 starts
/// immediately and rate 10 starts near heap-full).
#[test]
fn kickoff_inverse_in_k0() {
    let mut rng = SmallRng::seed_from_u64(0x10C0_FF5E);
    let mut checked = 0;
    while checked < 128 {
        let k0a = 1.0 + 9.0 * rng.gen_f64();
        let k0b = 1.0 + 9.0 * rng.gen_f64();
        if (k0a - k0b).abs() <= 0.1 {
            continue;
        }
        checked += 1;
        let pa = pacer_with(k0a, 64 << 20);
        let pb = pacer_with(k0b, 64 << 20);
        let (hi_rate, lo_rate) = if k0a > k0b { (&pa, &pb) } else { (&pb, &pa) };
        assert!(
            hi_rate.kickoff_threshold() < lo_rate.kickoff_threshold(),
            "k0 {k0a} vs {k0b}"
        );
    }
}

/// Smoothing converges to a constant observation.
#[test]
fn estimates_converge() {
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xE57_0000 + seed);
        let l = rng.gen_range_u64(1, 1 << 28);
        let m = rng.gen_range_u64(1, 1 << 24);
        let mut p = pacer_with(8.0, 256 << 20);
        for _ in 0..100 {
            p.end_cycle(l, m);
        }
        assert!(
            (p.l_est() - l as f64).abs() < l as f64 * 0.01 + 2.0,
            "seed {seed}: L {} vs {l}",
            p.l_est()
        );
        assert!(
            (p.m_est() - m as f64).abs() < m as f64 * 0.01 + 2.0,
            "seed {seed}: M {} vs {m}",
            p.m_est()
        );
    }
}

/// The quota never exceeds Kmax times the allocation.
#[test]
fn quota_bounded() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x900A_0000 + seed);
        let alloc = rng.gen_range_u64(1, 1 << 24);
        let traced = rng.gen_range_u64(0, 1 << 28);
        let free = rng.gen_range_u64(1, 1 << 28);
        let p = pacer_with(8.0, 256 << 20);
        let q = p.increment_quota(alloc, traced, free);
        assert!(
            q <= (16.0 * alloc as f64) as u64 + 1,
            "seed {seed}: quota {q} for alloc {alloc}"
        );
    }
}
