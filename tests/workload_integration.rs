//! Integration tests of the three synthetic workloads against the
//! collector: they must run, collect, and report coherent statistics.

use std::time::Duration;

use mcgc::workloads::javac::{self, JavacOptions};
use mcgc::workloads::jbb::{self, JbbOptions};
use mcgc::{CollectorMode, Gc, GcConfig};

#[test]
fn jbb_reports_coherent_stats() {
    let heap = 24 << 20;
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.background_threads = 2;
    let mut opts = JbbOptions::sized_for(heap, 4, 0.6);
    opts.duration = Duration::from_millis(1000);
    let report = jbb::run_standalone(cfg, &opts);
    assert!(report.transactions > 100);
    assert!(report.allocated_bytes > 0);
    assert!(report.throughput() > 0.0);
    assert!(report.alloc_rate_kb_per_ms() > 0.0);
    assert_eq!(report.threads, 4);
    for c in &report.log.cycles {
        assert!(c.pause_ms > 0.0);
        assert!(c.mark_ms >= 0.0);
        assert!(c.pause_ms >= c.mark_ms + c.sweep_ms - 1e-9);
        assert!(c.occupancy_after > 0.0 && c.occupancy_after < 1.0);
        assert!(c.free_after_bytes > 0);
        assert!(c.trigger.is_some());
    }
}

#[test]
fn pbob_runs_with_many_terminals_and_idle_time() {
    let heap = 24 << 20;
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.background_threads = 2;
    let mut opts = mcgc::workloads::pbob::options(heap, 1, 0.5);
    opts.terminals_per_warehouse = 12;
    opts.duration = Duration::from_millis(1200);
    let report = mcgc::workloads::pbob::run_standalone(cfg, &opts);
    assert_eq!(report.threads, 12);
    assert!(report.transactions > 0);
    // Think time means idle CPU: background threads should have done a
    // visible share of the concurrent tracing across the run.
    let bg: u64 = report
        .log
        .cycles
        .iter()
        .map(|c| c.background_traced_bytes)
        .sum();
    let total: u64 = report
        .log
        .cycles
        .iter()
        .map(|c| c.concurrent_traced_bytes())
        .sum();
    if total > 0 {
        // On a 1-CPU host the share is small but must exist when cycles
        // ran while terminals slept.
        assert!(bg <= total);
    }
}

#[test]
fn javac_single_threaded_profile() {
    let heap = 12 << 20;
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.background_threads = 1; // §6.1: javac ran with one background thread
    let mut opts = JavacOptions::sized_for(heap);
    opts.duration = Duration::from_millis(1000);
    let report = javac::run_standalone(cfg, &opts);
    assert!(report.transactions > 0, "compiled at least one unit");
    assert!(!report.log.cycles.is_empty());
    assert_eq!(report.threads, 1);
}

#[test]
fn utilization_accounting_is_consistent() {
    let heap = 24 << 20;
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.background_threads = 2;
    let mut opts = JbbOptions::sized_for(heap, 2, 0.6);
    opts.duration = Duration::from_millis(1500);
    let report = jbb::run_standalone(cfg, &opts);
    // Table 3's inputs: concurrent and pre-concurrent allocation windows
    // must be recorded for concurrent cycles.
    let concurrent_cycles: Vec<_> = report
        .log
        .cycles
        .iter()
        .filter(|c| c.concurrent_traced_bytes() > 0)
        .collect();
    assert!(!concurrent_cycles.is_empty());
    for c in concurrent_cycles {
        assert!(
            c.alloc_concurrent_bytes > 0,
            "allocation during concurrent phase recorded"
        );
        assert!(c.concurrent_wall > Duration::ZERO);
    }
}

#[test]
fn workloads_work_under_the_baseline_collector() {
    let heap = 16 << 20;
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.mode = CollectorMode::StopTheWorld;
    let mut opts = JbbOptions::sized_for(heap, 2, 0.6);
    opts.duration = Duration::from_millis(800);
    let report = jbb::run_standalone(cfg, &opts);
    assert!(report.transactions > 100);
    assert!(!report.log.cycles.is_empty());
}

#[test]
fn explicit_collect_works_mid_workload() {
    let heap = 16 << 20;
    let gc = Gc::new(GcConfig::with_heap_bytes(heap));
    let mut m = gc.register_mutator();
    let tree =
        mcgc::workloads::graphs::build_tree(&mut m, mcgc::workloads::graphs::class::STOCK, 1 << 20)
            .unwrap();
    m.root_push(Some(tree));
    let before = mcgc::workloads::graphs::count_tree(&m, tree);
    m.collect();
    m.collect();
    let after = mcgc::workloads::graphs::count_tree(&m, tree);
    assert_eq!(before, after);
    assert_eq!(gc.log().cycles.len(), 2);
    drop(m);
    gc.shutdown();
}
