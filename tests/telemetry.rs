//! End-to-end telemetry tests: the event stream must reproduce the
//! collector's direct accounting bit-for-bit, phase events must be
//! well-formed, and the exporters must reflect live collector state.

use std::collections::BTreeMap;

use mcgc::telemetry::EventKind;
use mcgc::{CycleStats, Gc, GcConfig, GcLog, ObjectShape};

fn small_config() -> GcConfig {
    let mut c = GcConfig::with_heap_bytes(4 << 20);
    c.background_threads = 1;
    c.stw_workers = 2;
    c
}

/// Churns allocations until at least `cycles` collections completed.
fn churn(gc: &std::sync::Arc<Gc>, cycles: usize) {
    let mut m = gc.register_mutator();
    let keep = m.alloc(ObjectShape::new(1, 20, 0)).unwrap();
    m.root_push(Some(keep));
    let junk = ObjectShape::new(0, 30, 0);
    while gc.log().cycles.len() < cycles {
        for _ in 0..2_000 {
            m.alloc(junk).unwrap();
        }
    }
}

/// Field-by-field bit equality (floats compared via `to_bits`, so two
/// logs agree exactly, not approximately).
fn assert_bits_eq(a: &CycleStats, b: &CycleStats) {
    let cy = a.cycle;
    assert_eq!(a.cycle, b.cycle);
    assert_eq!(a.trigger, b.trigger, "cycle {cy}");
    for (name, x, y) in [
        ("pause_ms", a.pause_ms, b.pause_ms),
        ("mark_ms", a.mark_ms, b.mark_ms),
        ("sweep_ms", a.sweep_ms, b.sweep_ms),
        ("card_ms", a.card_ms, b.card_ms),
        ("root_ms", a.root_ms, b.root_ms),
        ("occupancy_after", a.occupancy_after, b.occupancy_after),
        (
            "tracing_factor_sum",
            a.tracing_factor_sum,
            b.tracing_factor_sum,
        ),
        (
            "tracing_factor_sq_sum",
            a.tracing_factor_sq_sum,
            b.tracing_factor_sq_sum,
        ),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "cycle {cy} field {name}");
    }
    assert_eq!(a.pause_wall, b.pause_wall, "cycle {cy}");
    assert_eq!(a.concurrent_wall, b.concurrent_wall, "cycle {cy}");
    assert_eq!(a.pre_concurrent_wall, b.pre_concurrent_wall, "cycle {cy}");
    assert_eq!(a.mutator_traced_bytes, b.mutator_traced_bytes, "cycle {cy}");
    assert_eq!(
        a.background_traced_bytes, b.background_traced_bytes,
        "cycle {cy}"
    );
    assert_eq!(a.stw_traced_bytes, b.stw_traced_bytes, "cycle {cy}");
    assert_eq!(
        a.alloc_concurrent_bytes, b.alloc_concurrent_bytes,
        "cycle {cy}"
    );
    assert_eq!(
        a.alloc_pre_concurrent_bytes, b.alloc_pre_concurrent_bytes,
        "cycle {cy}"
    );
    assert_eq!(
        a.cards_cleaned_concurrent, b.cards_cleaned_concurrent,
        "cycle {cy}"
    );
    assert_eq!(a.cards_cleaned_stw, b.cards_cleaned_stw, "cycle {cy}");
    assert_eq!(a.cards_left, b.cards_left, "cycle {cy}");
    assert_eq!(a.handshakes, b.handshakes, "cycle {cy}");
    assert_eq!(a.free_at_stw_start, b.free_at_stw_start, "cycle {cy}");
    assert_eq!(a.live_after_bytes, b.live_after_bytes, "cycle {cy}");
    assert_eq!(a.live_after_objects, b.live_after_objects, "cycle {cy}");
    assert_eq!(a.free_after_bytes, b.free_after_bytes, "cycle {cy}");
    assert_eq!(a.increments, b.increments, "cycle {cy}");
    assert_eq!(a.cas_ops, b.cas_ops, "cycle {cy}");
    assert_eq!(a.overflows, b.overflows, "cycle {cy}");
    assert_eq!(a.deferred_objects, b.deferred_objects, "cycle {cy}");
    assert_eq!(
        a.packets_in_use_watermark, b.packets_in_use_watermark,
        "cycle {cy}"
    );
    assert_eq!(
        a.packet_entries_watermark, b.packet_entries_watermark,
        "cycle {cy}"
    );
}

/// The acceptance-criteria test: a `GcLog` rebuilt purely from the event
/// stream matches the collector's direct accounting bit-for-bit. Older
/// cycles may be missing if the ring wrapped; every cycle that *is*
/// replayed must match exactly.
#[test]
fn event_stream_replays_gclog_bit_for_bit() {
    let gc = Gc::new(small_config());
    churn(&gc, 4);
    gc.shutdown();
    let log = gc.log();
    let replayed = GcLog::from_events(&gc.telemetry().events());
    assert!(
        !replayed.cycles.is_empty(),
        "event stream yields at least one complete cycle batch"
    );
    let by_cycle: BTreeMap<u64, &CycleStats> = log.cycles.iter().map(|c| (c.cycle, c)).collect();
    for r in &replayed.cycles {
        let direct = by_cycle
            .get(&r.cycle)
            .unwrap_or_else(|| panic!("replayed cycle {} not in direct log", r.cycle));
        assert_bits_eq(direct, r);
    }
    // The most recent cycle is always retained (its batch is the newest
    // thing in the ring).
    assert_eq!(
        replayed.cycles.last().unwrap().cycle,
        log.cycles.last().unwrap().cycle
    );
}

/// Phase events are well-formed: triggers decode, StwStart/StwEnd pair
/// up in order, kickoffs carry the free-byte headroom.
#[test]
fn phase_events_are_well_formed() {
    let gc = Gc::new(small_config());
    churn(&gc, 3);
    gc.shutdown();
    let events = gc.telemetry().events();
    assert!(!events.is_empty());
    let mut last_ts = 0;
    let mut open_stw: Option<u32> = None;
    let mut stw_ends = 0u64;
    for ev in &events {
        assert!(ev.ts_ns >= last_ts, "snapshot is time-ordered");
        last_ts = ev.ts_ns;
        match ev.kind {
            EventKind::StwStart => {
                assert_eq!(open_stw, None, "no nested pauses");
                assert!(mcgc::Trigger::from_code(ev.arg).is_some());
                open_stw = Some(ev.cycle);
            }
            EventKind::StwEnd => {
                assert_eq!(open_stw, Some(ev.cycle), "end matches open pause");
                assert!(ev.arg > 0, "wall pause is nonzero ns");
                open_stw = None;
                stw_ends += 1;
            }
            EventKind::Kickoff => {
                assert!(ev.arg > 0, "kickoff records free bytes");
            }
            _ => {}
        }
    }
    // Every pause fed the histogram (the histogram never wraps, so it
    // has at least as many samples as the ring retains StwEnd events).
    assert!(gc.telemetry().pause_histogram().count() >= stw_ends);
    assert!(gc.telemetry().pause_histogram().max() > 0);
}

/// Gauges refresh on demand and both exporters render the registry.
#[test]
fn sampling_refreshes_gauges_and_exporters_render() {
    let gc = Gc::new(small_config());
    churn(&gc, 2);
    gc.telemetry_sample();
    gc.shutdown();
    let sample: BTreeMap<String, f64> = gc.telemetry().registry().sample().into_iter().collect();
    assert!(sample["gc_cycles_total"] >= 2.0);
    assert!(sample["gc_pauses_total"] >= 2.0);
    assert!(sample["gc_pacer_k0"] > 0.0);
    assert!(sample["gc_pacer_kickoff_threshold_bytes"] > 0.0);
    assert!(sample["heap_occupancy"] > 0.0 && sample["heap_occupancy"] <= 1.0);
    // Which role the traced bytes land on is schedule-dependent (the
    // background tracer is woken at kickoff and can do all of it on a
    // small heap); some role must have been credited.
    assert!(
        sample["gc_traced_stw_bytes_total"] > 0.0
            || sample["gc_traced_mutator_bytes_total"] > 0.0
            || sample["gc_traced_background_bytes_total"] > 0.0
    );
    assert!(sample.contains_key("gc_pool_occupancy"));
    let text = gc.telemetry().registry().render_text();
    assert!(text.contains("gc_cycles_total"));
    assert!(text.contains("gc_pacer_k0"));
    let json = gc.telemetry().registry().render_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"gc_cycles_total\":"));
}

/// MMU: after real pauses, utilization over a long window is below 1 and
/// above 0, and the increment histogram saw the concurrent increments.
#[test]
fn utilization_and_increment_latencies_recorded() {
    let gc = Gc::new(small_config());
    churn(&gc, 3);
    gc.shutdown();
    let tel = gc.telemetry();
    let window = 10_000_000_000; // 10 s, longer than the whole test
    let u = tel.mutator_utilization(window);
    assert!(u > 0.0 && u < 1.0, "utilization {u}");
    assert!(tel.minimum_mutator_utilization(1_000_000) <= u);
    let log = gc.log();
    if log.cycles.iter().any(|c| c.increments > 0) {
        assert!(tel.increment_histogram().count() > 0);
    }
}

/// Disabling telemetry stops recording without disturbing collection.
#[test]
fn disabled_telemetry_records_nothing_but_gc_still_works() {
    let gc = Gc::new(small_config());
    gc.telemetry().set_enabled(false);
    churn(&gc, 2);
    gc.shutdown();
    assert!(gc.log().cycles.len() >= 2, "collections still happen");
    assert!(gc.telemetry().events().is_empty());
    assert_eq!(gc.telemetry().pause_histogram().count(), 0);
}
