//! Cross-crate correctness tests: the collector must never reclaim a
//! reachable object, under any interleaving of mutators, background
//! threads, and collection phases.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcgc::{CollectorMode, Gc, GcConfig, ObjectRef, ObjectShape, SweepMode};

fn config(heap_mb: usize) -> GcConfig {
    let mut c = GcConfig::with_heap_bytes(heap_mb << 20);
    c.background_threads = 2;
    c.stw_workers = 2;
    c
}

/// Each thread maintains a private linked list, continuously replacing
/// its tail and churning garbage; the list must stay intact through many
/// concurrent cycles.
#[test]
fn private_lists_survive_concurrent_churn() {
    let gc = Gc::new(config(16));
    let stop = Arc::new(AtomicBool::new(false));
    let node = ObjectShape::new(1, 2, 1);
    let junk = ObjectShape::new(0, 14, 0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let gc = Arc::clone(&gc);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut m = gc.register_mutator();
                // Build a 500-node list.
                let head = m.alloc(node).unwrap();
                m.root_push(Some(head));
                let mut tail = head;
                for i in 0..499 {
                    let n = m.alloc(node).unwrap();
                    m.write_data(n, 0, t * 1000 + i);
                    m.write_ref(tail, 0, Some(n));
                    tail = n;
                }
                while !stop.load(Ordering::Relaxed) {
                    // Churn garbage and rotate the list head: drop the
                    // first node, append a new one.
                    for _ in 0..200 {
                        m.alloc(junk).unwrap();
                    }
                    let new_head = m.read_ref(head, 0); // second node
                    let _ = new_head;
                    let n = m.alloc(node).unwrap();
                    m.write_ref(tail, 0, Some(n));
                    tail = n;
                    // Verify the whole list is reachable and intact.
                    let mut len = 0;
                    let mut cur = Some(head);
                    while let Some(c) = cur {
                        len += 1;
                        cur = m.read_ref(c, 0);
                        assert!(len < 1_000_000, "cycle in list: corruption");
                    }
                    assert!(len >= 500, "list shrank: {len}");
                }
            });
        }
        std::thread::sleep(Duration::from_millis(1500));
        stop.store(true, Ordering::SeqCst);
    });
    assert!(gc.log().cycles.len() >= 2, "churn must trigger cycles");
    gc.shutdown();
}

/// Threads share objects through global roots; cross-thread references
/// stored during concurrent marking must be retained (write barrier +
/// card cleaning correctness).
#[test]
fn cross_thread_shared_graph_is_retained() {
    let gc = Gc::new(config(16));
    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicU64::new(0));
    // A shared table: 64 slots, each thread publishes nodes into it.
    let table = {
        let mut m = gc.register_mutator();
        let t = m.alloc(ObjectShape::new(64, 0, 9)).unwrap();
        m.gc().global_root_push(Some(t));
        // keep the registering mutator alive via scope below
        drop(m);
        t
    };
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let gc = Arc::clone(&gc);
            let stop = Arc::clone(&stop);
            let checked = Arc::clone(&checked);
            s.spawn(move || {
                let mut m = gc.register_mutator();
                let payload = ObjectShape::new(1, 4, 2);
                let junk = ObjectShape::new(0, 30, 0);
                let my_slots: Vec<u32> = (0..64).filter(|i| i % 4 == t).collect();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Publish a fresh two-object chain into each owned
                    // slot. `a` is rooted before the next allocation — the
                    // shadow stack is this substrate's "register".
                    for &slot in &my_slots {
                        let a = m.alloc(payload).unwrap();
                        let r = m.root_push(Some(a));
                        let b = m.alloc(payload).unwrap();
                        m.write_data(b, 0, round);
                        m.write_ref(a, 0, Some(b));
                        m.write_ref(table, slot, Some(a));
                        m.root_truncate(r);
                    }
                    for _ in 0..400 {
                        m.alloc(junk).unwrap();
                    }
                    // Check every slot in the table (including other
                    // threads'): the chain must be readable.
                    for slot in 0..64 {
                        if let Some(a) = m.read_ref(table, slot) {
                            if let Some(b) = m.read_ref(a, 0) {
                                let _ = m.read_data(b, 0);
                                checked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    round += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(1500));
        stop.store(true, Ordering::SeqCst);
    });
    assert!(checked.load(Ordering::Relaxed) > 1000);
    assert!(gc.log().cycles.len() >= 2);
    // The heap must verify structurally once quiescent.
    let violations = gc.verify_heap();
    assert!(violations.is_empty(), "{violations:?}");
    gc.shutdown();
}

/// The same workload under both collectors and both sweep modes must
/// never corrupt the heap.
#[test]
fn all_modes_pass_verification() {
    for (mode, sweep) in [
        (CollectorMode::Concurrent, SweepMode::Eager),
        (CollectorMode::Concurrent, SweepMode::Lazy),
        (CollectorMode::StopTheWorld, SweepMode::Eager),
    ] {
        let mut cfg = config(8);
        cfg.mode = mode;
        cfg.sweep = sweep;
        let gc = Gc::new(cfg);
        let mut m = gc.register_mutator();
        let node = ObjectShape::new(2, 2, 1);
        let root_slot = m.root_push(None);
        let mut keep: Option<ObjectRef> = None;
        for i in 0..80_000u64 {
            let obj = m.alloc(node).unwrap();
            if i % 97 == 0 {
                m.write_ref(obj, 0, keep);
                m.root_set(root_slot, Some(obj));
                keep = Some(obj);
            }
        }
        // Walk the retained chain.
        let mut len = 0;
        let mut cur = keep;
        while let Some(c) = cur {
            len += 1;
            cur = m.read_ref(c, 0);
        }
        assert!(len > 700, "{mode:?}/{sweep:?}: chain len {len}");
        drop(m);
        // Quiesce any lazy sweep then verify.
        let violations = gc.verify_heap();
        assert!(violations.is_empty(), "{mode:?}/{sweep:?}: {violations:?}");
        gc.shutdown();
    }
}

/// Mutators registering and deregistering mid-cycle must not confuse the
/// safepoint protocol or lose objects.
#[test]
fn mutator_churn_during_cycles() {
    let gc = Gc::new(config(8));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // A stable allocator keeps cycles coming.
        {
            let gc = Arc::clone(&gc);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut m = gc.register_mutator();
                let junk = ObjectShape::new(0, 22, 0);
                while !stop.load(Ordering::Relaxed) {
                    m.alloc(junk).unwrap();
                }
            });
        }
        // Short-lived mutators come and go.
        for _ in 0..3 {
            let gc = Arc::clone(&gc);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let shape = ObjectShape::new(1, 1, 3);
                while !stop.load(Ordering::Relaxed) {
                    let mut m = gc.register_mutator();
                    let a = m.alloc(shape).unwrap();
                    m.root_push(Some(a));
                    for _ in 0..50 {
                        m.alloc(shape).unwrap();
                    }
                    assert!(gc.heap().header(a).class_id == 3);
                    drop(m); // deregisters
                }
            });
        }
        std::thread::sleep(Duration::from_millis(1200));
        stop.store(true, Ordering::SeqCst);
    });
    assert!(!gc.log().cycles.is_empty());
    gc.shutdown();
}

/// Think-time (blocked) regions let collection proceed while threads
/// sleep, and waking threads synchronize with an in-progress pause.
#[test]
fn blocked_regions_do_not_stall_collection() {
    let gc = Gc::new(config(8));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Sleepy threads: mostly blocked.
        for _ in 0..3 {
            let gc = Arc::clone(&gc);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut m = gc.register_mutator();
                let shape = ObjectShape::new(1, 2, 0);
                while !stop.load(Ordering::Relaxed) {
                    let a = m.alloc(shape).unwrap();
                    m.root_push(Some(a));
                    m.think(Duration::from_millis(5));
                    m.root_truncate(0);
                }
            });
        }
        // One busy allocator forcing collections.
        {
            let gc = Arc::clone(&gc);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut m = gc.register_mutator();
                let junk = ObjectShape::new(0, 30, 0);
                while !stop.load(Ordering::Relaxed) {
                    m.alloc(junk).unwrap();
                }
            });
        }
        std::thread::sleep(Duration::from_millis(1200));
        stop.store(true, Ordering::SeqCst);
    });
    assert!(
        gc.log().cycles.len() >= 2,
        "collection proceeded despite sleeping threads"
    );
    gc.shutdown();
}
