//! Differential test for the persistent pause gang: the collection
//! *outcome* must be bit-identical at any worker count.
//!
//! Marking is a monotone closure over the object graph (mark-and-push
//! claims each object exactly once via a mark-bit CAS), and the parallel
//! sweep sorts its per-chunk results by chunk index before rebuilding
//! the free list, so the final mark-bit population, live object/granule
//! counts, free bytes, and the free-list extents are independent of how
//! many gang workers raced over the work. This test runs the same
//! deterministic workload (one mutator, no background tracers, byte-based
//! pacing only) at `stw_workers = 1` (every phase inline on the leader —
//! the serial pause) and `stw_workers = 4`, and compares.
//!
//! Deliberately NOT compared: per-cycle scanned-byte counters and the
//! modelled millisecond costs. Parallel card cleaning may overflow
//! packets differently and redirty different cards, so *work* accounting
//! can differ across worker counts even though the *outcome* cannot.

use mcgc::heap::Extent;
use mcgc::{CollectorMode, Gc, GcConfig, ObjectShape, SweepMode, Trigger};

/// Per-cycle outcome facts that must match exactly across worker counts.
#[derive(Debug, PartialEq)]
struct CycleOutcome {
    cycle: u64,
    trigger: Option<Trigger>,
    live_after_objects: u64,
    live_after_bytes: u64,
    free_after_bytes: u64,
    cards_left: u64,
}

/// End-of-run heap facts that must match exactly.
#[derive(Debug, PartialEq)]
struct FinalState {
    alloc_bit_population: usize,
    mark_bit_population: usize,
    free_bytes: usize,
    extents: Vec<Extent>,
    cycles: Vec<CycleOutcome>,
}

fn config(mode: CollectorMode, stw_workers: usize) -> GcConfig {
    let mut cfg = match mode {
        CollectorMode::Concurrent => GcConfig::with_heap_bytes(8 << 20),
        CollectorMode::StopTheWorld => GcConfig::stw_with_heap_bytes(8 << 20),
    };
    // Determinism: one mutator thread drives everything; pacing is
    // purely byte-based, so cycle boundaries land on the same
    // allocation in every run.
    cfg.background_threads = 0;
    cfg.stw_workers = stw_workers;
    cfg.sweep = SweepMode::Eager;
    cfg
}

/// The deterministic workload: a retained binary tree, churn garbage,
/// and periodic ref rewiring (dirtying cards), with explicit collects at
/// fixed allocation counts on top of whatever the pacer triggers.
fn run(mode: CollectorMode, stw_workers: usize) -> FinalState {
    let gc = Gc::new(config(mode, stw_workers));
    let mut m = gc.register_mutator();

    let node = ObjectShape::new(2, 2, 1);
    let root = m.alloc(node).unwrap();
    m.root_push(Some(root));
    let mut frontier = vec![root];
    for _ in 0..7 {
        let mut next = Vec::new();
        for &p in &frontier {
            for s in 0..2 {
                next.push(m.alloc_into(p, s, node).unwrap());
            }
        }
        frontier = next;
    }

    let junk = ObjectShape::new(0, 14, 0);
    let mut rng = 0x9E37_79B9u32;
    for i in 0..60_000u32 {
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        let g = m.alloc(junk).unwrap();
        if rng.is_multiple_of(64) {
            // Rewire a leaf slot: retains a little junk, dirties cards.
            let leaf = frontier[(rng as usize >> 6) % frontier.len()];
            m.write_ref(leaf, (rng >> 3) % 2, Some(g));
        }
        if i % 20_000 == 9_999 {
            m.collect();
        }
    }
    m.collect();
    gc.audit_now();

    let cycles = gc
        .log()
        .cycles
        .iter()
        .map(|c| CycleOutcome {
            cycle: c.cycle,
            trigger: c.trigger,
            live_after_objects: c.live_after_objects,
            live_after_bytes: c.live_after_bytes,
            free_after_bytes: c.free_after_bytes,
            cards_left: c.cards_left,
        })
        .collect();
    let state = FinalState {
        alloc_bit_population: gc.heap().alloc_bits().count(),
        mark_bit_population: gc.heap().mark_bits().count(),
        free_bytes: gc.heap().free_bytes(),
        extents: gc.heap().free_list().extents_sorted(),
        cycles,
    };
    drop(m);
    gc.shutdown();
    state
}

#[test]
fn concurrent_mode_outcome_is_worker_count_independent() {
    let serial = run(CollectorMode::Concurrent, 1);
    let parallel = run(CollectorMode::Concurrent, 4);
    assert!(
        serial.cycles.len() >= 4,
        "workload must exercise several cycles, got {}",
        serial.cycles.len()
    );
    assert_eq!(serial, parallel);
}

#[test]
fn stw_baseline_outcome_is_worker_count_independent() {
    // The baseline pause keeps the mark bits after the cycle (no
    // pre-clear), so this run also compares a live mark-bit population.
    let serial = run(CollectorMode::StopTheWorld, 1);
    let parallel = run(CollectorMode::StopTheWorld, 4);
    assert!(!serial.cycles.is_empty());
    assert!(
        serial.mark_bit_population > 0,
        "baseline retains mark bits for comparison"
    );
    assert_eq!(serial, parallel);
}
