//! Differential test for the GC scheduler: the collection *outcome*
//! must be independent of how many pool workers served the sessions.
//!
//! Marking is a monotone closure over the object graph (mark-and-push
//! claims each object exactly once via a mark-bit CAS), and the
//! parallel sweep sorts its per-chunk results by chunk index before
//! rebuilding the free list, so the final mark-bit population, live
//! object/granule counts, free bytes, and the free-list extents are
//! independent of how many workers raced over the session's buckets.
//! The **eager** arms run the same deterministic workload (one mutator,
//! no background tracers, byte-based pacing only) at `stw_workers = 1`
//! (every bucket inline on the leader — the serial pause) and
//! `stw_workers = 4`, in both collector modes, and compare the full
//! address-exact heap state.
//!
//! The **lazy + background sweep** arms additionally cover the off-pause
//! half of the scheduler: sweep-on-refill, the background sweeper duty
//! of the concurrent-role worker, and the pre-pause straggler fence
//! (its own `Bucket::Straggler` session). Reclamation order there is
//! timing-dependent *by design* — the background sweeper and a
//! multi-worker straggler fence interleave bin insertions into the
//! LIFO size-class bins, so allocation *addresses* can differ between
//! runs. What must still be bit-identical at any worker count is the
//! address-independent outcome: which objects live (counts and bytes),
//! the granule populations of the alloc/mark bitmaps once the final
//! epoch is drained, total free bytes, and the cycle/trigger sequence.
//! Cycle boundaries are pinned by explicit collects on a heap sized so
//! the pacer never kicks off spontaneously (a `ConcurrentDone` boundary
//! would land on a card-geometry-dependent allocation index).
//!
//! Deliberately NOT compared: per-cycle scanned-byte counters, modelled
//! millisecond costs, and (lazy arms only) free-list extents and card
//! counts. Parallel card cleaning may overflow packets differently and
//! redirty different cards, so *work* accounting can differ across
//! worker counts even though the *outcome* cannot.

use mcgc::heap::Extent;
use mcgc::{CollectorMode, Gc, GcConfig, ObjectShape, SweepMode, Trigger};

/// Per-cycle outcome facts that must match exactly across worker counts.
#[derive(Debug, PartialEq)]
struct CycleOutcome {
    cycle: u64,
    trigger: Option<Trigger>,
    live_after_objects: u64,
    live_after_bytes: u64,
    free_after_bytes: u64,
    cards_left: u64,
}

/// End-of-run heap facts that must match exactly (eager arms: the full
/// address-exact state, free-list extents included).
#[derive(Debug, PartialEq)]
struct FinalState {
    alloc_bit_population: usize,
    mark_bit_population: usize,
    free_bytes: usize,
    extents: Vec<Extent>,
    cycles: Vec<CycleOutcome>,
}

/// The address-independent outcome compared by the lazy+bg arms. No
/// mark-bit population here: under lazy sweep the mark bitmap is sweep
/// *plan* state, cleared asynchronously by whichever thread retires the
/// drained epoch — the live granule set is `alloc_bit_population`.
#[derive(Debug, PartialEq)]
struct LazyOutcome {
    alloc_bit_population: usize,
    free_bytes: usize,
    cycles: Vec<CycleOutcome>,
}

fn config(mode: CollectorMode, stw_workers: usize, sweep: SweepMode) -> GcConfig {
    let heap_bytes = match sweep {
        // Small enough that the pacer triggers extra cycles on top of
        // the explicit collects (boundaries are address-deterministic
        // here, so that is safe to compare).
        SweepMode::Eager => 8 << 20,
        // Large enough that only the explicit collects pause: lazy
        // reclamation scrambles bin order, so a pacer-chosen boundary
        // would not be reproducible across worker counts.
        SweepMode::Lazy => 24 << 20,
    };
    let mut cfg = match mode {
        CollectorMode::Concurrent => GcConfig::with_heap_bytes(heap_bytes),
        CollectorMode::StopTheWorld => GcConfig::stw_with_heap_bytes(heap_bytes),
    };
    // Determinism: one mutator thread drives all marking; pacing is
    // purely byte-based, so cycle boundaries land on the same
    // allocation in every run.
    cfg.stw_workers = stw_workers;
    cfg.sweep = sweep;
    match sweep {
        SweepMode::Eager => cfg.background_threads = 0,
        SweepMode::Lazy => {
            // One concurrent-role worker for the background-sweeper
            // duty; a zero tracing quantum keeps it out of marking.
            cfg.background_threads = 1;
            cfg.background_quantum = 0;
            cfg.bg_sweep = true;
        }
    }
    cfg
}

/// The deterministic workload: a retained binary tree, churn garbage,
/// and periodic ref rewiring (dirtying cards), with explicit collects at
/// fixed allocation counts on top of whatever the pacer triggers.
fn workload(gc: &std::sync::Arc<Gc>) {
    let mut m = gc.register_mutator();

    let node = ObjectShape::new(2, 2, 1);
    let root = m.alloc(node).unwrap();
    m.root_push(Some(root));
    let mut frontier = vec![root];
    for _ in 0..7 {
        let mut next = Vec::new();
        for &p in &frontier {
            for s in 0..2 {
                next.push(m.alloc_into(p, s, node).unwrap());
            }
        }
        frontier = next;
    }

    let junk = ObjectShape::new(0, 14, 0);
    let mut rng = 0x9E37_79B9u32;
    for i in 0..60_000u32 {
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        let g = m.alloc(junk).unwrap();
        if rng.is_multiple_of(64) {
            // Rewire a leaf slot: retains a little junk, dirties cards.
            let leaf = frontier[(rng as usize >> 6) % frontier.len()];
            m.write_ref(leaf, (rng >> 3) % 2, Some(g));
        }
        if i % 20_000 == 9_999 {
            m.collect();
        }
    }
    m.collect();
}

fn cycle_outcomes(gc: &Gc) -> Vec<CycleOutcome> {
    gc.log()
        .cycles
        .iter()
        .map(|c| CycleOutcome {
            cycle: c.cycle,
            trigger: c.trigger,
            live_after_objects: c.live_after_objects,
            live_after_bytes: c.live_after_bytes,
            free_after_bytes: c.free_after_bytes,
            cards_left: c.cards_left,
        })
        .collect()
}

fn run_eager(mode: CollectorMode, stw_workers: usize) -> FinalState {
    let gc = Gc::new(config(mode, stw_workers, SweepMode::Eager));
    workload(&gc);
    gc.audit_now();
    let state = FinalState {
        alloc_bit_population: gc.heap().alloc_bits().count(),
        mark_bit_population: gc.heap().mark_bits().count(),
        free_bytes: gc.heap().free_bytes(),
        extents: gc.heap().free_list().extents_sorted(),
        cycles: cycle_outcomes(&gc),
    };
    gc.shutdown();
    state
}

fn run_lazy(mode: CollectorMode, stw_workers: usize) -> LazyOutcome {
    let gc = Gc::new(config(mode, stw_workers, SweepMode::Lazy));
    workload(&gc);
    // The final collect installed a fresh sweep epoch; drain it here so
    // the captured bitmaps and free total describe a fully-swept heap
    // instead of a snapshot race against the background sweeper. Chunk
    // claims are atomic, so racing the sweeper is fine.
    if let Some(plan) = gc.heap().lazy_plan() {
        while plan.sweep_one(gc.heap()).is_some() {}
    }
    gc.audit_now();
    let out = LazyOutcome {
        alloc_bit_population: gc.heap().alloc_bits().count(),
        free_bytes: gc.heap().free_bytes(),
        cycles: cycle_outcomes(&gc)
            .into_iter()
            .map(|mut c| {
                // Card geometry is address-dependent under lazy bin
                // scrambling; liveness and accounting are not.
                c.cards_left = 0;
                c
            })
            .collect(),
    };
    gc.shutdown();
    out
}

#[test]
fn concurrent_mode_outcome_is_worker_count_independent() {
    let serial = run_eager(CollectorMode::Concurrent, 1);
    let parallel = run_eager(CollectorMode::Concurrent, 4);
    assert!(
        serial.cycles.len() >= 4,
        "workload must exercise several cycles, got {}",
        serial.cycles.len()
    );
    assert_eq!(serial, parallel);
}

#[test]
fn stw_baseline_outcome_is_worker_count_independent() {
    // The baseline pause keeps the mark bits after the cycle (no
    // pre-clear), so this run also compares a live mark-bit population.
    let serial = run_eager(CollectorMode::StopTheWorld, 1);
    let parallel = run_eager(CollectorMode::StopTheWorld, 4);
    assert!(!serial.cycles.is_empty());
    assert!(
        serial.mark_bit_population > 0,
        "baseline retains mark bits for comparison"
    );
    assert_eq!(serial, parallel);
}

#[test]
fn concurrent_lazy_bg_outcome_is_worker_count_independent() {
    let serial = run_lazy(CollectorMode::Concurrent, 1);
    let parallel = run_lazy(CollectorMode::Concurrent, 4);
    assert_eq!(
        serial.cycles.len(),
        4,
        "lazy arm must pause only at the explicit collects, got {:?}",
        serial.cycles.iter().map(|c| c.trigger).collect::<Vec<_>>()
    );
    assert!(
        serial
            .cycles
            .iter()
            .all(|c| c.trigger == Some(Trigger::Explicit)),
        "unexpected pacer-triggered cycle: {:?}",
        serial.cycles
    );
    assert!(
        serial.alloc_bit_population > 0,
        "retained tree survives the drained final epoch"
    );
    assert_eq!(serial, parallel);
}

#[test]
fn stw_lazy_outcome_is_worker_count_independent() {
    let serial = run_lazy(CollectorMode::StopTheWorld, 1);
    let parallel = run_lazy(CollectorMode::StopTheWorld, 4);
    assert_eq!(serial.cycles.len(), 4);
    assert!(serial.alloc_bit_population > 0);
    assert_eq!(serial, parallel);
}
