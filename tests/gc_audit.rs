//! Soundness audits over real collections. Built plain, these tests
//! exercise the explicit [`Gc::audit_now`] entry point at quiescent
//! points. Built with `--features verify-gc` (as the CI soundness job
//! does), every pause in these runs is additionally audited in place:
//! tri-color at pause start, strict tri-color after the drain,
//! structural + free-list agreement after an eager sweep, and
//! tri-color at single-threaded increment boundaries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcgc::{Gc, GcConfig, ObjectShape, SweepMode};

/// Single mutator, no background tracers: the configuration where
/// increment-boundary audits run after every mutator tracing duty.
#[test]
fn single_threaded_churn_passes_every_audit() {
    let mut c = GcConfig::with_heap_bytes(8 << 20);
    c.background_threads = 0;
    c.stw_workers = 1;
    let gc = Gc::new(c);
    let mut m = gc.register_mutator();
    let node = ObjectShape::new(2, 2, 1);
    let head = m.alloc(node).unwrap();
    m.root_push(Some(head));
    let mut tail = head;
    for i in 0..20_000u64 {
        let n = m.alloc(node).unwrap();
        m.write_data(n, 0, i);
        // Keep a rolling window live; everything older is garbage.
        m.write_ref(tail, 0, Some(n));
        if i % 64 == 0 {
            m.write_ref(head, 1, Some(n));
        }
        if i % 512 == 0 {
            m.write_ref(tail, 1, None);
        }
        tail = n;
    }
    m.collect();
    assert!(
        !gc.log().cycles.is_empty(),
        "workload must have run at least one audited cycle"
    );
    drop(m);
    gc.audit_now();
    gc.shutdown();
}

/// Concurrent mutators + background tracers: every triggered pause (in
/// both sweep modes) runs the pause-start / post-drain / post-sweep
/// audits while references race the marker.
#[test]
fn concurrent_churn_passes_pause_audits_in_both_sweep_modes() {
    for sweep in [SweepMode::Eager, SweepMode::Lazy] {
        let mut c = GcConfig::with_heap_bytes(12 << 20);
        c.background_threads = 1;
        c.stw_workers = 2;
        c.sweep = sweep;
        let gc = Gc::new(c);
        let stop = Arc::new(AtomicBool::new(false));
        let node = ObjectShape::new(1, 2, 1);
        let junk = ObjectShape::new(0, 6, 0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let gc = Arc::clone(&gc);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut m = gc.register_mutator();
                    let head = m.alloc(node).unwrap();
                    m.root_push(Some(head));
                    let mut tail = head;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..100 {
                            m.alloc(junk).unwrap();
                        }
                        let n = m.alloc(node).unwrap();
                        m.write_ref(tail, 0, Some(n));
                        tail = n;
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(600));
            stop.store(true, Ordering::SeqCst);
        });
        assert!(
            !gc.log().cycles.is_empty(),
            "churn must trigger audited cycles ({sweep:?})"
        );
        gc.shutdown();
        gc.audit_now();
    }
}

/// `audit_now` is callable on a fresh, idle collector and between
/// cycles — a clean heap has nothing to report.
#[test]
fn explicit_audit_on_idle_collector_is_clean() {
    let gc = Gc::new(GcConfig::with_heap_bytes(4 << 20));
    gc.audit_now();
    let mut m = gc.register_mutator();
    let a = m.alloc(ObjectShape::new(1, 1, 0)).unwrap();
    let b = m.alloc(ObjectShape::new(0, 1, 0)).unwrap();
    m.root_push(Some(a));
    m.write_ref(a, 0, Some(b));
    m.collect();
    m.collect();
    drop(m);
    gc.audit_now();
    gc.shutdown();
}
