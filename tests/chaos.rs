//! Chaos tests: seeded, deterministic fault plans injected into the
//! collector's real degraded-mode machinery, audited under `verify-gc`.
//!
//! Every scenario must satisfy the resilience contract from the paper's
//! server setting: a run either completes with a clean heap audit or
//! fails with a typed [`GcError::OutOfMemory`] — it never hangs and
//! never corrupts the heap. A wall-clock watchdog enforces "never
//! hangs" at the process level: any scenario that exceeds its deadline
//! aborts the whole test binary with exit code 86.
//!
//! Requires `--features fault-inject,verify-gc` (the `[[test]]` stanza
//! declares them as `required-features`, so plain `cargo test` skips
//! this binary). [`mcgc::fault::FaultGuard`] serializes scenarios on a
//! global session lock, so the per-site hit counters never interleave
//! across tests.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcgc::fault::{site, FaultPlan};
use mcgc::{
    fault, CollectorMode, Gc, GcConfig, GcError, ObjectRef, ObjectShape, PoolConfig, SweepMode,
};

/// Hard wall-clock limit per scenario. Generous — scenarios finish in
/// seconds — because its only job is turning a livelock or deadlock
/// into a loud, fast CI failure instead of a job timeout.
const DEADLINE: Duration = Duration::from_secs(120);

/// Runs `f` on a helper thread and polls for completion. On deadline
/// the process exits with code 86 (a hang is unrecoverable from within
/// the hung process, so no attempt is made to unwind it).
fn with_deadline<F>(name: &str, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let worker = std::thread::spawn(f);
    let deadline = Instant::now() + DEADLINE;
    while !worker.is_finished() {
        if Instant::now() >= deadline {
            eprintln!("chaos scenario `{name}` exceeded the {DEADLINE:?} watchdog: hung");
            std::process::exit(86);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if let Err(panic) = worker.join() {
        std::panic::resume_unwind(panic);
    }
}

fn config(heap_bytes: usize, sweep: SweepMode) -> GcConfig {
    let mut c = GcConfig::with_heap_bytes(heap_bytes);
    c.background_threads = 1;
    c.stw_workers = 2;
    c.sweep = sweep;
    c
}

/// Allocation churn with short-lived linked chains: every 8th node
/// unlinks its chain, so the heap stays mostly garbage while `write_ref`
/// traffic keeps dirtying cards. Runs until `cycles` collections have
/// completed (or the iteration cap trips, so an injected stall cannot
/// turn the helper itself into the hang).
fn churn(gc: &Arc<Gc>, cycles: usize, max_iters: u64) -> Result<(), GcError> {
    let mut m = gc.register_mutator();
    let keep = m.alloc(ObjectShape::new(1, 20, 0))?;
    m.root_push(Some(keep));
    let node = ObjectShape::new(2, 6, 0);
    let mut prev: Option<ObjectRef> = None;
    let mut i = 0u64;
    while gc.log().cycles.len() < cycles && i < max_iters {
        let n = m.alloc(node)?;
        if let Some(p) = prev {
            m.write_ref(n, 0, Some(p));
        }
        m.write_ref(keep, 0, Some(n));
        prev = if i.is_multiple_of(8) { None } else { Some(n) };
        i += 1;
    }
    Ok(())
}

fn counters(gc: &Arc<Gc>) -> BTreeMap<String, f64> {
    gc.telemetry_sample();
    gc.telemetry().registry().sample().into_iter().collect()
}

/// Refill failures force `alloc_small_slow` onto the escalation ladder:
/// the retry and rung counters must tick, and the heap must still audit
/// clean. Exercised in both sweep modes because the ladder's first rung
/// (lazy-sweep progress) only exists under `SweepMode::Lazy`.
#[test]
fn refill_faults_escalate_and_stay_sound() {
    for (seed, sweep) in [(0xA110C1u64, SweepMode::Eager), (0xA110C2, SweepMode::Lazy)] {
        with_deadline("refill_faults", move || {
            let _guard = FaultPlan::new(seed)
                .every_k(site::HEAP_REFILL, 13)
                .install();
            let gc = Gc::new(config(16 << 20, sweep));
            churn(&gc, 3, 2_000_000).unwrap();
            assert!(fault::fires(site::HEAP_REFILL) > 0, "plan never fired");
            let s = counters(&gc);
            assert!(s["gc_alloc_retry_total"] >= 1.0, "ladder never re-entered");
            let rungs = s["gc_alloc_rung_lazy_total"]
                + s["gc_alloc_rung_finish_total"]
                + s["gc_alloc_rung_stw_total"];
            assert!(rungs >= 1.0, "no escalation rung recorded");
            gc.audit_now();
            gc.shutdown();
        });
    }
}

/// A permanently failing large-object path must surface as a typed
/// `OutOfMemory` that carries the request size and heap occupancy —
/// after the ladder's bounded full-collection rungs, never a hang.
#[test]
fn large_alloc_oom_reports_context() {
    with_deadline("large_alloc_oom", || {
        let _guard = FaultPlan::new(0x0031)
            .from(site::HEAP_ALLOC_LARGE, 1)
            .install();
        let gc = Gc::new(config(4 << 20, SweepMode::Eager));
        let mut m = gc.register_mutator();
        let big = ObjectShape::new(0, 4096, 0); // 32 KiB >= 8 KiB threshold
        let err = m.alloc(big).expect_err("large alloc must fail");
        assert!(
            matches!(err, GcError::OutOfMemory { requested_bytes, .. } if requested_bytes == big.bytes() as u64),
            "wrong error: {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("requested"), "no request context: {msg}");
        assert!(msg.contains("occupied"), "no occupancy context: {msg}");
        let s = counters(&gc);
        assert!(s["gc_alloc_oom_total"] >= 1.0);
        // The collector survives the OOM: normal allocation still works.
        let ok = m.alloc(ObjectShape::new(0, 4, 0)).unwrap();
        m.root_push(Some(ok));
        drop(m);
        gc.audit_now();
        gc.shutdown();
    });
}

/// Satellite 3: packet-pool exhaustion forced via the fault site. The
/// tracer must degrade to the §4.3 mark-and-dirty-card overflow path,
/// the STW drain must re-clean the flooded cards, and the post-drain
/// audit (automatic under `verify-gc`) plus the final explicit audit
/// must pass — in both sweep modes.
#[test]
fn pool_exhaustion_degrades_to_card_overflow() {
    for (seed, sweep) in [(0x9001u64, SweepMode::Eager), (0x9002, SweepMode::Lazy)] {
        with_deadline("pool_exhaustion", move || {
            let _guard = FaultPlan::new(seed)
                .probability_permille(site::POOL_EXHAUSTED, 700)
                .install();
            let mut cfg = config(16 << 20, sweep);
            cfg.pool = PoolConfig {
                packets: 8,
                capacity: 16,
            };
            let gc = Gc::new(cfg);
            churn(&gc, 3, 2_000_000).unwrap();
            assert!(fault::fires(site::POOL_EXHAUSTED) > 0, "plan never fired");
            let log = gc.log();
            let overflows: u64 = log.cycles.iter().map(|c| c.overflows).sum();
            assert!(overflows > 0, "no overflow events despite exhausted pool");
            let stw_cards: u64 = log.cycles.iter().map(|c| c.cards_cleaned_stw).sum();
            assert!(stw_cards > 0, "overflow-dirtied cards never re-cleaned");
            gc.audit_now();
            gc.shutdown();
        });
    }
}

/// A background tracer stalled mid-checkout must not wedge termination
/// detection: the pause watchdog condemns its packet, refloods marked
/// cards, and the cycle completes with clean audits.
#[test]
fn stalled_tracer_is_reclaimed_by_watchdog() {
    with_deadline("tracer_stall", || {
        let _guard = FaultPlan::new(0x57A11)
            .from(site::BG_STALL, 1)
            .payload(2_000) // stall 2 s per grab — far past any pause
            .install();
        let gc = Gc::new(config(16 << 20, SweepMode::Eager));
        churn(&gc, 3, 2_000_000).unwrap();
        assert!(fault::fires(site::BG_STALL) > 0, "tracer never stalled");
        let s = counters(&gc);
        assert!(
            s["gc_watchdog_reclaimed_packets_total"] >= 1.0,
            "watchdog never condemned the stalled tracer's packet"
        );
        gc.audit_now();
        gc.shutdown();
    });
}

/// A background tracer dying outright (thread exits its run loop) must
/// leave the collector fully functional on mutator increments alone.
#[test]
fn dead_tracer_does_not_stop_collection() {
    with_deadline("tracer_death", || {
        let _guard = FaultPlan::new(0xDEAD).nth(site::BG_DEATH, 2).install();
        let gc = Gc::new(config(16 << 20, SweepMode::Eager));
        churn(&gc, 4, 2_000_000).unwrap();
        assert_eq!(fault::fires(site::BG_DEATH), 1, "nth trigger fires once");
        let s = counters(&gc);
        assert_eq!(
            s["gc_bg_tracers_alive"], 0.0,
            "dead tracer still counted alive"
        );
        assert!(gc.log().cycles.len() >= 4, "collection stopped after death");
        gc.audit_now();
        gc.shutdown();
    });
}

/// Mutators that never ack the §5.3 card handshake must not stall card
/// cleaning forever: the collector times out into the global-fence
/// fallback and keeps going.
#[test]
fn delayed_handshake_acks_hit_timeout_fallback() {
    with_deadline("handshake_delay", || {
        let _guard = FaultPlan::new(0xCA4D)
            .probability_permille(site::HANDSHAKE_DELAY, 1000)
            .install();
        let mut cfg = config(16 << 20, SweepMode::Eager);
        cfg.handshake_timeout = Duration::from_micros(200);
        let gc = Gc::new(cfg);
        // Two mutator threads: every handshake one of them requests (or
        // the background tracer drives) leaves the other un-acked, so
        // with acks suppressed each one must resolve via timeout.
        // Whether a given cycle cleans any card *concurrently* (rather
        // than deferring them all to the pause, where parked mutators
        // are implicitly acked) is schedule-dependent, so churn cycles
        // until a concurrent handshake has both fired the fault and
        // been forced through the timeout fallback, bounded by the
        // cycle cap (and, ultimately, the wall-clock watchdog).
        let gc2 = Arc::clone(&gc);
        let done = Arc::new(std::sync::Mutex::new(false));
        let done2 = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            while !*done2.lock().unwrap() {
                churn(&gc2, gc2.log().cycles.len() + 1, 500_000).unwrap();
            }
        });
        for _ in 0..40 {
            churn(&gc, gc.log().cycles.len() + 1, 500_000).unwrap();
            if fault::fires(site::HANDSHAKE_DELAY) > 0
                && counters(&gc)["gc_handshake_timeouts_total"] >= 1.0
            {
                break;
            }
        }
        *done.lock().unwrap() = true;
        t.join().unwrap();
        assert!(fault::fires(site::HANDSHAKE_DELAY) > 0, "plan never fired");
        let s = counters(&gc);
        assert!(
            s["gc_handshake_timeouts_total"] >= 1.0,
            "suppressed acks never forced the timeout fallback"
        );
        gc.audit_now();
        gc.shutdown();
    });
}

/// CAS-retry storms on the packet lists plus artificial card floods:
/// pure contention and extra card work, which must cost time but never
/// soundness.
#[test]
fn cas_storms_and_card_floods_stay_sound() {
    with_deadline("cas_storm_card_flood", || {
        let _guard = FaultPlan::new(0x5707)
            .probability_permille(site::POOL_CAS_STORM, 250)
            // The site is only reachable from slow-path refills inside a
            // concurrent phase, so hits are scarce: flood on every other.
            .every_k(site::CARD_FLOOD, 2)
            .payload(300) // dirty ~300 spread cards per flood
            .install();
        let gc = Gc::new(config(16 << 20, SweepMode::Eager));
        churn(&gc, 4, 2_000_000).unwrap();
        assert!(
            fault::fires(site::POOL_CAS_STORM) > 0,
            "no CAS storms ({} hits)",
            fault::hits(site::POOL_CAS_STORM)
        );
        assert!(
            fault::fires(site::CARD_FLOOD) > 0,
            "no card floods ({} hits)",
            fault::hits(site::CARD_FLOOD)
        );
        gc.audit_now();
        gc.shutdown();
    });
}

/// Everything at once, across seeds and sweep modes: layered faults on
/// allocation, the pool, the tracers, and the handshake. The contract
/// is the weak one — finish with a clean audit or a typed OOM.
#[test]
fn kitchen_sink_matrix_completes_or_fails_typed() {
    for (seed, sweep) in [
        (0xC0FFEEu64, SweepMode::Eager),
        (0xDECADE, SweepMode::Lazy),
        (7, SweepMode::Eager),
        (99, SweepMode::Lazy),
    ] {
        with_deadline("kitchen_sink", move || {
            let _guard = FaultPlan::new(seed)
                .probability_permille(site::HEAP_REFILL, 50)
                .probability_permille(site::POOL_EXHAUSTED, 200)
                .probability_permille(site::POOL_CAS_STORM, 100)
                .probability_permille(site::HANDSHAKE_DELAY, 300)
                .every_k(site::CARD_FLOOD, 9)
                .payload(200)
                .nth(site::BG_STALL, 3)
                .payload(500)
                .install();
            let mut cfg = config(12 << 20, sweep);
            cfg.pool = PoolConfig {
                packets: 16,
                capacity: 32,
            };
            let gc = Gc::new(cfg);
            match churn(&gc, 4, 2_000_000) {
                Ok(()) => {}
                Err(e) => assert!(
                    matches!(e, GcError::OutOfMemory { .. }),
                    "only typed OOM is an acceptable failure: {e:?}"
                ),
            }
            gc.audit_now();
            gc.shutdown();
        });
    }
}

/// Builds a rooted chain of `bytes` worth of live nodes, growing the
/// heap on demand through the escalation ladder. Returns the error that
/// stopped it, if any.
fn fill_live(m: &mut mcgc::Mutator, bytes: usize) -> Result<(), GcError> {
    let node = ObjectShape::new(1, 30, 0); // 32 granules = 256 B
    let head = m.alloc(node)?;
    let slot = m.root_push(Some(head));
    let mut prev = head;
    let mut allocated = node.bytes();
    while allocated < bytes {
        let n = m.alloc(node)?;
        m.write_ref(n, 0, Some(prev));
        m.root_set(slot, Some(n));
        prev = n;
        allocated += node.bytes();
    }
    Ok(())
}

/// Segment reservation failing under pressure (the mmap-failure
/// analogue): the grow rung must come back empty-handed, the one
/// bounded backpressure stall must run and expire at its deadline — not
/// hang — and the request must surface as a typed OOM whose snapshot
/// records the refused growth, all with a clean final audit.
#[test]
fn segment_reserve_faults_end_in_typed_oom_after_bounded_stall() {
    with_deadline("segment_reserve", || {
        let _guard = FaultPlan::new(0x5E6)
            .from(site::HEAP_SEGMENT_RESERVE, 1)
            .install();
        let mut cfg = config(4 << 20, SweepMode::Eager);
        cfg.heap.max_heap_bytes = 16 << 20; // headroom the fault denies
        cfg.alloc_stall_deadline = Duration::from_millis(50);
        let gc = Gc::new(cfg);
        let mut m = gc.register_mutator();
        let started = Instant::now();
        let err = fill_live(&mut m, 8 << 20).expect_err("live data past the reservation must OOM");
        // Bounded: collections + one 50 ms stall, nowhere near the
        // watchdog. The stall must actually have run before giving up.
        assert!(
            started.elapsed() < DEADLINE / 2,
            "ladder took {:?}: stall not bounded",
            started.elapsed()
        );
        match err {
            GcError::OutOfMemory {
                stalled,
                grows,
                full_collections,
                segments_committed,
                segments_max,
                ..
            } => {
                assert!(stalled, "backpressure stall never ran");
                assert_eq!(grows, 0, "grow rung succeeded despite the fault");
                assert!(full_collections >= 1, "ladder skipped collections");
                assert!(
                    segments_committed < segments_max,
                    "no headroom: the grow rung was never even eligible"
                );
            }
        }
        let msg = err.to_string();
        assert!(msg.contains("segments"), "no segment context: {msg}");
        assert!(msg.contains("stalled: true"), "no stall context: {msg}");
        assert!(fault::fires(site::HEAP_SEGMENT_RESERVE) > 0, "never fired");
        let s = counters(&gc);
        assert!(s["gc_alloc_stalls_total"] >= 1.0, "stall not counted");
        assert_eq!(s["gc_alloc_rung_grow_total"], 0.0);
        assert_eq!(s["heap_segment_grows_total"], 0.0);
        // The collector survives: drop the chain and allocate again.
        m.root_truncate(0);
        m.collect();
        let ok = m.alloc(ObjectShape::new(0, 4, 0)).unwrap();
        m.root_push(Some(ok));
        drop(m);
        gc.audit_now();
        gc.shutdown();
    });
}

/// Segment release failing (the munmap-failure analogue): the trough
/// after a burst wants to return empty segments, the fault refuses, and
/// the heap must simply keep them committed — still sound, still
/// allocatable, no shrink recorded.
#[test]
fn segment_release_faults_keep_segments_committed_and_sound() {
    with_deadline("segment_release", || {
        let _guard = FaultPlan::new(0x5E7)
            .from(site::HEAP_SEGMENT_RELEASE, 1)
            .install();
        let mut cfg = config(2 << 20, SweepMode::Eager);
        cfg.heap.segment_bytes = 256 << 10;
        cfg.heap.max_heap_bytes = 8 << 20;
        let gc = Gc::new(cfg);
        let mut m = gc.register_mutator();
        // Burst: live data past the initial reservation forces grows.
        fill_live(&mut m, 3 << 20).unwrap();
        let peak = gc.heap().segment_stats();
        assert!(peak.grows > 0, "burst never grew the heap");
        // Trough: drop the chain; the next full collection would release
        // the now-empty grown segments, but every release is refused.
        m.root_truncate(0);
        m.collect();
        m.collect();
        assert!(fault::fires(site::HEAP_SEGMENT_RELEASE) > 0, "never fired");
        let after = gc.heap().segment_stats();
        assert_eq!(after.shrinks, 0, "release succeeded despite the fault");
        assert!(
            after.committed > after.initial,
            "segments vanished although release was refused"
        );
        // Kept segments stay usable: fill into them again.
        fill_live(&mut m, 2 << 20).unwrap();
        m.root_truncate(0);
        drop(m);
        gc.audit_now();
        gc.shutdown();
    });
}

/// A scheduler worker stalling after claiming an open bucket must delay
/// the pause by at most its bounded sleep, never hang it: the leader
/// pulls the same atomic cursors and finishes the bucket's work alone.
/// The stall is watchdog-visible through the `gc_sched_stalls_total`
/// gauge.
///
/// Stop-the-world mode on purpose: its multi-millisecond drain and
/// sweep buckets keep the claim window open long enough that the pool
/// worker wins claims even on a single-CPU host (concurrent mode's
/// sub-millisecond buckets can close before the OS ever schedules the
/// worker, leaving the stall site unreached).
#[test]
fn stalled_sched_worker_never_hangs_the_pause() {
    with_deadline("sched_stall", || {
        let _guard = FaultPlan::new(0x6A46)
            .every_k(site::SCHED_STALL, 1)
            .payload(50) // 50 ms nap per hit: bounded, leader-visible
            .install();
        let mut cfg = config(16 << 20, SweepMode::Eager);
        cfg.mode = CollectorMode::StopTheWorld;
        let gc = Gc::new(cfg);
        churn(&gc, 3, 2_000_000).unwrap();
        assert!(fault::fires(site::SCHED_STALL) > 0, "worker never stalled");
        let s = counters(&gc);
        assert!(
            s["gc_sched_stalls_total"] >= 1.0,
            "stall not visible in telemetry"
        );
        assert_eq!(s["gc_sched_workers"], 2.0);
        assert!(
            s["gc_sched_sessions_total"] >= 1.0,
            "pauses must open scheduler sessions"
        );
        assert!(gc.log().cycles.len() >= 3, "pauses stopped completing");
        // The collector is still fully functional after the stalls.
        churn(&gc, 4, 2_000_000).unwrap();
        gc.audit_now();
        gc.shutdown();
    });
}

/// Tentpole chaos plan: the background sweeper stalls (bounded nap per
/// quantum, injected before it claims any chunk) during lazy sweep
/// epochs. The resilience contract must hold without it: allocation
/// self-serves — a refill that finds its bins empty claims and sweeps
/// unswept chunks itself — so mutators never wedge behind the sleeping
/// sweeper, and the next cycle's straggler fence drains whatever the
/// sweeper never got to. Clean audit or typed OOM; never a hang (the
/// `with_deadline` watchdog turns one into exit 86).
#[test]
fn stalled_background_sweeper_does_not_wedge_allocation() {
    with_deadline("bg_sweep_stall", || {
        let _guard = FaultPlan::new(0xB65A11)
            .every_k(site::SWEEP_BG_STALL, 1) // every quantum stalls
            .payload(100) // 100 ms nap: long vs. the refill path
            .install();
        let gc = Gc::new(config(16 << 20, SweepMode::Lazy));
        match churn(&gc, 4, 4_000_000) {
            Ok(()) => {}
            // The contract allows a typed OOM, never an untyped failure.
            Err(GcError::OutOfMemory { .. }) => {
                gc.audit_now();
                gc.shutdown();
                return;
            }
        }
        assert!(
            fault::fires(site::SWEEP_BG_STALL) > 0,
            "background sweeper never reached a stalled quantum"
        );
        let s = counters(&gc);
        // With the sweeper napping, reclamation lands on the mutators'
        // refill path (and the straggler fences) instead of stalling.
        assert!(
            s["gc_sweep_on_refill_chunks_total"] + s["gc_sweep_straggler_chunks_total"] >= 1.0,
            "no chunk was swept by refill or the straggler fence"
        );
        assert!(gc.log().cycles.len() >= 4, "cycles stopped completing");
        // Epochs still complete: every cycle's fence is bounded by the
        // heap's chunk count, and the collector stays fully functional.
        churn(&gc, 6, 4_000_000).unwrap();
        gc.audit_now();
        gc.shutdown();
    });
}
