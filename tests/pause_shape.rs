//! The paper's headline claims as executable assertions: the concurrent
//! collector's pauses are a fraction of the stop-the-world baseline's,
//! at a bounded throughput cost, with most marking moved out of the
//! pause. Absolute numbers are testbed artifacts; these tests pin the
//! *shape* with generous margins so they hold on loaded CI machines.

use std::time::Duration;

use mcgc::workloads::jbb::{run_standalone, JbbOptions};
use mcgc::workloads::RunReport;
use mcgc::{CollectorMode, GcConfig, SweepMode, Trigger};

const HEAP: usize = 32 << 20;

fn run(mode: CollectorMode, tweak: impl Fn(&mut GcConfig)) -> RunReport {
    let mut cfg = GcConfig::with_heap_bytes(HEAP);
    cfg.mode = mode;
    cfg.background_threads = 2;
    tweak(&mut cfg);
    let mut opts = JbbOptions::sized_for(HEAP, 2, 0.6);
    opts.duration = Duration::from_millis(1500);
    run_standalone(cfg, &opts)
}

#[test]
fn cgc_cuts_average_pause_substantially() {
    let stw = run(CollectorMode::StopTheWorld, |_| {});
    let cgc = run(CollectorMode::Concurrent, |_| {});
    assert!(stw.log.cycles.len() >= 3, "{}", stw.log.cycles.len());
    assert!(cgc.log.cycles.len() >= 3, "{}", cgc.log.cycles.len());
    let stw_avg = stw.log.avg_pause_ms();
    let cgc_avg = cgc.log.avg_pause_ms();
    // Paper Figure 1: 75% reduction. Require at least 40%.
    assert!(
        cgc_avg < stw_avg * 0.6,
        "CGC avg pause {cgc_avg:.1} ms not well below STW {stw_avg:.1} ms"
    );
}

#[test]
fn cgc_moves_marking_out_of_the_pause() {
    let stw = run(CollectorMode::StopTheWorld, |_| {});
    let cgc = run(CollectorMode::Concurrent, |_| {});
    let stw_mark = stw.log.avg_mark_ms();
    let cgc_mark = cgc.log.avg_mark_ms();
    // Paper: mark component cut 86% (235 ms -> 34 ms). Require 50%.
    assert!(
        cgc_mark < stw_mark * 0.5,
        "CGC avg mark {cgc_mark:.1} ms vs STW {stw_mark:.1} ms"
    );
    // And the concurrent phase did real tracing work.
    let conc: u64 = cgc
        .log
        .cycles
        .iter()
        .map(|c| c.concurrent_traced_bytes())
        .sum();
    let stw_traced: u64 = cgc.log.cycles.iter().map(|c| c.stw_traced_bytes).sum();
    assert!(
        conc > stw_traced,
        "most tracing should be concurrent: {conc} vs {stw_traced}"
    );
}

#[test]
fn cgc_throughput_cost_is_bounded() {
    let stw = run(CollectorMode::StopTheWorld, |_| {});
    let cgc = run(CollectorMode::Concurrent, |_| {});
    // Paper: 10% SPECjbb throughput loss. Allow up to 40% on a noisy
    // 1-CPU host, and require CGC isn't somehow faster than the baseline
    // by a large margin (which would indicate the baseline is broken).
    let ratio = cgc.throughput() / stw.throughput();
    assert!(
        ratio > 0.6,
        "CGC throughput ratio {ratio:.2} — too much overhead"
    );
}

#[test]
fn stw_baseline_never_runs_concurrent_phases() {
    let stw = run(CollectorMode::StopTheWorld, |_| {});
    for c in &stw.log.cycles {
        assert_eq!(c.trigger, Some(Trigger::Baseline));
        assert_eq!(c.concurrent_traced_bytes(), 0);
        assert_eq!(c.increments, 0);
    }
}

#[test]
fn floating_garbage_appears_only_in_cgc() {
    let stw = run(CollectorMode::StopTheWorld, |_| {});
    let cgc = run(CollectorMode::Concurrent, |_| {});
    // Mostly-concurrent collection retains floating garbage: occupancy
    // after CGC cycles is >= the baseline's (Table 1 row 2).
    let stw_occ = stw.log.avg_occupancy_after();
    let cgc_occ = cgc.log.avg_occupancy_after();
    assert!(
        cgc_occ >= stw_occ - 0.02,
        "CGC occupancy {cgc_occ:.3} vs STW {stw_occ:.3}"
    );
}

#[test]
fn lazy_sweep_removes_sweep_from_pause() {
    let eager = run(CollectorMode::Concurrent, |c| c.sweep = SweepMode::Eager);
    let lazy = run(CollectorMode::Concurrent, |c| c.sweep = SweepMode::Lazy);
    let eager_sweep = eager.log.avg_sweep_ms();
    let lazy_sweep = lazy.log.avg_sweep_ms();
    assert!(eager_sweep > 0.0, "eager sweep must cost pause time");
    assert_eq!(lazy_sweep, 0.0, "lazy sweep happens outside the pause");
    // And lazy must still reclaim memory (the run completes without OOM)
    // with pauses no worse than eager's (generous noise headroom: the
    // runs are independent and share the machine with the rest of the
    // suite, so per-cycle work can drift between them).
    assert!(
        lazy.log.avg_pause_ms() < eager.log.avg_pause_ms() * 1.5 + 2.0,
        "lazy {:.2} vs eager {:.2}",
        lazy.log.avg_pause_ms(),
        eager.log.avg_pause_ms()
    );
}

#[test]
fn lazy_cgc_pause_has_no_bulk_sweep_phase() {
    let lazy = run(CollectorMode::Concurrent, |c| c.sweep = SweepMode::Lazy);
    assert!(lazy.log.cycles.len() >= 3, "{}", lazy.log.cycles.len());
    let total_chunks: u64 = (HEAP / 8) as u64 / GcConfig::default().sweep_chunk_granules as u64;
    for c in &lazy.log.cycles {
        // The pause's sweep step only *publishes* the epoch (snapshot +
        // per-chunk claim states); reclamation happens off-pause via
        // sweep-on-refill and the background sweeper.
        assert_eq!(
            c.sweep_ms, 0.0,
            "cycle {}: modelled sweep in pause",
            c.cycle
        );
        assert!(
            c.sweep_wall < Duration::from_millis(2),
            "cycle {}: sweep step took {:?} — that's a bulk sweep, not a plan install",
            c.cycle,
            c.sweep_wall
        );
        // The straggler fence is bounded and counted: it can never have
        // more chunks than the heap holds, and it runs pre-pause (its
        // wall time is reported separately, not inside pause_wall).
        assert!(
            c.straggler_chunks <= total_chunks + 1,
            "cycle {}: {} straggler chunks vs ~{total_chunks} total",
            c.cycle,
            c.straggler_chunks
        );
    }
    // With the bulk sweep off the pause path, the measured pause is just
    // cards + roots + drain + bookkeeping: sub-millisecond on this bench
    // heap shape (the eager sweep alone used to cost several ms here).
    // Wall-clock, so only meaningful in optimized builds — debug builds
    // inflate every phase ~20x and would assert nothing about the shape.
    // The sub-millisecond bar additionally needs real parallelism: on a
    // 1-2 core host the scheduler's pause workers, both background
    // threads, and the mutators timeshare the same CPU, so every phase
    // eats scheduler noise; there the bound is relaxed (but still far
    // below the several ms an in-pause bulk sweep costs on the same
    // host).
    if cfg!(not(debug_assertions)) {
        let steady: Vec<f64> = lazy
            .log
            .cycles
            .iter()
            .skip((lazy.log.cycles.len() / 4).min(4)) // warm-up: heap still growing
            .map(|c| c.pause_wall.as_secs_f64() * 1e3)
            .collect();
        let avg_wall_ms = steady.iter().sum::<f64>() / steady.len() as f64;
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let bound_ms = if cores >= 4 { 1.0 } else { 3.0 };
        assert!(
            avg_wall_ms < bound_ms,
            "avg measured cgc pause: {avg_wall_ms:.2} ms (bound {bound_ms} ms on {cores} cores)"
        );
    }
}

#[test]
fn pause_path_issues_at_most_one_wakeup_per_worker() {
    // The scheduler's acceptance criterion: no per-phase barriers. A
    // pause opens exactly one work-bucket session, and that open is the
    // only wakeup — each of the `stw_workers - 1` helpers is notified
    // at most once per pause, no matter how many phase buckets the
    // session publishes. With eager sweep there are no straggler-fence
    // sessions, so sessions and pauses must agree exactly.
    for mode in [CollectorMode::StopTheWorld, CollectorMode::Concurrent] {
        let report = run(mode, |c| c.sweep = SweepMode::Eager);
        let pauses = report.log.cycles.len() as f64;
        let helpers = (GcConfig::with_heap_bytes(HEAP).stw_workers - 1) as f64;
        assert!(pauses >= 3.0, "want several pauses, got {pauses}");
        let sessions = report.metric("gc_sched_sessions_total");
        let wakeups = report.metric("gc_sched_wakeups_total");
        assert_eq!(
            sessions, pauses,
            "{mode:?}: eager cycles open exactly one session per pause"
        );
        assert!(
            wakeups <= pauses * helpers,
            "{mode:?}: {wakeups} wakeups for {pauses} pauses x {helpers} helpers \
             — a per-phase barrier is back on the pause path"
        );
    }
}

#[test]
fn two_card_passes_reduce_final_cleaning() {
    // §2.1 footnote 2: a second concurrent card-cleaning pass further
    // reduces the stop-the-world share of card cleaning.
    let one = run(CollectorMode::Concurrent, |c| c.card_clean_passes = 1);
    let two = run(CollectorMode::Concurrent, |c| c.card_clean_passes = 2);
    let one_final = one.log.avg_final_card_cleaning();
    let two_final = two.log.avg_final_card_cleaning();
    assert!(
        two_final <= one_final * 2.0 + 300.0,
        "second pass should not increase final cleaning much: {one_final:.0} -> {two_final:.0}"
    );
}

#[test]
fn measured_phase_walls_partition_the_pause() {
    let cgc = run(CollectorMode::Concurrent, |c| c.sweep = SweepMode::Eager);
    assert!(cgc.log.cycles.len() >= 3);
    for c in &cgc.log.cycles {
        // The five timed phases never exceed the whole pause; the
        // remainder is cache retirement, audits, and accounting.
        assert!(
            c.phase_wall_total() <= c.pause_wall,
            "cycle {}: phases {:?} > pause {:?}",
            c.cycle,
            c.phase_wall_total(),
            c.pause_wall
        );
        // Eager cycles always drain packets and sweep under the pause.
        assert!(c.drain_wall > Duration::ZERO, "cycle {}", c.cycle);
        assert!(c.sweep_wall > Duration::ZERO, "cycle {}", c.cycle);
    }
    // At least one non-fresh cycle spent wall time cleaning cards.
    assert!(
        cgc.log.cycles.iter().any(|c| c.cards_wall > Duration::ZERO),
        "no cycle recorded card-cleaning wall time"
    );
}
