//! Property-based tests of the heap substrate: the free list, bitmaps,
//! and sweep must uphold their invariants for arbitrary operation
//! sequences.

use mcgc::heap::{
    sweep_serial, AllocCache, Bitmap, FreeList, Heap, HeapConfig, ObjectShape,
};
use proptest::prelude::*;

proptest! {
    /// Free-list alloc/free round trips preserve the total and never
    /// produce overlapping extents.
    #[test]
    fn freelist_conserves_granules(ops in prop::collection::vec((1usize..64, any::<bool>()), 1..200)) {
        let total = 100_000usize;
        let mut fl = FreeList::with_extent(1, total);
        let mut held: Vec<(usize, usize)> = Vec::new();
        for (len, free_one) in ops {
            if free_one && !held.is_empty() {
                let (start, len) = held.swap_remove(held.len() / 2);
                fl.free(start, len);
            } else if let Some(start) = fl.alloc(len) {
                held.push((start, len));
            }
        }
        let held_total: usize = held.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(fl.free_granules() + held_total, total);
        // Extents are address-ordered and disjoint.
        let extents: Vec<_> = fl.iter().collect();
        for w in extents.windows(2) {
            prop_assert!(w[0].end() <= w[1].start, "overlap: {:?}", w);
        }
        // Held regions never overlap each other or free extents.
        let mut regions: Vec<(usize, usize)> = held
            .iter()
            .map(|&(s, l)| (s, s + l))
            .chain(extents.iter().map(|e| (e.start, e.end())))
            .collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "region overlap: {:?}", w);
        }
    }

    /// Bitmap range operations agree with per-bit operations.
    #[test]
    fn bitmap_ranges_match_bits(
        len in 1usize..500,
        sets in prop::collection::vec(0usize..500, 0..100),
        range in (0usize..500, 0usize..500),
    ) {
        let map = Bitmap::new(len);
        let mut model = vec![false; len];
        for s in sets {
            if s < len {
                map.set(s);
                model[s] = true;
            }
        }
        let (a, b) = range;
        let (start, end) = (a.min(b).min(len), a.max(b).min(len));
        prop_assert_eq!(
            map.count_range(start, end),
            model[start..end].iter().filter(|&&x| x).count()
        );
        prop_assert_eq!(
            map.next_set_before(start, end),
            (start..end).find(|&i| model[i])
        );
        prop_assert_eq!(
            map.prev_set(end),
            (0..end).rev().find(|&i| model[i])
        );
        map.clear_range(start, end);
        for (i, m) in model.iter_mut().enumerate().take(end).skip(start) {
            let _ = i;
            *m = false;
        }
        for i in 0..len {
            prop_assert_eq!(map.get(i), model[i], "bit {}", i);
        }
    }

    /// Sweeping with an arbitrary mark pattern conserves every granule:
    /// live + freed + dark = heap.
    #[test]
    fn sweep_conserves_heap(marks in prop::collection::vec(any::<bool>(), 500), chunk_pow in 6usize..12) {
        let heap = Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            cache_bytes: 4 << 10,
            large_object_bytes: 2 << 10,
            min_free_extent_granules: 2,
        });
        let mut cache = AllocCache::new();
        let mut objs = Vec::new();
        for i in 0..500u32 {
            let shape = ObjectShape::new(i % 3, i % 11, 1);
            let obj = loop {
                match heap.alloc_small(&mut cache, shape) {
                    Some(o) => break o,
                    None => prop_assert!(heap.refill_cache(&mut cache, shape.granules())),
                }
            };
            objs.push((obj, shape.granules()));
        }
        heap.retire_cache(&mut cache);
        let mut live_expected = 0usize;
        for (&(obj, g), &mark) in objs.iter().zip(&marks) {
            if mark {
                heap.mark(obj);
                live_expected += g;
            }
        }
        let stats = sweep_serial(&heap, 1 << chunk_pow);
        prop_assert_eq!(stats.live_granules, live_expected);
        prop_assert_eq!(
            stats.live_granules + stats.freed_granules + stats.dark_granules,
            heap.granules() - 1
        );
        // Marked objects keep allocation bits; unmarked lose them.
        for (&(obj, _), &mark) in objs.iter().zip(&marks) {
            prop_assert_eq!(heap.is_published(obj), mark);
        }
        // The swept heap verifies.
        let violations = mcgc::heap::verify(&heap, false);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    /// Header encoding round-trips for all field values.
    #[test]
    fn header_roundtrip(refs in 0u32..250, data in 0u32..250, class in any::<u8>()) {
        let shape = ObjectShape::new(refs, data, class);
        let heap = Heap::new(HeapConfig::with_heap_bytes(1 << 20));
        let mut cache = AllocCache::new();
        heap.refill_cache(&mut cache, shape.granules());
        let obj = heap.alloc_small(&mut cache, shape).unwrap();
        let h = heap.header(obj);
        prop_assert_eq!(h.ref_count, refs);
        prop_assert_eq!(h.data_count(), data);
        prop_assert_eq!(h.class_id, class);
        prop_assert_eq!(h.size_granules as usize, shape.granules());
    }
}
