/root/repo/target/debug/deps/pause_shape-559d6cbafb3cb32f.d: crates/mcgc/../../tests/pause_shape.rs

/root/repo/target/debug/deps/pause_shape-559d6cbafb3cb32f: crates/mcgc/../../tests/pause_shape.rs

crates/mcgc/../../tests/pause_shape.rs:
