/root/repo/target/debug/deps/heap_props-34efbbd7f78cf630.d: crates/mcgc/../../tests/heap_props.rs

/root/repo/target/debug/deps/libheap_props-34efbbd7f78cf630.rmeta: crates/mcgc/../../tests/heap_props.rs

crates/mcgc/../../tests/heap_props.rs:
