/root/repo/target/debug/deps/mcgc_telemetry-fe48c1083f562c27.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

/root/repo/target/debug/deps/libmcgc_telemetry-fe48c1083f562c27.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

/root/repo/target/debug/deps/libmcgc_telemetry-fe48c1083f562c27.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/ring.rs:
