/root/repo/target/debug/deps/table4_load_balancing-54067006f2ed15f0.d: crates/bench/benches/table4_load_balancing.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_load_balancing-54067006f2ed15f0.rmeta: crates/bench/benches/table4_load_balancing.rs Cargo.toml

crates/bench/benches/table4_load_balancing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
