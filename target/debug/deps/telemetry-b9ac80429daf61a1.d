/root/repo/target/debug/deps/telemetry-b9ac80429daf61a1.d: crates/mcgc/../../tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-b9ac80429daf61a1: crates/mcgc/../../tests/telemetry.rs

crates/mcgc/../../tests/telemetry.rs:
