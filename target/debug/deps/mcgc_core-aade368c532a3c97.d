/root/repo/target/debug/deps/mcgc_core-aade368c532a3c97.d: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs

/root/repo/target/debug/deps/libmcgc_core-aade368c532a3c97.rlib: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs

/root/repo/target/debug/deps/libmcgc_core-aade368c532a3c97.rmeta: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs

crates/core/src/lib.rs:
crates/core/src/background.rs:
crates/core/src/collector.rs:
crates/core/src/config.rs:
crates/core/src/mutator.rs:
crates/core/src/pacing.rs:
crates/core/src/roots.rs:
crates/core/src/stats.rs:
crates/core/src/telemetry.rs:
crates/core/src/tracing.rs:
