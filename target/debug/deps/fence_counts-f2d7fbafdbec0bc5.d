/root/repo/target/debug/deps/fence_counts-f2d7fbafdbec0bc5.d: crates/bench/benches/fence_counts.rs

/root/repo/target/debug/deps/libfence_counts-f2d7fbafdbec0bc5.rmeta: crates/bench/benches/fence_counts.rs

crates/bench/benches/fence_counts.rs:
