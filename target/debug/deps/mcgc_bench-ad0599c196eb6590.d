/root/repo/target/debug/deps/mcgc_bench-ad0599c196eb6590.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mcgc_bench-ad0599c196eb6590: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
