/root/repo/target/debug/deps/packet_protocol-75b1105eca3d9ab7.d: crates/mcgc/../../tests/packet_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libpacket_protocol-75b1105eca3d9ab7.rmeta: crates/mcgc/../../tests/packet_protocol.rs Cargo.toml

crates/mcgc/../../tests/packet_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
