/root/repo/target/debug/deps/ablation_card_passes-8e8745742d5c3dc5.d: crates/bench/benches/ablation_card_passes.rs

/root/repo/target/debug/deps/libablation_card_passes-8e8745742d5c3dc5.rmeta: crates/bench/benches/ablation_card_passes.rs

crates/bench/benches/ablation_card_passes.rs:
