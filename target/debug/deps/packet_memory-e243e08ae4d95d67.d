/root/repo/target/debug/deps/packet_memory-e243e08ae4d95d67.d: crates/bench/benches/packet_memory.rs

/root/repo/target/debug/deps/libpacket_memory-e243e08ae4d95d67.rmeta: crates/bench/benches/packet_memory.rs

crates/bench/benches/packet_memory.rs:
