/root/repo/target/debug/deps/fence_counts-335e920c4b6d625f.d: crates/bench/benches/fence_counts.rs Cargo.toml

/root/repo/target/debug/deps/libfence_counts-335e920c4b6d625f.rmeta: crates/bench/benches/fence_counts.rs Cargo.toml

crates/bench/benches/fence_counts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
