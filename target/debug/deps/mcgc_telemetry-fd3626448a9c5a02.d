/root/repo/target/debug/deps/mcgc_telemetry-fd3626448a9c5a02.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

/root/repo/target/debug/deps/libmcgc_telemetry-fd3626448a9c5a02.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/ring.rs:
