/root/repo/target/debug/deps/fig2_pbob-9db0d46c7bccce39.d: crates/bench/benches/fig2_pbob.rs

/root/repo/target/debug/deps/libfig2_pbob-9db0d46c7bccce39.rmeta: crates/bench/benches/fig2_pbob.rs

crates/bench/benches/fig2_pbob.rs:
