/root/repo/target/debug/deps/ablation_lazy_sweep-d20affa72d1e2fdb.d: crates/bench/benches/ablation_lazy_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lazy_sweep-d20affa72d1e2fdb.rmeta: crates/bench/benches/ablation_lazy_sweep.rs Cargo.toml

crates/bench/benches/ablation_lazy_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
