/root/repo/target/debug/deps/mcgc_heap-855dbfbc38f66c9a.d: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_heap-855dbfbc38f66c9a.rmeta: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs Cargo.toml

crates/heap/src/lib.rs:
crates/heap/src/bitmap.rs:
crates/heap/src/cards.rs:
crates/heap/src/freelist.rs:
crates/heap/src/heap.rs:
crates/heap/src/object.rs:
crates/heap/src/sweep.rs:
crates/heap/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
