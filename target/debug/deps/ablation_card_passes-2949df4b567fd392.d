/root/repo/target/debug/deps/ablation_card_passes-2949df4b567fd392.d: crates/bench/benches/ablation_card_passes.rs Cargo.toml

/root/repo/target/debug/deps/libablation_card_passes-2949df4b567fd392.rmeta: crates/bench/benches/ablation_card_passes.rs Cargo.toml

crates/bench/benches/ablation_card_passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
