/root/repo/target/debug/deps/mcgc_heap-74e8ba832e9dc7ac.d: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs

/root/repo/target/debug/deps/mcgc_heap-74e8ba832e9dc7ac: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs

crates/heap/src/lib.rs:
crates/heap/src/bitmap.rs:
crates/heap/src/cards.rs:
crates/heap/src/freelist.rs:
crates/heap/src/heap.rs:
crates/heap/src/object.rs:
crates/heap/src/sweep.rs:
crates/heap/src/verify.rs:
