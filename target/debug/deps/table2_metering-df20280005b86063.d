/root/repo/target/debug/deps/table2_metering-df20280005b86063.d: crates/bench/benches/table2_metering.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_metering-df20280005b86063.rmeta: crates/bench/benches/table2_metering.rs Cargo.toml

crates/bench/benches/table2_metering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
