/root/repo/target/debug/deps/workload_integration-dbf7bb20d8cdc5b0.d: crates/mcgc/../../tests/workload_integration.rs

/root/repo/target/debug/deps/libworkload_integration-dbf7bb20d8cdc5b0.rmeta: crates/mcgc/../../tests/workload_integration.rs

crates/mcgc/../../tests/workload_integration.rs:
