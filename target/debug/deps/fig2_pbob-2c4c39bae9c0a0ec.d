/root/repo/target/debug/deps/fig2_pbob-2c4c39bae9c0a0ec.d: crates/bench/benches/fig2_pbob.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_pbob-2c4c39bae9c0a0ec.rmeta: crates/bench/benches/fig2_pbob.rs Cargo.toml

crates/bench/benches/fig2_pbob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
