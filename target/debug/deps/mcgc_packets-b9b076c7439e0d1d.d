/root/repo/target/debug/deps/mcgc_packets-b9b076c7439e0d1d.d: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

/root/repo/target/debug/deps/mcgc_packets-b9b076c7439e0d1d: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

crates/packets/src/lib.rs:
crates/packets/src/pool.rs:
crates/packets/src/tracer.rs:
