/root/repo/target/debug/deps/workload_integration-e95eecdca9cf4bbb.d: crates/mcgc/../../tests/workload_integration.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_integration-e95eecdca9cf4bbb.rmeta: crates/mcgc/../../tests/workload_integration.rs Cargo.toml

crates/mcgc/../../tests/workload_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
