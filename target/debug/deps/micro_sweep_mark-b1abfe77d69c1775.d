/root/repo/target/debug/deps/micro_sweep_mark-b1abfe77d69c1775.d: crates/bench/benches/micro_sweep_mark.rs

/root/repo/target/debug/deps/libmicro_sweep_mark-b1abfe77d69c1775.rmeta: crates/bench/benches/micro_sweep_mark.rs

crates/bench/benches/micro_sweep_mark.rs:
