/root/repo/target/debug/deps/mcgc_telemetry-078e4d2398deb1dc.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_telemetry-078e4d2398deb1dc.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
