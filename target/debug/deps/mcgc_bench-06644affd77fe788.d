/root/repo/target/debug/deps/mcgc_bench-06644affd77fe788.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcgc_bench-06644affd77fe788.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
