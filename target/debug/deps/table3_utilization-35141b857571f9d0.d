/root/repo/target/debug/deps/table3_utilization-35141b857571f9d0.d: crates/bench/benches/table3_utilization.rs

/root/repo/target/debug/deps/libtable3_utilization-35141b857571f9d0.rmeta: crates/bench/benches/table3_utilization.rs

crates/bench/benches/table3_utilization.rs:
