/root/repo/target/debug/deps/mcgc_membar-86b5398e5fc6d573.d: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

/root/repo/target/debug/deps/libmcgc_membar-86b5398e5fc6d573.rlib: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

/root/repo/target/debug/deps/libmcgc_membar-86b5398e5fc6d573.rmeta: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

crates/membar/src/lib.rs:
crates/membar/src/litmus.rs:
crates/membar/src/sync.rs:
crates/membar/src/weaksim.rs:
