/root/repo/target/debug/deps/micro_packets-6bd6ecb061364bcd.d: crates/bench/benches/micro_packets.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_packets-6bd6ecb061364bcd.rmeta: crates/bench/benches/micro_packets.rs Cargo.toml

crates/bench/benches/micro_packets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
