/root/repo/target/debug/deps/concurrent_correctness-60ab50da3c754366.d: crates/mcgc/../../tests/concurrent_correctness.rs

/root/repo/target/debug/deps/concurrent_correctness-60ab50da3c754366: crates/mcgc/../../tests/concurrent_correctness.rs

crates/mcgc/../../tests/concurrent_correctness.rs:
