/root/repo/target/debug/deps/concurrent_correctness-9fe80cd57e060d33.d: crates/mcgc/../../tests/concurrent_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent_correctness-9fe80cd57e060d33.rmeta: crates/mcgc/../../tests/concurrent_correctness.rs Cargo.toml

crates/mcgc/../../tests/concurrent_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
