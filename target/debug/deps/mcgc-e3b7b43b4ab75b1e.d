/root/repo/target/debug/deps/mcgc-e3b7b43b4ab75b1e.d: crates/mcgc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc-e3b7b43b4ab75b1e.rmeta: crates/mcgc/src/lib.rs Cargo.toml

crates/mcgc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
