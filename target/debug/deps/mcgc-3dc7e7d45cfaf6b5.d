/root/repo/target/debug/deps/mcgc-3dc7e7d45cfaf6b5.d: crates/mcgc/src/lib.rs

/root/repo/target/debug/deps/libmcgc-3dc7e7d45cfaf6b5.rlib: crates/mcgc/src/lib.rs

/root/repo/target/debug/deps/libmcgc-3dc7e7d45cfaf6b5.rmeta: crates/mcgc/src/lib.rs

crates/mcgc/src/lib.rs:
