/root/repo/target/debug/deps/mcgc_workloads-fbfdf38851ebd7b1.d: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs

/root/repo/target/debug/deps/libmcgc_workloads-fbfdf38851ebd7b1.rlib: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs

/root/repo/target/debug/deps/libmcgc_workloads-fbfdf38851ebd7b1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs

crates/workloads/src/lib.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/graphs.rs:
crates/workloads/src/javac.rs:
crates/workloads/src/jbb.rs:
crates/workloads/src/rng.rs:
