/root/repo/target/debug/deps/mcgc_packets-c4f825a52bca5361.d: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

/root/repo/target/debug/deps/libmcgc_packets-c4f825a52bca5361.rlib: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

/root/repo/target/debug/deps/libmcgc_packets-c4f825a52bca5361.rmeta: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

crates/packets/src/lib.rs:
crates/packets/src/pool.rs:
crates/packets/src/tracer.rs:
