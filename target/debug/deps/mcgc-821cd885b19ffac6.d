/root/repo/target/debug/deps/mcgc-821cd885b19ffac6.d: crates/mcgc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc-821cd885b19ffac6.rmeta: crates/mcgc/src/lib.rs Cargo.toml

crates/mcgc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
