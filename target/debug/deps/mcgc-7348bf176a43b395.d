/root/repo/target/debug/deps/mcgc-7348bf176a43b395.d: crates/mcgc/src/lib.rs

/root/repo/target/debug/deps/libmcgc-7348bf176a43b395.rmeta: crates/mcgc/src/lib.rs

crates/mcgc/src/lib.rs:
