/root/repo/target/debug/deps/mcgc_membar-eedad2a880ec394f.d: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

/root/repo/target/debug/deps/libmcgc_membar-eedad2a880ec394f.rmeta: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

crates/membar/src/lib.rs:
crates/membar/src/litmus.rs:
crates/membar/src/sync.rs:
crates/membar/src/weaksim.rs:
