/root/repo/target/debug/deps/packet_protocol-6d22e0e390ed6dc4.d: crates/mcgc/../../tests/packet_protocol.rs

/root/repo/target/debug/deps/libpacket_protocol-6d22e0e390ed6dc4.rmeta: crates/mcgc/../../tests/packet_protocol.rs

crates/mcgc/../../tests/packet_protocol.rs:
