/root/repo/target/debug/deps/mcgc_workloads-4b647f25b951fe47.d: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_workloads-4b647f25b951fe47.rmeta: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/graphs.rs:
crates/workloads/src/javac.rs:
crates/workloads/src/jbb.rs:
crates/workloads/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
