/root/repo/target/debug/deps/mcgc_membar-0781a901031cb1cc.d: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_membar-0781a901031cb1cc.rmeta: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs Cargo.toml

crates/membar/src/lib.rs:
crates/membar/src/litmus.rs:
crates/membar/src/sync.rs:
crates/membar/src/weaksim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
