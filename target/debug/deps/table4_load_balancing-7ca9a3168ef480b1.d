/root/repo/target/debug/deps/table4_load_balancing-7ca9a3168ef480b1.d: crates/bench/benches/table4_load_balancing.rs

/root/repo/target/debug/deps/libtable4_load_balancing-7ca9a3168ef480b1.rmeta: crates/bench/benches/table4_load_balancing.rs

crates/bench/benches/table4_load_balancing.rs:
