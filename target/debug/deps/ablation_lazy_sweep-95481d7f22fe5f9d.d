/root/repo/target/debug/deps/ablation_lazy_sweep-95481d7f22fe5f9d.d: crates/bench/benches/ablation_lazy_sweep.rs

/root/repo/target/debug/deps/libablation_lazy_sweep-95481d7f22fe5f9d.rmeta: crates/bench/benches/ablation_lazy_sweep.rs

crates/bench/benches/ablation_lazy_sweep.rs:
