/root/repo/target/debug/deps/mcgc_membar-1b2da34575d0ff9b.d: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

/root/repo/target/debug/deps/libmcgc_membar-1b2da34575d0ff9b.rmeta: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

crates/membar/src/lib.rs:
crates/membar/src/litmus.rs:
crates/membar/src/sync.rs:
crates/membar/src/weaksim.rs:
