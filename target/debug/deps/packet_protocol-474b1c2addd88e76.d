/root/repo/target/debug/deps/packet_protocol-474b1c2addd88e76.d: crates/mcgc/../../tests/packet_protocol.rs

/root/repo/target/debug/deps/packet_protocol-474b1c2addd88e76: crates/mcgc/../../tests/packet_protocol.rs

crates/mcgc/../../tests/packet_protocol.rs:
