/root/repo/target/debug/deps/pacing_props-0a92d176af36cc0e.d: crates/mcgc/../../tests/pacing_props.rs

/root/repo/target/debug/deps/pacing_props-0a92d176af36cc0e: crates/mcgc/../../tests/pacing_props.rs

crates/mcgc/../../tests/pacing_props.rs:
