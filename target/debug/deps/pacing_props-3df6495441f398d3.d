/root/repo/target/debug/deps/pacing_props-3df6495441f398d3.d: crates/mcgc/../../tests/pacing_props.rs

/root/repo/target/debug/deps/libpacing_props-3df6495441f398d3.rmeta: crates/mcgc/../../tests/pacing_props.rs

crates/mcgc/../../tests/pacing_props.rs:
