/root/repo/target/debug/deps/mcgc_packets-57bb1a8eb75f4975.d: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

/root/repo/target/debug/deps/libmcgc_packets-57bb1a8eb75f4975.rmeta: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

crates/packets/src/lib.rs:
crates/packets/src/pool.rs:
crates/packets/src/tracer.rs:
