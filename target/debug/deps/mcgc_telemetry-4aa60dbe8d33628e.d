/root/repo/target/debug/deps/mcgc_telemetry-4aa60dbe8d33628e.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

/root/repo/target/debug/deps/libmcgc_telemetry-4aa60dbe8d33628e.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/ring.rs:
