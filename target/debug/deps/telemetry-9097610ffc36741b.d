/root/repo/target/debug/deps/telemetry-9097610ffc36741b.d: crates/mcgc/../../tests/telemetry.rs

/root/repo/target/debug/deps/libtelemetry-9097610ffc36741b.rmeta: crates/mcgc/../../tests/telemetry.rs

crates/mcgc/../../tests/telemetry.rs:
