/root/repo/target/debug/deps/fig1_specjbb-82cee0785f9968e0.d: crates/bench/benches/fig1_specjbb.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_specjbb-82cee0785f9968e0.rmeta: crates/bench/benches/fig1_specjbb.rs Cargo.toml

crates/bench/benches/fig1_specjbb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
