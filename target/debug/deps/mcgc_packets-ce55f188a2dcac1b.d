/root/repo/target/debug/deps/mcgc_packets-ce55f188a2dcac1b.d: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

/root/repo/target/debug/deps/libmcgc_packets-ce55f188a2dcac1b.rmeta: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

crates/packets/src/lib.rs:
crates/packets/src/pool.rs:
crates/packets/src/tracer.rs:
