/root/repo/target/debug/deps/mcgc_telemetry-a4e10aa563c95360.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

/root/repo/target/debug/deps/mcgc_telemetry-a4e10aa563c95360: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/ring.rs:
