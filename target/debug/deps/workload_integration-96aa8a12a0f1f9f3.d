/root/repo/target/debug/deps/workload_integration-96aa8a12a0f1f9f3.d: crates/mcgc/../../tests/workload_integration.rs

/root/repo/target/debug/deps/workload_integration-96aa8a12a0f1f9f3: crates/mcgc/../../tests/workload_integration.rs

crates/mcgc/../../tests/workload_integration.rs:
