/root/repo/target/debug/deps/mcgc-6f2e4bbe1fc06e0b.d: crates/mcgc/src/lib.rs

/root/repo/target/debug/deps/mcgc-6f2e4bbe1fc06e0b: crates/mcgc/src/lib.rs

crates/mcgc/src/lib.rs:
