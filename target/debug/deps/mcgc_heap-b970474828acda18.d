/root/repo/target/debug/deps/mcgc_heap-b970474828acda18.d: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs

/root/repo/target/debug/deps/libmcgc_heap-b970474828acda18.rmeta: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs

crates/heap/src/lib.rs:
crates/heap/src/bitmap.rs:
crates/heap/src/cards.rs:
crates/heap/src/freelist.rs:
crates/heap/src/heap.rs:
crates/heap/src/object.rs:
crates/heap/src/sweep.rs:
crates/heap/src/verify.rs:
