/root/repo/target/debug/deps/mcgc_membar-9b4d284bda2fd444.d: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

/root/repo/target/debug/deps/mcgc_membar-9b4d284bda2fd444: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

crates/membar/src/lib.rs:
crates/membar/src/litmus.rs:
crates/membar/src/sync.rs:
crates/membar/src/weaksim.rs:
