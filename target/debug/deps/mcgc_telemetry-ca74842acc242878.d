/root/repo/target/debug/deps/mcgc_telemetry-ca74842acc242878.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_telemetry-ca74842acc242878.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
