/root/repo/target/debug/deps/mcgc_bench-122413a26c82d2d6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcgc_bench-122413a26c82d2d6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
