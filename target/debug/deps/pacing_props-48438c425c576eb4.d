/root/repo/target/debug/deps/pacing_props-48438c425c576eb4.d: crates/mcgc/../../tests/pacing_props.rs Cargo.toml

/root/repo/target/debug/deps/libpacing_props-48438c425c576eb4.rmeta: crates/mcgc/../../tests/pacing_props.rs Cargo.toml

crates/mcgc/../../tests/pacing_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
