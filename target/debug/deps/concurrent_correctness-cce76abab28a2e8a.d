/root/repo/target/debug/deps/concurrent_correctness-cce76abab28a2e8a.d: crates/mcgc/../../tests/concurrent_correctness.rs

/root/repo/target/debug/deps/libconcurrent_correctness-cce76abab28a2e8a.rmeta: crates/mcgc/../../tests/concurrent_correctness.rs

crates/mcgc/../../tests/concurrent_correctness.rs:
