/root/repo/target/debug/deps/table1_tracing_rates-390d0be986e5263d.d: crates/bench/benches/table1_tracing_rates.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_tracing_rates-390d0be986e5263d.rmeta: crates/bench/benches/table1_tracing_rates.rs Cargo.toml

crates/bench/benches/table1_tracing_rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
