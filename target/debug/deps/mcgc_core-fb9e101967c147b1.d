/root/repo/target/debug/deps/mcgc_core-fb9e101967c147b1.d: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs

/root/repo/target/debug/deps/mcgc_core-fb9e101967c147b1: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs

crates/core/src/lib.rs:
crates/core/src/background.rs:
crates/core/src/collector.rs:
crates/core/src/config.rs:
crates/core/src/mutator.rs:
crates/core/src/pacing.rs:
crates/core/src/roots.rs:
crates/core/src/stats.rs:
crates/core/src/telemetry.rs:
crates/core/src/tracing.rs:
