/root/repo/target/debug/deps/javac_pauses-b64bee95bf57f85b.d: crates/bench/benches/javac_pauses.rs

/root/repo/target/debug/deps/libjavac_pauses-b64bee95bf57f85b.rmeta: crates/bench/benches/javac_pauses.rs

crates/bench/benches/javac_pauses.rs:
