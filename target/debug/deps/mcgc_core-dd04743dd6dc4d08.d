/root/repo/target/debug/deps/mcgc_core-dd04743dd6dc4d08.d: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_core-dd04743dd6dc4d08.rmeta: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/background.rs:
crates/core/src/collector.rs:
crates/core/src/config.rs:
crates/core/src/mutator.rs:
crates/core/src/pacing.rs:
crates/core/src/roots.rs:
crates/core/src/stats.rs:
crates/core/src/telemetry.rs:
crates/core/src/tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
