/root/repo/target/debug/deps/telemetry_overhead-fa04587d7240ec53.d: crates/bench/benches/telemetry_overhead.rs

/root/repo/target/debug/deps/libtelemetry_overhead-fa04587d7240ec53.rmeta: crates/bench/benches/telemetry_overhead.rs

crates/bench/benches/telemetry_overhead.rs:
