/root/repo/target/debug/deps/packet_memory-5d2c63c2086ef622.d: crates/bench/benches/packet_memory.rs Cargo.toml

/root/repo/target/debug/deps/libpacket_memory-5d2c63c2086ef622.rmeta: crates/bench/benches/packet_memory.rs Cargo.toml

crates/bench/benches/packet_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
