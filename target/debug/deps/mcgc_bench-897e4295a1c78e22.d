/root/repo/target/debug/deps/mcgc_bench-897e4295a1c78e22.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcgc_bench-897e4295a1c78e22.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcgc_bench-897e4295a1c78e22.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
