/root/repo/target/debug/deps/table2_metering-d243f3375dc72e0b.d: crates/bench/benches/table2_metering.rs

/root/repo/target/debug/deps/libtable2_metering-d243f3375dc72e0b.rmeta: crates/bench/benches/table2_metering.rs

crates/bench/benches/table2_metering.rs:
