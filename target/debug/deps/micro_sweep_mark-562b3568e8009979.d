/root/repo/target/debug/deps/micro_sweep_mark-562b3568e8009979.d: crates/bench/benches/micro_sweep_mark.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_sweep_mark-562b3568e8009979.rmeta: crates/bench/benches/micro_sweep_mark.rs Cargo.toml

crates/bench/benches/micro_sweep_mark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
