/root/repo/target/debug/deps/telemetry-ccea5e2fb5d6e620.d: crates/mcgc/../../tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-ccea5e2fb5d6e620.rmeta: crates/mcgc/../../tests/telemetry.rs Cargo.toml

crates/mcgc/../../tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
