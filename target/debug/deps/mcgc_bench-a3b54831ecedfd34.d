/root/repo/target/debug/deps/mcgc_bench-a3b54831ecedfd34.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_bench-a3b54831ecedfd34.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
