/root/repo/target/debug/deps/mcgc_workloads-85033621eab516dc.d: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs

/root/repo/target/debug/deps/libmcgc_workloads-85033621eab516dc.rmeta: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs

crates/workloads/src/lib.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/graphs.rs:
crates/workloads/src/javac.rs:
crates/workloads/src/jbb.rs:
crates/workloads/src/rng.rs:
