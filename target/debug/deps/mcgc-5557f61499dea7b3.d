/root/repo/target/debug/deps/mcgc-5557f61499dea7b3.d: crates/mcgc/src/lib.rs

/root/repo/target/debug/deps/libmcgc-5557f61499dea7b3.rmeta: crates/mcgc/src/lib.rs

crates/mcgc/src/lib.rs:
