/root/repo/target/debug/deps/micro_packets-c1d6ea43b6ab486c.d: crates/bench/benches/micro_packets.rs

/root/repo/target/debug/deps/libmicro_packets-c1d6ea43b6ab486c.rmeta: crates/bench/benches/micro_packets.rs

crates/bench/benches/micro_packets.rs:
