/root/repo/target/debug/deps/mcgc_packets-8d057fb85b4e6197.d: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_packets-8d057fb85b4e6197.rmeta: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs Cargo.toml

crates/packets/src/lib.rs:
crates/packets/src/pool.rs:
crates/packets/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
