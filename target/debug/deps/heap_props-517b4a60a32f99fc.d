/root/repo/target/debug/deps/heap_props-517b4a60a32f99fc.d: crates/mcgc/../../tests/heap_props.rs

/root/repo/target/debug/deps/heap_props-517b4a60a32f99fc: crates/mcgc/../../tests/heap_props.rs

crates/mcgc/../../tests/heap_props.rs:
