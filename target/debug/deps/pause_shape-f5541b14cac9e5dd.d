/root/repo/target/debug/deps/pause_shape-f5541b14cac9e5dd.d: crates/mcgc/../../tests/pause_shape.rs

/root/repo/target/debug/deps/libpause_shape-f5541b14cac9e5dd.rmeta: crates/mcgc/../../tests/pause_shape.rs

crates/mcgc/../../tests/pause_shape.rs:
