/root/repo/target/debug/deps/mcgc_membar-21f1e12d5a7f435c.d: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs Cargo.toml

/root/repo/target/debug/deps/libmcgc_membar-21f1e12d5a7f435c.rmeta: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs Cargo.toml

crates/membar/src/lib.rs:
crates/membar/src/litmus.rs:
crates/membar/src/sync.rs:
crates/membar/src/weaksim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
