/root/repo/target/debug/deps/pause_shape-2dc3da3c0f2b9ccb.d: crates/mcgc/../../tests/pause_shape.rs Cargo.toml

/root/repo/target/debug/deps/libpause_shape-2dc3da3c0f2b9ccb.rmeta: crates/mcgc/../../tests/pause_shape.rs Cargo.toml

crates/mcgc/../../tests/pause_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
