/root/repo/target/debug/deps/table1_tracing_rates-2918d1bb407d710d.d: crates/bench/benches/table1_tracing_rates.rs

/root/repo/target/debug/deps/libtable1_tracing_rates-2918d1bb407d710d.rmeta: crates/bench/benches/table1_tracing_rates.rs

crates/bench/benches/table1_tracing_rates.rs:
