/root/repo/target/debug/deps/table3_utilization-b0cb20931abe0471.d: crates/bench/benches/table3_utilization.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_utilization-b0cb20931abe0471.rmeta: crates/bench/benches/table3_utilization.rs Cargo.toml

crates/bench/benches/table3_utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
