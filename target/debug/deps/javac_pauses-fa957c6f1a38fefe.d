/root/repo/target/debug/deps/javac_pauses-fa957c6f1a38fefe.d: crates/bench/benches/javac_pauses.rs Cargo.toml

/root/repo/target/debug/deps/libjavac_pauses-fa957c6f1a38fefe.rmeta: crates/bench/benches/javac_pauses.rs Cargo.toml

crates/bench/benches/javac_pauses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
