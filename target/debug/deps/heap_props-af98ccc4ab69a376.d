/root/repo/target/debug/deps/heap_props-af98ccc4ab69a376.d: crates/mcgc/../../tests/heap_props.rs Cargo.toml

/root/repo/target/debug/deps/libheap_props-af98ccc4ab69a376.rmeta: crates/mcgc/../../tests/heap_props.rs Cargo.toml

crates/mcgc/../../tests/heap_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
