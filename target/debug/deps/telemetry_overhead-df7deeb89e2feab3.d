/root/repo/target/debug/deps/telemetry_overhead-df7deeb89e2feab3.d: crates/bench/benches/telemetry_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_overhead-df7deeb89e2feab3.rmeta: crates/bench/benches/telemetry_overhead.rs Cargo.toml

crates/bench/benches/telemetry_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
