/root/repo/target/debug/deps/fig1_specjbb-bcd843870c958b8e.d: crates/bench/benches/fig1_specjbb.rs

/root/repo/target/debug/deps/libfig1_specjbb-bcd843870c958b8e.rmeta: crates/bench/benches/fig1_specjbb.rs

crates/bench/benches/fig1_specjbb.rs:
