/root/repo/target/debug/examples/web_server-a0d7ba3d282f69d3.d: crates/mcgc/../../examples/web_server.rs

/root/repo/target/debug/examples/web_server-a0d7ba3d282f69d3: crates/mcgc/../../examples/web_server.rs

crates/mcgc/../../examples/web_server.rs:
