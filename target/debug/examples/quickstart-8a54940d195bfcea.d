/root/repo/target/debug/examples/quickstart-8a54940d195bfcea.d: crates/mcgc/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8a54940d195bfcea: crates/mcgc/../../examples/quickstart.rs

crates/mcgc/../../examples/quickstart.rs:
