/root/repo/target/debug/examples/quickstart-9066c06c49e9ff9e.d: crates/mcgc/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9066c06c49e9ff9e.rmeta: crates/mcgc/../../examples/quickstart.rs Cargo.toml

crates/mcgc/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
