/root/repo/target/debug/examples/gc_top-f0add5f8a1fb2746.d: crates/mcgc/../../examples/gc_top.rs

/root/repo/target/debug/examples/gc_top-f0add5f8a1fb2746: crates/mcgc/../../examples/gc_top.rs

crates/mcgc/../../examples/gc_top.rs:
