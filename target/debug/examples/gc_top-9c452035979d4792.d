/root/repo/target/debug/examples/gc_top-9c452035979d4792.d: crates/mcgc/../../examples/gc_top.rs

/root/repo/target/debug/examples/libgc_top-9c452035979d4792.rmeta: crates/mcgc/../../examples/gc_top.rs

crates/mcgc/../../examples/gc_top.rs:
