/root/repo/target/debug/examples/gc_top-7ea7b2fcb4d21d97.d: crates/mcgc/../../examples/gc_top.rs Cargo.toml

/root/repo/target/debug/examples/libgc_top-7ea7b2fcb4d21d97.rmeta: crates/mcgc/../../examples/gc_top.rs Cargo.toml

crates/mcgc/../../examples/gc_top.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
