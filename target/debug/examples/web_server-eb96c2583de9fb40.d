/root/repo/target/debug/examples/web_server-eb96c2583de9fb40.d: crates/mcgc/../../examples/web_server.rs

/root/repo/target/debug/examples/libweb_server-eb96c2583de9fb40.rmeta: crates/mcgc/../../examples/web_server.rs

crates/mcgc/../../examples/web_server.rs:
