/root/repo/target/debug/examples/web_server-04aade2445fdb70c.d: crates/mcgc/../../examples/web_server.rs Cargo.toml

/root/repo/target/debug/examples/libweb_server-04aade2445fdb70c.rmeta: crates/mcgc/../../examples/web_server.rs Cargo.toml

crates/mcgc/../../examples/web_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
