/root/repo/target/debug/examples/tuning-a27603aaac274373.d: crates/mcgc/../../examples/tuning.rs

/root/repo/target/debug/examples/tuning-a27603aaac274373: crates/mcgc/../../examples/tuning.rs

crates/mcgc/../../examples/tuning.rs:
