/root/repo/target/debug/examples/gc_compare-bdba56176a7561b1.d: crates/mcgc/../../examples/gc_compare.rs Cargo.toml

/root/repo/target/debug/examples/libgc_compare-bdba56176a7561b1.rmeta: crates/mcgc/../../examples/gc_compare.rs Cargo.toml

crates/mcgc/../../examples/gc_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
