/root/repo/target/debug/examples/tuning-28fefca464535511.d: crates/mcgc/../../examples/tuning.rs

/root/repo/target/debug/examples/libtuning-28fefca464535511.rmeta: crates/mcgc/../../examples/tuning.rs

crates/mcgc/../../examples/tuning.rs:
