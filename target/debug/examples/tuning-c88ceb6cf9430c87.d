/root/repo/target/debug/examples/tuning-c88ceb6cf9430c87.d: crates/mcgc/../../examples/tuning.rs Cargo.toml

/root/repo/target/debug/examples/libtuning-c88ceb6cf9430c87.rmeta: crates/mcgc/../../examples/tuning.rs Cargo.toml

crates/mcgc/../../examples/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
