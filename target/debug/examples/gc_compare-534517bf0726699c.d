/root/repo/target/debug/examples/gc_compare-534517bf0726699c.d: crates/mcgc/../../examples/gc_compare.rs

/root/repo/target/debug/examples/gc_compare-534517bf0726699c: crates/mcgc/../../examples/gc_compare.rs

crates/mcgc/../../examples/gc_compare.rs:
