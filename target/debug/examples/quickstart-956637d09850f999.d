/root/repo/target/debug/examples/quickstart-956637d09850f999.d: crates/mcgc/../../examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-956637d09850f999.rmeta: crates/mcgc/../../examples/quickstart.rs

crates/mcgc/../../examples/quickstart.rs:
