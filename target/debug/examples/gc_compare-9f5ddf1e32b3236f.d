/root/repo/target/debug/examples/gc_compare-9f5ddf1e32b3236f.d: crates/mcgc/../../examples/gc_compare.rs

/root/repo/target/debug/examples/libgc_compare-9f5ddf1e32b3236f.rmeta: crates/mcgc/../../examples/gc_compare.rs

crates/mcgc/../../examples/gc_compare.rs:
