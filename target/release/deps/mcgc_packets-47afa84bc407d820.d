/root/repo/target/release/deps/mcgc_packets-47afa84bc407d820.d: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

/root/repo/target/release/deps/libmcgc_packets-47afa84bc407d820.rlib: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

/root/repo/target/release/deps/libmcgc_packets-47afa84bc407d820.rmeta: crates/packets/src/lib.rs crates/packets/src/pool.rs crates/packets/src/tracer.rs

crates/packets/src/lib.rs:
crates/packets/src/pool.rs:
crates/packets/src/tracer.rs:
