/root/repo/target/release/deps/mcgc-be3f599ffdbb138e.d: crates/mcgc/src/lib.rs

/root/repo/target/release/deps/libmcgc-be3f599ffdbb138e.rlib: crates/mcgc/src/lib.rs

/root/repo/target/release/deps/libmcgc-be3f599ffdbb138e.rmeta: crates/mcgc/src/lib.rs

crates/mcgc/src/lib.rs:
