/root/repo/target/release/deps/mcgc_membar-76779fa3b0e3eaa6.d: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

/root/repo/target/release/deps/libmcgc_membar-76779fa3b0e3eaa6.rlib: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

/root/repo/target/release/deps/libmcgc_membar-76779fa3b0e3eaa6.rmeta: crates/membar/src/lib.rs crates/membar/src/litmus.rs crates/membar/src/sync.rs crates/membar/src/weaksim.rs

crates/membar/src/lib.rs:
crates/membar/src/litmus.rs:
crates/membar/src/sync.rs:
crates/membar/src/weaksim.rs:
