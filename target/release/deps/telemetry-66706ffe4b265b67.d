/root/repo/target/release/deps/telemetry-66706ffe4b265b67.d: crates/mcgc/../../tests/telemetry.rs

/root/repo/target/release/deps/telemetry-66706ffe4b265b67: crates/mcgc/../../tests/telemetry.rs

crates/mcgc/../../tests/telemetry.rs:
