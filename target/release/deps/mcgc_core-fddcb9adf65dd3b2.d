/root/repo/target/release/deps/mcgc_core-fddcb9adf65dd3b2.d: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs

/root/repo/target/release/deps/libmcgc_core-fddcb9adf65dd3b2.rlib: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs

/root/repo/target/release/deps/libmcgc_core-fddcb9adf65dd3b2.rmeta: crates/core/src/lib.rs crates/core/src/background.rs crates/core/src/collector.rs crates/core/src/config.rs crates/core/src/mutator.rs crates/core/src/pacing.rs crates/core/src/roots.rs crates/core/src/stats.rs crates/core/src/telemetry.rs crates/core/src/tracing.rs

crates/core/src/lib.rs:
crates/core/src/background.rs:
crates/core/src/collector.rs:
crates/core/src/config.rs:
crates/core/src/mutator.rs:
crates/core/src/pacing.rs:
crates/core/src/roots.rs:
crates/core/src/stats.rs:
crates/core/src/telemetry.rs:
crates/core/src/tracing.rs:
