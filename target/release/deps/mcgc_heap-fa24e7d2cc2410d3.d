/root/repo/target/release/deps/mcgc_heap-fa24e7d2cc2410d3.d: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs

/root/repo/target/release/deps/libmcgc_heap-fa24e7d2cc2410d3.rlib: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs

/root/repo/target/release/deps/libmcgc_heap-fa24e7d2cc2410d3.rmeta: crates/heap/src/lib.rs crates/heap/src/bitmap.rs crates/heap/src/cards.rs crates/heap/src/freelist.rs crates/heap/src/heap.rs crates/heap/src/object.rs crates/heap/src/sweep.rs crates/heap/src/verify.rs

crates/heap/src/lib.rs:
crates/heap/src/bitmap.rs:
crates/heap/src/cards.rs:
crates/heap/src/freelist.rs:
crates/heap/src/heap.rs:
crates/heap/src/object.rs:
crates/heap/src/sweep.rs:
crates/heap/src/verify.rs:
