/root/repo/target/release/deps/telemetry_overhead-a4e5970bf3c94696.d: crates/bench/benches/telemetry_overhead.rs

/root/repo/target/release/deps/telemetry_overhead-a4e5970bf3c94696: crates/bench/benches/telemetry_overhead.rs

crates/bench/benches/telemetry_overhead.rs:
