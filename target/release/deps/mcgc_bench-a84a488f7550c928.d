/root/repo/target/release/deps/mcgc_bench-a84a488f7550c928.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmcgc_bench-a84a488f7550c928.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmcgc_bench-a84a488f7550c928.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
