/root/repo/target/release/deps/pause_shape-0afc4b0db2d6ff26.d: crates/mcgc/../../tests/pause_shape.rs

/root/repo/target/release/deps/pause_shape-0afc4b0db2d6ff26: crates/mcgc/../../tests/pause_shape.rs

crates/mcgc/../../tests/pause_shape.rs:
