/root/repo/target/release/deps/mcgc_telemetry-9bc6536a0e37344b.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

/root/repo/target/release/deps/libmcgc_telemetry-9bc6536a0e37344b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

/root/repo/target/release/deps/libmcgc_telemetry-9bc6536a0e37344b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/ring.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/ring.rs:
