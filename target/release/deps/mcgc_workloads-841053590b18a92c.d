/root/repo/target/release/deps/mcgc_workloads-841053590b18a92c.d: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs

/root/repo/target/release/deps/libmcgc_workloads-841053590b18a92c.rlib: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs

/root/repo/target/release/deps/libmcgc_workloads-841053590b18a92c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/graphs.rs crates/workloads/src/javac.rs crates/workloads/src/jbb.rs crates/workloads/src/rng.rs

crates/workloads/src/lib.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/graphs.rs:
crates/workloads/src/javac.rs:
crates/workloads/src/jbb.rs:
crates/workloads/src/rng.rs:
