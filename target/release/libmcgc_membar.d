/root/repo/target/release/libmcgc_membar.rlib: /root/repo/crates/membar/src/lib.rs /root/repo/crates/membar/src/litmus.rs /root/repo/crates/membar/src/sync.rs /root/repo/crates/membar/src/weaksim.rs
