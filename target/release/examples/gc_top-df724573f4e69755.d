/root/repo/target/release/examples/gc_top-df724573f4e69755.d: crates/mcgc/../../examples/gc_top.rs

/root/repo/target/release/examples/gc_top-df724573f4e69755: crates/mcgc/../../examples/gc_top.rs

crates/mcgc/../../examples/gc_top.rs:
