//! The controlled scheduler: exhaustive DFS over every interleaving of a
//! [`Model`]'s atomic steps, with visited-state hashing.
//!
//! This generalizes `mcgc_membar::weaksim::explore` from straight-line
//! litmus programs to instrumented protocol state machines: a model's
//! state carries thread program counters, local registers, ghost
//! variables, and a weak-memory substrate ([`crate::mem::WeakMem`]); its
//! successor function enumerates every enabled micro-step (instruction
//! issue or store-buffer flush) of every thread.
//!
//! Safety properties are checked two ways: [`Model::invariant`] runs on
//! every reachable state (e.g. "no packet is acquired twice"), and
//! [`Model::finale`] runs on every final state (e.g. "every produced
//! entry was consumed"). A reachable non-final state with no successors
//! is reported as a deadlock.

use std::collections::HashSet;
use std::hash::Hash;

/// A protocol state machine explorable by [`Explorer`].
pub trait Model {
    /// Full system state: thread PCs + locals, shared memory, ghosts.
    type State: Clone + Eq + Hash + std::fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Every state reachable from `s` by one atomic micro-step of any
    /// thread (instruction issue or store-buffer flush). A spinning
    /// thread may return `s` itself; the visited set prunes it.
    fn successors(&self, s: &Self::State) -> Vec<Self::State>;

    /// True when every thread has finished and all buffers are drained.
    fn is_final(&self, s: &Self::State) -> bool;

    /// Safety check run on every reachable state.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Check run on every reachable final state.
    fn finale(&self, s: &Self::State) -> Result<(), String>;
}

/// Result of an exhaustive exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every reachable state satisfied the invariant, every final state
    /// satisfied the finale check, and at least one final state exists.
    Pass {
        /// Distinct states visited.
        states: usize,
        /// Distinct final states reached.
        finals: usize,
    },
    /// A safety violation (invariant, finale, or deadlock) was found.
    Violation {
        /// Distinct states visited before the violation.
        states: usize,
        /// Human-readable description of the violated property.
        message: String,
    },
    /// The state budget was exhausted before the search completed. This
    /// is **not** a pass: unexplored interleavings may still violate a
    /// property. Callers (the `modelcheck` CLI, the soundness CI job)
    /// must treat it as a failure of the run, distinct from both a
    /// verified pass and a found violation.
    Inconclusive {
        /// Distinct states visited when the budget was hit.
        states: usize,
        /// The state budget that was exhausted ([`Explorer::max_states`]).
        budget: usize,
    },
}

impl Outcome {
    /// True for [`Outcome::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass { .. })
    }

    /// True for [`Outcome::Violation`].
    pub fn violated(&self) -> bool {
        matches!(self, Outcome::Violation { .. })
    }

    /// True for [`Outcome::Inconclusive`].
    pub fn inconclusive(&self) -> bool {
        matches!(self, Outcome::Inconclusive { .. })
    }
}

/// Exhaustive DFS explorer with a state-count bound.
#[derive(Copy, Clone, Debug)]
pub struct Explorer {
    /// Maximum number of distinct states to visit before giving up.
    pub max_states: usize,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            max_states: 4_000_000,
        }
    }
}

impl Explorer {
    /// Creates an explorer bounded at `max_states` distinct states.
    pub fn new(max_states: usize) -> Explorer {
        Explorer { max_states }
    }

    /// Explores every reachable state of `model`.
    pub fn run<M: Model>(&self, model: &M) -> Outcome {
        let mut visited: HashSet<M::State> = HashSet::new();
        let mut stack = vec![model.initial()];
        let mut finals = 0usize;
        while let Some(state) = stack.pop() {
            if !visited.insert(state.clone()) {
                continue;
            }
            if visited.len() > self.max_states {
                return Outcome::Inconclusive {
                    states: visited.len(),
                    budget: self.max_states,
                };
            }
            if let Err(message) = model.invariant(&state) {
                return Outcome::Violation {
                    states: visited.len(),
                    message,
                };
            }
            if model.is_final(&state) {
                if let Err(message) = model.finale(&state) {
                    return Outcome::Violation {
                        states: visited.len(),
                        message,
                    };
                }
                finals += 1;
                continue;
            }
            let succ = model.successors(&state);
            if succ.is_empty() {
                return Outcome::Violation {
                    states: visited.len(),
                    message: format!("deadlock: non-final state has no successors: {state:?}"),
                };
            }
            stack.extend(succ);
        }
        if finals == 0 {
            return Outcome::Violation {
                states: visited.len(),
                message: "no execution reaches a final state (livelock)".to_string(),
            };
        }
        Outcome::Pass {
            states: visited.len(),
            finals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial two-counter model: two threads each increment a shared
    /// counter once; final value must be 2 (steps are atomic here).
    struct Counter {
        buggy: bool,
    }

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct CState {
        pcs: [u8; 2],
        value: u8,
        regs: [u8; 2],
    }

    impl Model for Counter {
        type State = CState;

        fn initial(&self) -> CState {
            CState {
                pcs: [0; 2],
                value: 0,
                regs: [0; 2],
            }
        }

        fn successors(&self, s: &CState) -> Vec<CState> {
            let mut out = Vec::new();
            for t in 0..2 {
                let mut n = s.clone();
                match s.pcs[t] {
                    0 if self.buggy => {
                        // read-modify-write split into two steps: racy
                        n.regs[t] = s.value;
                        n.pcs[t] = 1;
                        out.push(n);
                    }
                    0 => {
                        // atomic increment
                        n.value += 1;
                        n.pcs[t] = 2;
                        out.push(n);
                    }
                    1 => {
                        n.value = s.regs[t] + 1;
                        n.pcs[t] = 2;
                        out.push(n);
                    }
                    _ => {}
                }
            }
            out
        }

        fn is_final(&self, s: &CState) -> bool {
            s.pcs.iter().all(|&pc| pc == 2)
        }

        fn invariant(&self, _s: &CState) -> Result<(), String> {
            Ok(())
        }

        fn finale(&self, s: &CState) -> Result<(), String> {
            if s.value == 2 {
                Ok(())
            } else {
                Err(format!("lost update: final value {}", s.value))
            }
        }
    }

    #[test]
    fn atomic_counter_passes() {
        let out = Explorer::default().run(&Counter { buggy: false });
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn split_rmw_loses_an_update() {
        let out = Explorer::default().run(&Counter { buggy: true });
        match out {
            Outcome::Violation { message, .. } => assert!(message.contains("lost update")),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn bound_reports_inconclusive() {
        let out = Explorer::new(2).run(&Counter { buggy: false });
        match out {
            Outcome::Inconclusive { states, budget } => {
                assert_eq!(budget, 2);
                assert!(states > budget, "states {states} should exceed budget");
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
        assert!(!out.passed());
        assert!(!out.violated());
        assert!(out.inconclusive());
    }
}
