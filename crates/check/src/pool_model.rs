//! Model of the §4 work-packet pool: occupancy sub-pool lists with
//! tagged-CAS push/pop, after-the-op packet counters (§4.3 termination
//! detection), and the §5.1 one-fence-per-packet publication protocol.
//!
//! The state machines mirror `mcgc_packets::pool` step for step:
//!
//! * `pop_list`  = load head → load `next[head]` → CAS → `count -= 1`
//! * `push_list` = load head → store `next[idx]` → CAS → `count += 1`
//! * a producer's put of a dirty packet issues the §5.1 fence *before*
//!   the push CAS; a consumer's put of an emptied packet models the
//!   implementation's Release CAS (the CAS step requires the thread's
//!   store buffer to be drained).
//!
//! List heads, next links and counters are synchronization locations
//! (sequentially consistent, **not** barriers — see [`crate::mem`]);
//! packet bodies are plain buffered locations, so deleting the §5.1
//! fence lets a packet's entries lag its publication.
//!
//! Ghost state gives the checker teeth: `holder[p]` tracks which thread
//! exclusively owns packet `p` (a pop returning an already-held packet
//! is the ABA double-get), and `produced`/`consumed` count entries at
//! the instant they are written/read (termination observed while
//! `produced != consumed` is unsound §4.3 detection).

use crate::mem::WeakMem;
use crate::sched::Model;

const NIL: u32 = u32::MAX;
const EMPTY: usize = 0;
const WORK: usize = 1;

/// A single protocol change for mutation testing: each deletes one fence
/// or weakens one CAS, and the checker must find the resulting bug.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PoolMutation {
    /// The faithful protocol.
    None,
    /// Delete the §5.1 publication fence a producer issues before
    /// returning a dirty packet: its entries may lag the push CAS, so a
    /// consumer can pop the packet and read a stale (shorter) body.
    SkipPublishFence,
    /// CAS on the head index only, ignoring the tag (paper footnote 4
    /// removed): the classic ABA pop hands out a packet another thread
    /// still holds.
    NoAbaTag,
    /// Update the Empty-pool counter *before* the consume + push instead
    /// of after (§4.3 reversed): termination can be observed while
    /// entries are still unconsumed.
    CounterBeforeOp,
}

/// What a thread does in the scenario.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Role {
    /// Get a packet from Empty, write `items` entries, put it to Work
    /// (§5.1 fence + push), then optionally spin until §4.3 reports
    /// termination.
    Producer {
        /// Entries to write into the packet (one plain store each).
        items: u8,
        /// Spin on the Empty counter until it reports completion, then
        /// verify nothing was lost.
        await_done: bool,
    },
    /// Pop Work packets, consume their entries, return them to Empty,
    /// until §4.3 reports termination.
    Consumer,
    /// Pop two packets from Empty and keep them (the ABA victim whose
    /// first CAS races a concurrent pop-pop-push).
    AbaVictim,
    /// Pop two packets from Empty, push the first back (re-arming the
    /// head with a previously-seen index), keep the second.
    AbaMixer,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct TState {
    pc: u8,
    held: u32,
    held2: u32,
    rh: u32,
    rt: u32,
    rn: u32,
    rlen: u64,
    left: u8,
    done: bool,
}

impl TState {
    fn new(left: u8) -> TState {
        TState {
            pc: 0,
            held: NIL,
            held2: NIL,
            rh: NIL,
            rt: 0,
            rn: NIL,
            rlen: 0,
            left,
            done: false,
        }
    }
}

/// Full system state of the pool model.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PoolState {
    mem: WeakMem,
    /// `(index, tag)` head per sub-pool.
    heads: [(u32, u32); 2],
    /// Per-packet next link (synchronization location).
    next: Vec<u32>,
    /// §4.3 rough counters, updated after each list op.
    counts: [i16; 2],
    /// Ghost: exclusive owner of each packet.
    holder: Vec<Option<u8>>,
    /// Ghost: entries written into packet bodies so far.
    produced: u8,
    /// Ghost: entries read out of packet bodies so far.
    consumed: u8,
    /// Ghost: first safety violation observed while stepping.
    poison: Option<&'static str>,
    threads: Vec<TState>,
}

/// The §4 pool protocol model for a fixed scenario.
#[derive(Clone, Debug)]
pub struct PoolModel {
    /// Number of packets, all initially in the Empty sub-pool.
    pub npkt: usize,
    /// One role per thread.
    pub roles: Vec<Role>,
    /// The protocol change under test.
    pub mutation: PoolMutation,
}

impl PoolModel {
    /// One producer (two entries, then awaits termination) and one
    /// consumer over two packets: exercises get/put, §5.1 publication,
    /// and §4.3 termination detection.
    pub fn produce_consume(mutation: PoolMutation) -> PoolModel {
        PoolModel {
            npkt: 2,
            roles: vec![
                Role::Producer {
                    items: 2,
                    await_done: true,
                },
                Role::Consumer,
            ],
            mutation,
        }
    }

    /// The footnote-4 ABA scenario over three packets: a victim's
    /// load-head/load-next/CAS races a pop-pop-push.
    pub fn aba(mutation: PoolMutation) -> PoolModel {
        PoolModel {
            npkt: 3,
            roles: vec![Role::AbaVictim, Role::AbaMixer],
            mutation,
        }
    }

    fn cas_matches(&self, cur: (u32, u32), rh: u32, rt: u32) -> bool {
        if self.mutation == PoolMutation::NoAbaTag {
            cur.0 == rh
        } else {
            cur.0 == rh && cur.1 == rt
        }
    }

    /// Pop steps shared by all roles. `list` is the sub-pool; returns
    /// successor states for the micro-step at `t.pc - base`.
    /// Sub-PCs: 0 = load head, 1 = load next, 2 = CAS, 3 = count -= 1.
    fn step_pop(
        &self,
        s: &PoolState,
        tid: usize,
        base: u8,
        list: usize,
        on_nil: Option<u8>,
    ) -> Vec<PoolState> {
        let t = &s.threads[tid];
        let sub = t.pc - base;
        let mut n = s.clone();
        match sub {
            0 => {
                let (hi, ht) = s.heads[list];
                if hi == NIL {
                    // With no `on_nil` target the thread spins: the
                    // successor equals the current state.
                    if let Some(pc) = on_nil {
                        n.threads[tid].pc = pc;
                    }
                } else {
                    n.threads[tid].rh = hi;
                    n.threads[tid].rt = ht;
                    n.threads[tid].pc = base + 1;
                }
                vec![n]
            }
            1 => {
                n.threads[tid].rn = s.next[t.rh as usize];
                n.threads[tid].pc = base + 2;
                vec![n]
            }
            2 => {
                if self.cas_matches(s.heads[list], t.rh, t.rt) {
                    n.heads[list] = (t.rn, s.heads[list].1.wrapping_add(1));
                    if s.holder[t.rh as usize].is_some() {
                        n.poison = Some("double-get: popped a packet another thread holds");
                    }
                    n.holder[t.rh as usize] = Some(tid as u8);
                    if n.threads[tid].held == NIL {
                        n.threads[tid].held = t.rh;
                    } else {
                        n.threads[tid].held2 = t.rh;
                    }
                    n.threads[tid].pc = base + 3;
                } else {
                    n.threads[tid].pc = base; // retry
                }
                vec![n]
            }
            3 => {
                n.counts[list] -= 1;
                n.threads[tid].pc = base + 4;
                vec![n]
            }
            _ => unreachable!("pop sub-pc"),
        }
    }

    /// Push steps. Sub-PCs: 0 = load head, 1 = store next, 2 = CAS,
    /// 3 = count += 1. `idx` is the packet being pushed; `release`
    /// models a Release CAS (step 2 requires a drained buffer).
    #[allow(clippy::too_many_arguments)] // one flat step fn per protocol op
    fn step_push(
        &self,
        s: &PoolState,
        tid: usize,
        base: u8,
        list: usize,
        idx: u32,
        release: bool,
        skip_count: bool,
    ) -> Vec<PoolState> {
        let t = &s.threads[tid];
        let sub = t.pc - base;
        let mut n = s.clone();
        match sub {
            0 => {
                let (hi, ht) = s.heads[list];
                n.threads[tid].rh = hi;
                n.threads[tid].rt = ht;
                n.threads[tid].pc = base + 1;
                vec![n]
            }
            1 => {
                n.next[idx as usize] = t.rh;
                n.threads[tid].pc = base + 2;
                vec![n]
            }
            2 => {
                if release && !s.mem.fence(tid) {
                    return vec![]; // blocked until own buffer drains
                }
                if self.cas_matches(s.heads[list], t.rh, t.rt) {
                    n.heads[list] = (idx, s.heads[list].1.wrapping_add(1));
                    n.holder[idx as usize] = None;
                    if n.threads[tid].held == idx {
                        n.threads[tid].held = NIL;
                    } else {
                        n.threads[tid].held2 = NIL;
                    }
                    n.threads[tid].pc = base + if skip_count { 4 } else { 3 };
                } else {
                    n.threads[tid].pc = base; // retry
                }
                vec![n]
            }
            3 => {
                n.counts[list] += 1;
                n.threads[tid].pc = base + 4;
                vec![n]
            }
            _ => unreachable!("push sub-pc"),
        }
    }

    /// §4.3 termination observation: reads the Empty counter; when it
    /// covers every packet, the thread finishes — and the ghost counts
    /// must agree that nothing is left.
    fn observe_termination(&self, s: &PoolState, tid: usize, retry_pc: Option<u8>) -> PoolState {
        let mut n = s.clone();
        if s.counts[EMPTY] >= self.npkt as i16 {
            if s.produced != s.consumed {
                n.poison =
                    Some("unsound termination: Empty counter full while entries are unconsumed");
            }
            n.threads[tid].done = true;
        } else if let Some(pc) = retry_pc {
            n.threads[tid].pc = pc;
        } // else spin (successor == current state)
        n
    }

    fn step_thread(&self, s: &PoolState, tid: usize) -> Vec<PoolState> {
        let t = &s.threads[tid];
        match self.roles[tid] {
            // PCs: 0-3 pop(Empty), 4 write entries, 5 fence, 6-9
            // push(Work), 10 await termination.
            Role::Producer { await_done, .. } => match t.pc {
                0..=3 => self.step_pop(s, tid, 0, EMPTY, None),
                4 => {
                    let mut n = s.clone();
                    if t.left > 0 {
                        let cur = s.mem.plain_load(tid, t.held as usize);
                        n.mem.plain_store(tid, t.held as usize, cur + 1);
                        n.produced += 1;
                        n.threads[tid].left -= 1;
                    } else {
                        n.threads[tid].pc = 5;
                    }
                    vec![n]
                }
                5 => {
                    // §5.1: one fence per dirty packet, before the push.
                    if self.mutation == PoolMutation::SkipPublishFence {
                        let mut n = s.clone();
                        n.threads[tid].pc = 6;
                        return vec![n];
                    }
                    if !s.mem.fence(tid) {
                        return vec![]; // wait for own flushes
                    }
                    let mut n = s.clone();
                    n.threads[tid].pc = 6;
                    vec![n]
                }
                6..=9 => self.step_push(s, tid, 6, WORK, t.held, false, false),
                10 => {
                    if await_done {
                        vec![self.observe_termination(s, tid, None)]
                    } else {
                        let mut n = s.clone();
                        n.threads[tid].done = true;
                        vec![n]
                    }
                }
                _ => unreachable!("producer pc"),
            },
            // PCs: 0 termination check, 1-4 pop(Work), 5 read body,
            // 6 consume + zero body, 7-10 push(Empty) with Release CAS.
            Role::Consumer => match t.pc {
                0 => vec![self.observe_termination(s, tid, Some(1))],
                1..=4 => self.step_pop(s, tid, 1, WORK, Some(0)),
                5 => {
                    let mut n = s.clone();
                    n.threads[tid].rlen = s.mem.plain_load(tid, t.held as usize);
                    if self.mutation == PoolMutation::CounterBeforeOp {
                        // §4.3 reversed: counter bumped before the packet
                        // is consumed and pushed.
                        n.counts[EMPTY] += 1;
                    }
                    n.threads[tid].pc = 6;
                    vec![n]
                }
                6 => {
                    let mut n = s.clone();
                    n.consumed += t.rlen as u8;
                    n.mem.plain_store(tid, t.held as usize, 0);
                    n.threads[tid].pc = 7;
                    vec![n]
                }
                7..=10 => self.step_push(
                    s,
                    tid,
                    7,
                    EMPTY,
                    t.held,
                    true,
                    self.mutation == PoolMutation::CounterBeforeOp,
                ),
                11 => {
                    let mut n = s.clone();
                    n.threads[tid].pc = 0;
                    vec![n]
                }
                _ => unreachable!("consumer pc"),
            },
            // PCs: 0-3 pop(Empty) once per `left`, then done.
            Role::AbaVictim => match t.pc {
                0..=3 => self.step_pop(s, tid, 0, EMPTY, None),
                4 => {
                    let mut n = s.clone();
                    n.threads[tid].left -= 1;
                    if n.threads[tid].left > 0 {
                        n.threads[tid].pc = 0;
                    } else {
                        n.threads[tid].done = true;
                    }
                    vec![n]
                }
                _ => unreachable!("victim pc"),
            },
            // PCs: 0-3 pop ×2 (via 4), 5-8 push the first-held packet,
            // 9 done.
            Role::AbaMixer => match t.pc {
                0..=3 => self.step_pop(s, tid, 0, EMPTY, None),
                4 => {
                    let mut n = s.clone();
                    n.threads[tid].left -= 1;
                    n.threads[tid].pc = if n.threads[tid].left > 0 { 0 } else { 5 };
                    vec![n]
                }
                5..=8 => self.step_push(s, tid, 5, EMPTY, t.held, false, false),
                9 => {
                    let mut n = s.clone();
                    n.threads[tid].done = true;
                    vec![n]
                }
                _ => unreachable!("mixer pc"),
            },
        }
    }

    /// Walks list `k`, returning packet indices; `None` if the chain is
    /// longer than the packet count (a cycle — corrupted list).
    fn walk(&self, s: &PoolState, k: usize) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        let mut idx = s.heads[k].0;
        while idx != NIL {
            if out.len() > self.npkt {
                return None;
            }
            out.push(idx);
            idx = s.next[idx as usize];
        }
        Some(out)
    }
}

impl Model for PoolModel {
    type State = PoolState;

    fn initial(&self) -> PoolState {
        // Build the Empty list as PacketPool::new does: push 0..npkt.
        let mut next = vec![NIL; self.npkt];
        let mut head = NIL;
        for (i, link) in next.iter_mut().enumerate() {
            *link = head;
            head = i as u32;
        }
        let pops = |r: &Role| match r {
            Role::Producer { items, .. } => *items,
            Role::AbaVictim | Role::AbaMixer => 2,
            Role::Consumer => 0,
        };
        PoolState {
            mem: WeakMem::new(self.npkt, self.roles.len()),
            heads: [(head, self.npkt as u32), (NIL, 0)],
            next,
            counts: [self.npkt as i16, 0],
            holder: vec![None; self.npkt],
            produced: 0,
            consumed: 0,
            poison: None,
            threads: self.roles.iter().map(|r| TState::new(pops(r))).collect(),
        }
    }

    fn successors(&self, s: &PoolState) -> Vec<PoolState> {
        let mut out = Vec::new();
        for tid in 0..self.roles.len() {
            for mem in s.mem.flush_succs(tid) {
                let mut n = s.clone();
                n.mem = mem;
                out.push(n);
            }
            if !s.threads[tid].done {
                out.extend(self.step_thread(s, tid));
            }
        }
        out
    }

    fn is_final(&self, s: &PoolState) -> bool {
        s.threads.iter().all(|t| t.done) && s.mem.all_drained()
    }

    fn invariant(&self, s: &PoolState) -> Result<(), String> {
        match s.poison {
            Some(msg) => Err(msg.to_string()),
            None => Ok(()),
        }
    }

    fn finale(&self, s: &PoolState) -> Result<(), String> {
        // No lost entries: everything produced was consumed, unless a
        // thread deliberately kept a packet (ABA scenarios produce none).
        if s.produced != s.consumed {
            return Err(format!(
                "lost entries: produced {} but consumed {}",
                s.produced, s.consumed
            ));
        }
        // No lost packet: held packets plus list contents partition the
        // slab.
        let mut seen = vec![0u8; self.npkt];
        for k in [EMPTY, WORK] {
            let Some(list) = self.walk(s, k) else {
                return Err("corrupted list: next-link cycle".to_string());
            };
            for idx in list {
                seen[idx as usize] += 1;
            }
        }
        for (p, h) in s.holder.iter().enumerate() {
            if h.is_some() {
                seen[p] += 1;
            }
        }
        for (p, &n) in seen.iter().enumerate() {
            if n != 1 {
                return Err(format!(
                    "packet {p} appears {n} times across lists and holders (lost or duplicated)"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Outcome};

    fn run(m: &PoolModel) -> Outcome {
        Explorer::default().run(m)
    }

    #[test]
    fn faithful_produce_consume_passes_exhaustively() {
        let out = run(&PoolModel::produce_consume(PoolMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_aba_scenario_passes_exhaustively() {
        let out = run(&PoolModel::aba(PoolMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn deleting_publish_fence_loses_entries() {
        let out = run(&PoolModel::produce_consume(PoolMutation::SkipPublishFence));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("lost entries") || message.contains("unsound"))
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn dropping_aba_tag_double_gets_a_packet() {
        let out = run(&PoolModel::aba(PoolMutation::NoAbaTag));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(
                    message.contains("double-get")
                        || message.contains("lost or duplicated")
                        || message.contains("cycle"),
                    "{message}"
                )
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn early_counter_update_breaks_termination_detection() {
        let out = run(&PoolModel::produce_consume(PoolMutation::CounterBeforeOp));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("unsound termination"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
