//! Model-checker smoke runner for CI: explores the faithful protocols
//! (must pass exhaustively) and every mutation (must be caught), within
//! a bounded state count. Exits nonzero on any unexpected outcome.
//!
//! Usage: `modelcheck [--max-states N]`

use mcgc_check::{BarrierModel, BarrierMutation, Explorer, Outcome, PoolModel, PoolMutation};

struct Case {
    name: &'static str,
    expect_violation: bool,
    run: Box<dyn Fn(&Explorer) -> Outcome>,
}

fn pool_case(name: &'static str, model: PoolModel, expect_violation: bool) -> Case {
    Case {
        name,
        expect_violation,
        run: Box::new(move |e| e.run(&model)),
    }
}

fn barrier_case(name: &'static str, mutation: BarrierMutation, expect_violation: bool) -> Case {
    Case {
        name,
        expect_violation,
        run: Box::new(move |e| e.run(&BarrierModel { mutation })),
    }
}

fn main() {
    let mut max_states = Explorer::default().max_states;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-states" => {
                let v = args.next().expect("--max-states needs a value");
                max_states = v.parse().expect("--max-states value must be a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let explorer = Explorer::new(max_states);

    let cases = vec![
        pool_case(
            "pool/produce-consume (faithful)",
            PoolModel::produce_consume(PoolMutation::None),
            false,
        ),
        pool_case(
            "pool/aba (faithful)",
            PoolModel::aba(PoolMutation::None),
            false,
        ),
        pool_case(
            "pool/produce-consume -fence (§5.1 deleted)",
            PoolModel::produce_consume(PoolMutation::SkipPublishFence),
            true,
        ),
        pool_case(
            "pool/aba -tag (footnote 4 deleted)",
            PoolModel::aba(PoolMutation::NoAbaTag),
            true,
        ),
        pool_case(
            "pool/produce-consume counter-before-op (§4.3 reversed)",
            PoolModel::produce_consume(PoolMutation::CounterBeforeOp),
            true,
        ),
        barrier_case("barrier/marking (faithful)", BarrierMutation::None, false),
        barrier_case(
            "barrier/marking -card-mark (write barrier deleted)",
            BarrierMutation::SkipCardMark,
            true,
        ),
        barrier_case(
            "barrier/marking -handshake (§5.3 step 2 deleted)",
            BarrierMutation::SkipHandshake,
            true,
        ),
    ];

    let mut failures = 0;
    for case in &cases {
        let start = std::time::Instant::now();
        let outcome = (case.run)(&explorer);
        let elapsed = start.elapsed();
        let (ok, detail) = match &outcome {
            Outcome::Pass { states, finals } => (
                !case.expect_violation,
                format!("pass ({states} states, {finals} final)"),
            ),
            Outcome::Violation { states, message } => (
                case.expect_violation,
                format!("violation after {states} states: {message}"),
            ),
            Outcome::Bounded { states } => {
                (false, format!("INCONCLUSIVE: hit bound at {states} states"))
            }
        };
        let verdict = if ok { "ok " } else { "FAIL" };
        println!("{verdict} {:<55} {detail} [{elapsed:.2?}]", case.name);
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} case(s) had unexpected outcomes");
        std::process::exit(1);
    }
    println!("all {} cases behaved as expected", cases.len());
}
