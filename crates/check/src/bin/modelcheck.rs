//! Model-checker smoke runner for CI: explores the faithful protocols
//! (must pass exhaustively) and every mutation (must be caught), within
//! a bounded state count. Exits nonzero on any unexpected outcome — an
//! `Inconclusive` (budget exhausted) is always unexpected, so a bounded
//! run can never masquerade as a pass.
//!
//! Usage: `modelcheck [--max-states N] [--report PATH]`
//!
//! The state budget may also be set with the `MCGC_MODELCHECK_BUDGET`
//! environment variable (the CLI flag wins); CI uses it to keep the
//! full 5-model × mutation matrix inside a fixed time budget, and
//! uploads the `--report` file as an artifact.

use mcgc_check::{
    BarrierModel, BarrierMutation, Explorer, Outcome, PoolModel, PoolMutation, SchedModel,
    SchedMutation, SeqlockModel, SeqlockMutation, ShardModel, ShardMutation,
};
use std::io::Write as _;

struct Case {
    name: &'static str,
    expect_violation: bool,
    run: Box<dyn Fn(&Explorer) -> Outcome>,
}

fn pool_case(name: &'static str, model: PoolModel, expect_violation: bool) -> Case {
    Case {
        name,
        expect_violation,
        run: Box::new(move |e| e.run(&model)),
    }
}

fn barrier_case(name: &'static str, mutation: BarrierMutation, expect_violation: bool) -> Case {
    Case {
        name,
        expect_violation,
        run: Box::new(move |e| e.run(&BarrierModel { mutation })),
    }
}

fn sched_case(name: &'static str, model: SchedModel, expect_violation: bool) -> Case {
    Case {
        name,
        expect_violation,
        run: Box::new(move |e| e.run(&model)),
    }
}

fn seqlock_case(name: &'static str, mutation: SeqlockMutation, expect_violation: bool) -> Case {
    Case {
        name,
        expect_violation,
        run: Box::new(move |e| e.run(&SeqlockModel { mutation })),
    }
}

fn shard_case(name: &'static str, model: ShardModel, expect_violation: bool) -> Case {
    Case {
        name,
        expect_violation,
        run: Box::new(move |e| e.run(&model)),
    }
}

fn cases() -> Vec<Case> {
    vec![
        // §4 packet pool (PR 2).
        pool_case(
            "pool/produce-consume (faithful)",
            PoolModel::produce_consume(PoolMutation::None),
            false,
        ),
        pool_case(
            "pool/aba (faithful)",
            PoolModel::aba(PoolMutation::None),
            false,
        ),
        pool_case(
            "pool/produce-consume -fence (§5.1 deleted)",
            PoolModel::produce_consume(PoolMutation::SkipPublishFence),
            true,
        ),
        pool_case(
            "pool/aba -tag (footnote 4 deleted)",
            PoolModel::aba(PoolMutation::NoAbaTag),
            true,
        ),
        pool_case(
            "pool/produce-consume counter-before-op (§4.3 reversed)",
            PoolModel::produce_consume(PoolMutation::CounterBeforeOp),
            true,
        ),
        // §2/§5.3 write barrier + card snapshot (PR 2).
        barrier_case("barrier/marking (faithful)", BarrierMutation::None, false),
        barrier_case(
            "barrier/marking -card-mark (write barrier deleted)",
            BarrierMutation::SkipCardMark,
            true,
        ),
        barrier_case(
            "barrier/marking -handshake (§5.3 step 2 deleted)",
            BarrierMutation::SkipHandshake,
            true,
        ),
        // Unified GC scheduler (retired gang's session/bucket successor).
        sched_case(
            "sched/session (faithful)",
            SchedModel::session(SchedMutation::None),
            false,
        ),
        sched_case(
            "sched/session spurious-wakeups (faithful)",
            SchedModel::session_spurious(SchedMutation::None),
            false,
        ),
        sched_case(
            "sched/participation rendezvous (faithful)",
            SchedModel::participation(SchedMutation::None),
            false,
        ),
        sched_case(
            "sched/shutdown-race (faithful)",
            SchedModel::shutdown_race(SchedMutation::None),
            false,
        ),
        sched_case(
            "sched/worker-panic (faithful: aborts, no strand)",
            SchedModel::worker_panic(SchedMutation::None),
            false,
        ),
        sched_case(
            "sched/leader-panic (faithful: guard drains bucket)",
            SchedModel::leader_panic(SchedMutation::None),
            false,
        ),
        sched_case(
            "sched/condemned (faithful: watchdog re-queues, §4.3 fires)",
            SchedModel::condemned(SchedMutation::None),
            false,
        ),
        sched_case(
            "sched/missed-open-notify (session wakeup deleted)",
            SchedModel::catching(SchedMutation::MissedOpenNotify),
            true,
        ),
        sched_case(
            "sched/park-misses-open (predicate checked outside lock)",
            SchedModel::catching(SchedMutation::ParkMissesOpen),
            true,
        ),
        sched_case(
            "sched/missed-shutdown-notify (join wakeup deleted)",
            SchedModel::catching(SchedMutation::MissedShutdownNotify),
            true,
        ),
        sched_case(
            "sched/split-claim (last_seq dedup deleted)",
            SchedModel::catching(SchedMutation::SplitClaim),
            true,
        ),
        sched_case(
            "sched/open-before-drained (executing-wait deleted)",
            SchedModel::catching(SchedMutation::OpenBeforeDrained),
            true,
        ),
        sched_case(
            "sched/wait-before-clear (drain guard steps swapped)",
            SchedModel::catching(SchedMutation::WaitBeforeClear),
            true,
        ),
        sched_case(
            "sched/unwind-past-drain (DrainGuard deleted)",
            SchedModel::catching(SchedMutation::UnwindPastDrain),
            true,
        ),
        sched_case(
            "sched/panic-no-abort (worker abort contract deleted)",
            SchedModel::catching(SchedMutation::PanicNoAbort),
            true,
        ),
        sched_case(
            "sched/skip-condemn (§4.3 watchdog deleted)",
            SchedModel::catching(SchedMutation::SkipCondemn),
            true,
        ),
        // Flight-recorder seqlock slot (PR 6).
        seqlock_case("seqlock/slot (faithful)", SeqlockMutation::None, false),
        seqlock_case(
            "seqlock/-begin-fence (the protocol PR 6 shipped)",
            SeqlockMutation::SkipBeginFence,
            true,
        ),
        seqlock_case(
            "seqlock/-complete-release (even store unordered)",
            SeqlockMutation::SkipCompletePublish,
            true,
        ),
        seqlock_case(
            "seqlock/-revalidation (reader second check deleted)",
            SeqlockMutation::SkipSecondCheck,
            true,
        ),
        seqlock_case(
            "seqlock/ticket-reuse (cursor never advances)",
            SeqlockMutation::TicketReuse,
            true,
        ),
        // Sharded free-list refill (PR 4).
        shard_case(
            "shard/refill (faithful)",
            ShardModel::main(ShardMutation::None),
            false,
        ),
        shard_case(
            "shard/contend (faithful)",
            ShardModel::contend(ShardMutation::None),
            false,
        ),
        shard_case(
            "shard/count-after-push (free order reversed)",
            ShardModel::catching(ShardMutation::FreeCountsAfterPush),
            true,
        ),
        shard_case(
            "shard/mask-clear-outside-lock",
            ShardModel::catching(ShardMutation::MaskClearOutsideLock),
            true,
        ),
        shard_case(
            "shard/no-mask-set-on-free",
            ShardModel::catching(ShardMutation::SkipMaskSetOnFree),
            true,
        ),
        shard_case(
            "shard/no-fallback-sweep (spurious OOM)",
            ShardModel::catching(ShardMutation::SkipFallbackSweep),
            true,
        ),
        shard_case(
            "shard/racy-take (lock deleted)",
            ShardModel::catching(ShardMutation::RacyTake),
            true,
        ),
    ]
}

fn main() {
    let mut max_states = Explorer::default().max_states;
    if let Ok(v) = std::env::var("MCGC_MODELCHECK_BUDGET") {
        max_states = v
            .parse()
            .expect("MCGC_MODELCHECK_BUDGET must be a state count");
    }
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-states" => {
                let v = args.next().expect("--max-states needs a value");
                max_states = v.parse().expect("--max-states value must be a number");
            }
            "--report" => {
                report_path = Some(args.next().expect("--report needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let explorer = Explorer::new(max_states);

    let cases = cases();
    let mut report = String::new();
    report.push_str(&format!(
        "modelcheck report: {} cases, budget {max_states} states/case\n\n",
        cases.len()
    ));
    let mut failures = 0;
    for case in &cases {
        let start = std::time::Instant::now();
        let outcome = (case.run)(&explorer);
        let elapsed = start.elapsed();
        let (ok, detail) = match &outcome {
            Outcome::Pass { states, finals } => (
                !case.expect_violation,
                format!("pass ({states} states, {finals} final)"),
            ),
            Outcome::Violation { states, message } => (
                case.expect_violation,
                format!("violation after {states} states: {message}"),
            ),
            Outcome::Inconclusive { states, budget } => (
                false,
                format!("INCONCLUSIVE: state budget {budget} exhausted at {states} states"),
            ),
        };
        let verdict = if ok { "ok " } else { "FAIL" };
        let line = format!("{verdict} {:<58} {detail} [{elapsed:.2?}]", case.name);
        println!("{line}");
        report.push_str(&line);
        report.push('\n');
        if !ok {
            failures += 1;
        }
    }
    let summary = if failures > 0 {
        format!("{failures} case(s) had unexpected outcomes")
    } else {
        format!("all {} cases behaved as expected", cases.len())
    };
    report.push_str(&format!("\n{summary}\n"));
    if let Some(path) = report_path {
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create report {path}: {e}"));
        f.write_all(report.as_bytes()).expect("write report");
        println!("report written to {path}");
    }
    if failures > 0 {
        eprintln!("{summary}");
        std::process::exit(1);
    }
    println!("{summary}");
}
