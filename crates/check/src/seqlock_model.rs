//! Model of the flight-recorder seqlock slot protocol
//! (`crates/telemetry/src/spans.rs` `SpanRing::record`/`read_slot`, and
//! the identical per-slot protocol in `EventRing::write_slot`).
//!
//! One ring slot, one writer (a `SpanRing` is single-writer by design —
//! one track per thread), one concurrent snapshot reader. The writer
//! runs two laps over the same slot (tickets 0 and 1 of a capacity-1
//! ring), so the reader's validation must distinguish a complete lap-0
//! payload from a lap-1 overwrite in flight:
//!
//! * writer, per lap `t`: claim ticket from the cursor (atomic
//!   `fetch_add`), store `seq = 2t+1` (odd: slot open), **release
//!   fence**, store the payload fields (plain), **release fence**,
//!   store `seq = 2t+2` (even: slot complete);
//! * reader, for ticket `t`: load `seq`, bail unless it equals `2t+2`,
//!   speculatively copy the payload, re-load `seq`, and accept the copy
//!   only if it still equals `2t+2`.
//!
//! The `seq` word and the payload fields are all **plain buffered
//! locations** in [`WeakMem`]: the store buffer may flush them in any
//! cross-location order, which is exactly the freedom a weakly-ordered
//! machine (or the C++ compiler) has with `Relaxed` stores. The two
//! fences are what the protocol is about:
//!
//! * without the fence after the odd store ([`SeqlockMutation::SkipBeginFence`]
//!   — **the shipped PR 6 code before this PR fixed it**), a lap-1
//!   payload store can become visible while the lap-1 odd `seq` store
//!   is still buffered, so a reader double-validates a stale lap-0
//!   `seq` around a torn payload;
//! * without ordering the even store after the payload
//!   ([`SeqlockMutation::SkipCompletePublish`]), `seq` can report the
//!   slot complete while the payload is still in the writer's buffer.
//!
//! The reader side of the store-buffer model is strict (loads are never
//! delayed), so the model proves the *writer-side* fences load-bearing.
//! The fix in `spans.rs`/`ring.rs` also adds the reader-side acquire
//! fence before revalidation, which the C++ abstract machine requires
//! for the same guarantee (Boehm's seqlock recipe: the revalidating
//! load only synchronizes with the store it reads, so payload loads
//! need an acquire fence to pull the overwriter's odd store into view);
//! an in-order-load model cannot distinguish it and we document rather
//! than model it.
//!
//! Ghost state: the reader's accepted `(payload, payload2)` copy must
//! be bit-exactly lap-0's tuple (anything else is a **torn span**); a
//! high-water mark over the shared `seq` cell checks **monotonicity**
//! at every flush; and the writer having an enabled step whenever it is
//! not done checks that **writers never block** on reader state.

use crate::mem::WeakMem;
use crate::sched::Model;

const SEQ: usize = 0;
const PAY0: usize = 1;
const PAY1: usize = 2;
const NLOCS: usize = 3;

const WRITER: usize = 0;
const READER: usize = 1;

/// Laps the writer runs over the single slot.
const LAPS: u8 = 2;
/// The ticket the reader snapshots (lap 0), and its complete seq value.
const WANT_TICKET: u64 = 0;
const WANT_SEQ: u64 = 2 * WANT_TICKET + 2;

/// Payload field values for lap `t` (distinct per lap and per field).
fn payload_of(t: u64) -> (u64, u64) {
    (10 * t + 1, 10 * t + 2)
}

/// A single protocol change for mutation testing: each deletes one
/// fence, one validation, or the ticket increment, and the checker must
/// find the resulting bug.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SeqlockMutation {
    /// The faithful protocol.
    None,
    /// Delete the release fence between the odd `seq` store and the
    /// payload stores. This is the protocol PR 6 actually shipped: on a
    /// weakly-ordered machine an overwriter's payload can become
    /// visible before its odd `seq`, so a reader double-validates a
    /// stale even `seq` around a torn payload.
    SkipBeginFence,
    /// Delete the release ordering on the completing even store: `seq`
    /// can claim the slot is complete while the payload is still in the
    /// writer's store buffer.
    SkipCompletePublish,
    /// The reader accepts its speculative copy without re-validating
    /// `seq`: it can race the overwriting lap and keep a torn copy.
    SkipSecondCheck,
    /// The writer reuses ticket 0 for every lap instead of advancing the
    /// cursor: the `seq` word runs backwards (1, 2, 1, 2), breaking
    /// monotonicity — and with it every reader's staleness reasoning.
    TicketReuse,
}

impl SeqlockMutation {
    /// Every mutation (excluding `None`), for the meta-test proving none
    /// of them is vacuous.
    pub const ALL: [SeqlockMutation; 4] = [
        SeqlockMutation::SkipBeginFence,
        SeqlockMutation::SkipCompletePublish,
        SeqlockMutation::SkipSecondCheck,
        SeqlockMutation::TicketReuse,
    ];
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct SThread {
    pc: u8,
    done: bool,
}

/// Full system state of the seqlock model.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SeqlockState {
    mem: WeakMem,
    /// The ring cursor (atomic `fetch_add`, one step — never buffered).
    cursor: u64,
    /// Writer: lap in progress.
    lap: u8,
    /// Writer: ticket claimed for the current lap.
    ticket: u64,
    /// Reader: speculative payload copy.
    copy: (u64, u64),
    /// Ghost: did the reader accept its copy?
    accepted: bool,
    /// Ghost: high-water mark of the shared `seq` cell across flushes.
    seq_high: u64,
    /// Ghost: first safety violation observed while stepping.
    poison: Option<&'static str>,
    threads: [SThread; 2],
}

/// The seqlock slot protocol model.
#[derive(Clone, Debug)]
pub struct SeqlockModel {
    /// The protocol change under test.
    pub mutation: SeqlockMutation,
}

// Writer program counters (per lap).
const W_TICKET: u8 = 0;
const W_OPEN: u8 = 1; // store seq = 2t+1
const W_FENCE_OPEN: u8 = 2; // release fence
const W_PAY0: u8 = 3;
const W_PAY1: u8 = 4;
const W_FENCE_DONE: u8 = 5; // release ordering of the even store
const W_CLOSE: u8 = 6; // store seq = 2t+2

// Reader program counters.
const R_CHECK1: u8 = 0;
const R_COPY0: u8 = 1;
const R_COPY1: u8 = 2;
const R_CHECK2: u8 = 3;

impl SeqlockModel {
    fn step_writer(&self, s: &SeqlockState) -> Vec<SeqlockState> {
        let t = &s.threads[WRITER];
        let mut n = s.clone();
        match t.pc {
            W_TICKET => {
                n.ticket = s.cursor;
                if self.mutation != SeqlockMutation::TicketReuse {
                    n.cursor += 1;
                }
                n.threads[WRITER].pc = W_OPEN;
                vec![n]
            }
            W_OPEN => {
                n.mem.plain_store(WRITER, SEQ, 2 * s.ticket + 1);
                n.threads[WRITER].pc = W_FENCE_OPEN;
                vec![n]
            }
            W_FENCE_OPEN => {
                if self.mutation == SeqlockMutation::SkipBeginFence {
                    n.threads[WRITER].pc = W_PAY0;
                    return vec![n];
                }
                if !s.mem.fence(WRITER) {
                    return vec![]; // wait for own flushes (flush steps stay enabled)
                }
                n.threads[WRITER].pc = W_PAY0;
                vec![n]
            }
            W_PAY0 => {
                n.mem.plain_store(WRITER, PAY0, payload_of(s.ticket).0);
                n.threads[WRITER].pc = W_PAY1;
                vec![n]
            }
            W_PAY1 => {
                n.mem.plain_store(WRITER, PAY1, payload_of(s.ticket).1);
                n.threads[WRITER].pc = W_FENCE_DONE;
                vec![n]
            }
            W_FENCE_DONE => {
                if self.mutation == SeqlockMutation::SkipCompletePublish {
                    n.threads[WRITER].pc = W_CLOSE;
                    return vec![n];
                }
                if !s.mem.fence(WRITER) {
                    return vec![];
                }
                n.threads[WRITER].pc = W_CLOSE;
                vec![n]
            }
            W_CLOSE => {
                n.mem.plain_store(WRITER, SEQ, 2 * s.ticket + 2);
                n.lap += 1;
                if n.lap >= LAPS {
                    n.threads[WRITER].done = true;
                } else {
                    n.threads[WRITER].pc = W_TICKET;
                }
                vec![n]
            }
            _ => unreachable!("writer pc"),
        }
    }

    fn step_reader(&self, s: &SeqlockState) -> Vec<SeqlockState> {
        let t = &s.threads[READER];
        let mut n = s.clone();
        match t.pc {
            R_CHECK1 => {
                if s.mem.plain_load(READER, SEQ) == WANT_SEQ {
                    n.threads[READER].pc = R_COPY0;
                } else {
                    n.threads[READER].done = true; // slot not (or no longer) ours: bail
                }
                vec![n]
            }
            R_COPY0 => {
                n.copy.0 = s.mem.plain_load(READER, PAY0);
                n.threads[READER].pc = R_COPY1;
                vec![n]
            }
            R_COPY1 => {
                n.copy.1 = s.mem.plain_load(READER, PAY1);
                n.threads[READER].pc = R_CHECK2;
                vec![n]
            }
            R_CHECK2 => {
                let valid = self.mutation == SeqlockMutation::SkipSecondCheck
                    || s.mem.plain_load(READER, SEQ) == WANT_SEQ;
                if valid {
                    n.accepted = true;
                    if n.copy != payload_of(WANT_TICKET) {
                        n.poison = Some("torn span: reader accepted a mixed-lap payload");
                    }
                }
                n.threads[READER].done = true;
                vec![n]
            }
            _ => unreachable!("reader pc"),
        }
    }
}

impl Model for SeqlockModel {
    type State = SeqlockState;

    fn initial(&self) -> SeqlockState {
        SeqlockState {
            mem: WeakMem::new(NLOCS, 2),
            cursor: 0,
            lap: 0,
            ticket: 0,
            copy: (0, 0),
            accepted: false,
            seq_high: 0,
            poison: None,
            threads: [
                SThread { pc: 0, done: false },
                SThread { pc: 0, done: false },
            ],
        }
    }

    fn successors(&self, s: &SeqlockState) -> Vec<SeqlockState> {
        let mut out = Vec::new();
        let mut writer_enabled = false;
        for tid in [WRITER, READER] {
            for mem in s.mem.flush_succs(tid) {
                let mut n = s.clone();
                n.mem = mem;
                // Monotonicity ghost: watch the shared seq cell across
                // every flush.
                let seq_now = n.mem.shared_load(SEQ);
                if seq_now < n.seq_high {
                    n.poison = Some("seq went backwards: non-monotone sequence numbers");
                } else {
                    n.seq_high = seq_now;
                }
                writer_enabled |= tid == WRITER;
                out.push(n);
            }
            if !s.threads[tid].done {
                let steps = if tid == WRITER {
                    self.step_writer(s)
                } else {
                    self.step_reader(s)
                };
                writer_enabled |= tid == WRITER && !steps.is_empty();
                out.extend(steps);
            }
        }
        // Writers never block: a writer that is not done must always
        // have an enabled step (its fences wait only on its own buffer,
        // whose flushes are always enabled — never on the reader).
        if !s.threads[WRITER].done && !writer_enabled {
            let mut n = s.clone();
            n.poison = Some("writer blocked: no enabled writer step");
            out.push(n);
        }
        out
    }

    fn is_final(&self, s: &SeqlockState) -> bool {
        s.threads.iter().all(|t| t.done) && s.mem.all_drained()
    }

    fn invariant(&self, s: &SeqlockState) -> Result<(), String> {
        match s.poison {
            Some(msg) => Err(msg.to_string()),
            None => Ok(()),
        }
    }

    fn finale(&self, s: &SeqlockState) -> Result<(), String> {
        // Quiescent slot: the last lap's payload and even seq, in full.
        let last = (LAPS - 1) as u64;
        if s.mem.shared_load(SEQ) != 2 * last + 2 && self.mutation != SeqlockMutation::TicketReuse {
            return Err(format!(
                "slot wound down with seq {} (want {})",
                s.mem.shared_load(SEQ),
                2 * last + 2
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Outcome};

    fn run(mutation: SeqlockMutation) -> Outcome {
        Explorer::default().run(&SeqlockModel { mutation })
    }

    #[test]
    fn faithful_seqlock_passes_exhaustively() {
        let out = run(SeqlockMutation::None);
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn every_mutation_is_caught() {
        for mutation in SeqlockMutation::ALL {
            let out = run(mutation);
            assert!(
                out.violated(),
                "mutation {mutation:?} was not caught: {out:?}"
            );
        }
    }

    #[test]
    fn shipped_pr6_protocol_admits_a_torn_read() {
        // SkipBeginFence is exactly the protocol spans.rs/ring.rs shipped
        // in PR 6; the model is what surfaced the missing fence.
        let out = run(SeqlockMutation::SkipBeginFence);
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("torn span"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn ticket_reuse_breaks_monotonicity() {
        let out = run(SeqlockMutation::TicketReuse);
        match out {
            Outcome::Violation { message, .. } => assert!(
                message.contains("non-monotone") || message.contains("torn span"),
                "{message}"
            ),
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
