//! The weak-memory substrate shared by the protocol models.
//!
//! Same operational model as `mcgc_membar::weaksim`, packaged as a value
//! the model states embed: each thread owns a buffer of pending *plain*
//! stores that flush to shared memory in any order preserving
//! per-location coherence. Plain loads are satisfied from the thread's
//! own buffer (store forwarding) or shared memory.
//!
//! The models split locations in two classes, mirroring how the paper's
//! protocols are built:
//!
//! * **synchronization locations** (sub-pool heads, next links, packet
//!   counters, card indicators, mark bits) are accessed with
//!   [`WeakMem::shared_load`]/[`WeakMem::shared_store`]: sequentially
//!   consistent among themselves, but — crucially — *not* a barrier for
//!   plain stores. On the paper's weakly-ordered hardware a CAS orders
//!   nothing by itself; all data/publication ordering must come from the
//!   explicit §5 fences the models issue (and the mutations delete).
//! * **data locations** (packet bodies, object reference slots) are
//!   plain: buffered, weakly ordered.
//!
//! A [`WeakMem::fence`]-eligible step requires the thread's own buffer
//! to be empty (the §5.1/§5.2 producer-side fence); a
//! [`WeakMem::others_drained`]-gated step requires every *other* buffer
//! to be empty (the §5.3 handshake / a stop-the-world rendezvous).

/// Weak memory: shared array plus per-thread plain-store buffers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct WeakMem {
    shared: Vec<u64>,
    buffers: Vec<Vec<(usize, u64)>>,
}

impl WeakMem {
    /// Creates a memory with `locations` zeroed cells and `threads`
    /// empty buffers.
    pub fn new(locations: usize, threads: usize) -> WeakMem {
        WeakMem {
            shared: vec![0; locations],
            buffers: vec![Vec::new(); threads],
        }
    }

    /// Buffers a plain store by `tid`.
    pub fn plain_store(&mut self, tid: usize, loc: usize, val: u64) {
        self.buffers[tid].push((loc, val));
    }

    /// Plain load by `tid`: newest own pending store wins (forwarding),
    /// else shared memory.
    pub fn plain_load(&self, tid: usize, loc: usize) -> u64 {
        self.buffers[tid]
            .iter()
            .rev()
            .find(|&&(l, _)| l == loc)
            .map(|&(_, v)| v)
            .unwrap_or(self.shared[loc])
    }

    /// Sequentially consistent load of a synchronization location.
    pub fn shared_load(&self, loc: usize) -> u64 {
        self.shared[loc]
    }

    /// Sequentially consistent store to a synchronization location.
    /// Deliberately **not** a barrier: the caller's plain-store buffer is
    /// untouched.
    pub fn shared_store(&mut self, loc: usize, val: u64) {
        self.shared[loc] = val;
    }

    /// True when `tid` may pass a fence (own buffer drained).
    pub fn fence(&self, tid: usize) -> bool {
        self.buffers[tid].is_empty()
    }

    /// True when every *other* thread's buffer is drained (handshake).
    pub fn others_drained(&self, tid: usize) -> bool {
        self.buffers
            .iter()
            .enumerate()
            .all(|(i, b)| i == tid || b.is_empty())
    }

    /// True when every buffer is drained.
    pub fn all_drained(&self) -> bool {
        self.buffers.iter().all(|b| b.is_empty())
    }

    /// Buffer indices of `tid` whose store may flush next: the oldest
    /// pending store per location (coherence order).
    pub fn flushable(&self, tid: usize) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (i, &(loc, _)) in self.buffers[tid].iter().enumerate() {
            if seen.insert(loc) {
                out.push(i);
            }
        }
        out
    }

    /// Flushes buffer entry `idx` of `tid` to shared memory.
    pub fn flush(&mut self, tid: usize, idx: usize) {
        let (loc, val) = self.buffers[tid].remove(idx);
        self.shared[loc] = val;
    }

    /// All states reachable from `self` by flushing exactly one pending
    /// store of `tid`, as `(memory, description)`-free clones. Helper for
    /// model `successors` implementations.
    pub fn flush_succs(&self, tid: usize) -> Vec<WeakMem> {
        self.flushable(tid)
            .into_iter()
            .map(|idx| {
                let mut m = self.clone();
                m.flush(tid, idx);
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_and_flush() {
        let mut m = WeakMem::new(2, 2);
        m.plain_store(0, 1, 7);
        assert_eq!(m.plain_load(0, 1), 7, "own store forwarded");
        assert_eq!(m.plain_load(1, 1), 0, "other thread sees stale 0");
        assert!(!m.fence(0));
        assert!(m.fence(1));
        assert!(!m.others_drained(1));
        let succs = m.flush_succs(0);
        assert_eq!(succs.len(), 1);
        assert_eq!(succs[0].plain_load(1, 1), 7);
        assert!(succs[0].all_drained());
    }

    #[test]
    fn coherence_restricts_flush_order() {
        let mut m = WeakMem::new(2, 1);
        m.plain_store(0, 0, 1);
        m.plain_store(0, 0, 2);
        m.plain_store(0, 1, 9);
        // Oldest store per location only: indices 0 (loc 0, val 1) and 2
        // (loc 1).
        assert_eq!(m.flushable(0), vec![0, 2]);
    }

    #[test]
    fn shared_store_is_not_a_barrier() {
        let mut m = WeakMem::new(2, 1);
        m.plain_store(0, 0, 1);
        m.shared_store(1, 5);
        assert_eq!(m.shared_load(1), 5, "sync store visible immediately");
        assert_eq!(m.shared_load(0), 0, "plain store still buffered");
    }
}
