//! Blocking-primitive building blocks shared by the lock-based protocol
//! models ([`crate::sched_model`], [`crate::shard_model`]).
//!
//! The models use a standard soundness-preserving reduction: a
//! mutex-protected critical section that contains no condvar wait is
//! collapsed into **one atomic micro-step**. Because the real lock makes
//! the section's intermediate states invisible to every other thread,
//! exploring them separately adds states without adding behaviors. A
//! mutation that *removes* the lock is modeled by splitting the section
//! back into separate steps — exactly the interleavings the lock was
//! suppressing.
//!
//! What cannot be collapsed is a condvar wait, which releases the mutex
//! mid-section and blocks. [`CvSet`] models the waiter set: a thread
//! that sleeps sets its bit and has **no enabled steps** until a
//! notification (or, when the scenario enables them, a spurious wakeup)
//! clears it; the woken thread then re-runs its wait step, which
//! re-acquires the lock and re-evaluates the predicate — the `while`
//! loop around every real `Condvar::wait`. A model of buggy code that
//! checks its predicate *outside* the lock before sleeping simply
//! misses any state change landing in the window (see
//! `SchedMutation::ParkMissesOpen`).
//!
//! Deadlock detection falls out for free: a sleeping thread contributes
//! no successors, so a lost notification leaves the explorer at a
//! non-final state with no successors, which [`crate::sched::Explorer`]
//! reports as a deadlock.

/// A condition-variable waiter set over thread ids `0..16`.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash, Debug)]
pub struct CvSet {
    blocked: u16,
}

impl CvSet {
    /// Puts `tid` to sleep on this condvar (the mutex release is implied
    /// by the caller's atomic wait step).
    pub fn sleep(&mut self, tid: usize) {
        self.blocked |= 1 << tid;
    }

    /// True while `tid` is asleep; its wait step is disabled.
    pub fn is_blocked(&self, tid: usize) -> bool {
        self.blocked & (1 << tid) != 0
    }

    /// Wakes every sleeper (`Condvar::notify_all`): each re-runs its
    /// wait step and re-evaluates its predicate under the lock.
    pub fn notify_all(&mut self) {
        self.blocked = 0;
    }

    /// Thread ids that a spurious wakeup could release right now.
    pub fn sleepers(&self) -> Vec<usize> {
        (0..16).filter(|&t| self.is_blocked(t)).collect()
    }

    /// Releases exactly `tid` (a spurious wakeup, or a `notify_one`).
    pub fn wake(&mut self, tid: usize) {
        self.blocked &= !(1 << tid);
    }

    /// True when nobody is asleep on this condvar.
    pub fn empty(&self) -> bool {
        self.blocked == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_notify_roundtrip() {
        let mut cv = CvSet::default();
        assert!(cv.empty());
        cv.sleep(1);
        cv.sleep(3);
        assert!(cv.is_blocked(1) && cv.is_blocked(3) && !cv.is_blocked(0));
        assert_eq!(cv.sleepers(), vec![1, 3]);
        cv.wake(1);
        assert!(!cv.is_blocked(1) && cv.is_blocked(3));
        cv.notify_all();
        assert!(cv.empty());
    }
}
