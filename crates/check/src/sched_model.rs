//! Model of the unified GC scheduler's session/bucket protocol
//! (`crates/core/src/scheduler.rs`): one pool of persistent workers, a
//! single wakeup when a session opens, buckets published as sequence
//! number bumps with **no** per-phase notify, a claims-based drain
//! guard that closes each bucket even on unwind, worker panic-abort,
//! and the park/shutdown races on the one shared condvar.
//!
//! The state machine mirrors `Scheduler::open_session` /
//! `Session::run` / `Scheduler::serve` / `Scheduler::park` step for
//! step, with mutex-protected critical sections collapsed into single
//! atomic micro-steps (see [`crate::locks`]) and condvar parks modeled
//! as real blocking via [`CvSet`]:
//!
//! * **open** = lock; `open = true`; the session's one
//!   `notify_all(wake_cv)`;
//! * **publish** = lock; `{job, bucket, bucket_seq + 1}` — *no*
//!   notify: resident workers observe the new sequence number;
//! * **park** = lock; predicate `shutdown || open || job` checked
//!   *under the lock*, else sleep on `wake_cv`;
//! * **claim** = lock; `job.is_some() && bucket_seq != last_seq` ⇒
//!   `{last_seq = bucket_seq, executing + 1}`;
//! * **work claiming** = the bucket closure's atomic cursor: each
//!   `fetch_add` claims one work item (card stripe, root chunk, sweep
//!   chunk, packet…) in a single step;
//! * **drain guard** = the leader's `DrainGuard`: `job = None`
//!   *first* (no new claim can start), then wait `executing == 0` —
//!   on the unwind path too, which is what makes the lifetime-erased
//!   closure sound;
//! * **worker panic** = `std::process::abort()`, modeled as a terminal
//!   `aborted` state the finale accepts (the documented contract: a
//!   worker that dies inside a bucket takes the process with it rather
//!   than stranding the leader's drain wait forever).
//!
//! Ghost state carries the protocol's safety properties:
//!
//! * `frames[round]` — whether the leader frame owning round `round`'s
//!   closure is still alive; a bucket step against a dead frame is the
//!   **dangling bucket closure** the lifetime erasure could produce;
//! * `claims[round][item]` — how many times each work item was
//!   claimed; `> 1` is a double-claim, and the finale demands every
//!   item of every *completed* bucket be claimed **exactly once**
//!   (buckets cut short by a leader panic may leave items unclaimed —
//!   the pause is unwinding);
//! * a worker claiming a bucket it already ran (`last_seq` dedup
//!   deleted) poisons the state directly;
//! * a lost wakeup, a stranded drain wait, and a termination that
//!   never fires (condemned packet never re-queued) all surface as the
//!   explorer's built-in deadlock/livelock detection.
//!
//! Every [`SchedMutation`] re-introduces one bug this protocol shape
//! exists to prevent; `every_mutation_is_caught` proves none is
//! vacuous. The `// MODEL: sched_model — …` comments in
//! `crates/core/src/scheduler.rs` cite these mutations by name: when
//! editing the protocol there, change this model in the same commit.
//!
//! Two deliberate modeling choices: the park modeled here is the pure
//! session worker's **untimed** park (tracer-role workers use timed
//! parks as a safety net, which bounds — but does not fix — a lost
//! wakeup), and the `participation` scenario uses a **rendezvous
//! bucket** whose leader slice completes only once every session
//! worker has claimed it (how the scheduler's unit tests pin
//! participation down despite leader independence); that is what makes
//! a lost *open* wakeup observable as a deadlock rather than a silent
//! parallelism loss.

use crate::locks::CvSet;
use crate::sched::Model;

/// A single protocol change for mutation testing: each deletes one
/// ordering rule, predicate re-check, notification, dedup, or unwind
/// guard, and the checker must find the resulting bug.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SchedMutation {
    /// The faithful protocol.
    None,
    /// `open_session` publishes `open = true` without its `notify_all`:
    /// parked workers sleep through the session. Ordinary buckets
    /// degrade to leader-only (a parallelism loss), but a bucket that
    /// *needs* participation deadlocks — the `participation` scenario.
    MissedOpenNotify,
    /// The park predicate is checked *before* taking the state lock
    /// (check-then-park): an open or shutdown that lands in the window
    /// notifies nobody, the worker then sleeps unconditionally, and the
    /// final join deadlocks.
    ParkMissesOpen,
    /// `shutdown` sets the flag without `notify_all`: a worker on the
    /// untimed session park sleeps forever and the join deadlocks.
    MissedShutdownNotify,
    /// The `last_seq` dedup is deleted from the claim: a worker that
    /// finished its slice re-claims the still-open bucket and runs the
    /// closure twice.
    SplitClaim,
    /// The drain guard skips its `executing == 0` wait: the next bucket
    /// is published (and the previous closure's frame freed) while a
    /// worker is still inside the previous closure — a dangling bucket
    /// closure.
    OpenBeforeDrained,
    /// The drain guard's two steps are swapped (wait first, *then*
    /// clear `job`): a worker that claims in the window between the
    /// wait passing and the clear executes a closure whose frame is
    /// being torn down.
    WaitBeforeClear,
    /// A leader panic unwinds past the drain guard: the frame owning
    /// the lifetime-erased closure dies with the bucket still
    /// published.
    UnwindPastDrain,
    /// A worker panic unwinds out of the pool loop instead of aborting
    /// the process: `executing` is never decremented and the leader
    /// waits at the drain forever.
    PanicNoAbort,
    /// The watchdog never condemns the stalled tracer's checked-out
    /// packet: §4.3 termination cannot fire and the drain bucket never
    /// completes.
    SkipCondemn,
}

impl SchedMutation {
    /// Every mutation (excluding `None`), for the meta-test proving
    /// none of them is vacuous.
    pub const ALL: [SchedMutation; 9] = [
        SchedMutation::MissedOpenNotify,
        SchedMutation::ParkMissesOpen,
        SchedMutation::MissedShutdownNotify,
        SchedMutation::SplitClaim,
        SchedMutation::OpenBeforeDrained,
        SchedMutation::WaitBeforeClear,
        SchedMutation::UnwindPastDrain,
        SchedMutation::PanicNoAbort,
        SchedMutation::SkipCondemn,
    ];
}

// Leader program counters.
const L_OPEN: u8 = 0;
const L_PUBLISH: u8 = 1;
const L_RUN: u8 = 2;
const L_CLEARJOB: u8 = 3;
const L_DRAINWAIT: u8 = 4;
const L_CLOSE: u8 = 5;
const L_SHUTDOWN: u8 = 6;
const L_JOIN: u8 = 7;

// Worker program counters.
const W_PARK: u8 = 0;
const W_PARK_SLEEP: u8 = 1; // ParkMissesOpen only: the race window.
const W_CLAIM: u8 = 2;
const W_RUN: u8 = 3;
const W_FINISH: u8 = 4;

// Closer program counters.
const C_SHUTDOWN: u8 = 0;
const C_JOIN: u8 = 1;

const NO_ROUND: u8 = u8::MAX;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct SThread {
    pc: u8,
    /// Leader: rounds (buckets) completed so far.
    seen: u8,
    /// Worker: last `bucket_seq` claimed (the serve-loop dedup).
    last_seq: u8,
    /// Round whose closure this thread is currently inside.
    job_round: u8,
    /// Woken from a condvar sleep at least once at the current site.
    slept: bool,
    /// This thread already took its one scripted panic.
    panicked: bool,
    /// Leader running a post-shutdown bucket inline (no publish).
    inline: bool,
    done: bool,
}

impl SThread {
    fn new() -> SThread {
        SThread {
            pc: 0,
            seen: 0,
            last_seq: 0,
            job_round: NO_ROUND,
            slept: false,
            panicked: false,
            inline: false,
            done: false,
        }
    }
}

/// Full system state of the scheduler model.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SchedProtoState {
    // SchedState fields from scheduler.rs, all under the one state
    // mutex (each access below is one collapsed critical section).
    open: bool,
    /// Round whose closure is published (`Some` = open to claims).
    job: Option<u8>,
    bucket_seq: u8,
    executing: u8,
    shutdown: bool,
    wake_cv: CvSet,
    /// The current bucket's work-item claim cursor (an atomic in the
    /// closure).
    cursor: u8,
    /// Condemned-packet scenario: the watchdog has re-queued the
    /// stalled tracer's item.
    requeued: bool,
    /// Condemned-packet scenario: the re-queued item was claimed.
    claimed0: bool,
    /// Ghost: is round r's leader frame (owning the closure) alive?
    frames: Vec<bool>,
    /// Ghost: did round r's bucket complete (drain) normally?
    completed: Vec<bool>,
    /// Ghost: claim count per `round * items + item`.
    claims: Vec<u8>,
    /// Ghost: buckets published or run inline so far.
    rounds_started: u8,
    /// Terminal: a worker panicked and the process aborted.
    aborted: bool,
    /// Ghost: first safety violation observed while stepping.
    poison: Option<&'static str>,
    threads: Vec<SThread>,
}

/// The scheduler protocol model for a fixed scenario.
#[derive(Clone, Debug)]
pub struct SchedModel {
    /// Parked session workers (`stw_workers - 1`).
    pub workers: u8,
    /// Buckets the leader publishes in the session.
    pub rounds: u8,
    /// Work items per bucket, claimed through the shared cursor.
    pub items: u8,
    /// Add a separate thread that requests shutdown concurrently with
    /// the leader's session (the `Gc::shutdown`-vs-pause race).
    pub closer: bool,
    /// Script one leader panic mid-bucket (exercises the drain guard's
    /// unwind path).
    pub leader_panics: bool,
    /// Script one worker panic mid-bucket (exercises the abort
    /// contract).
    pub worker_panics: bool,
    /// Model spurious condvar wakeups.
    pub spurious: bool,
    /// The buckets rendezvous: the leader's slice completes only when
    /// every session worker has claimed the bucket. Makes worker
    /// participation — and therefore the open wakeup — load-bearing.
    pub rendezvous: bool,
    /// The drain bucket starts with item 0 checked out by a stalled
    /// tracer; §4.3 termination needs the watchdog to condemn and
    /// re-queue it before the bucket can complete.
    pub condemned: bool,
    /// The protocol change under test.
    pub mutation: SchedMutation,
}

impl SchedModel {
    /// Two workers, two buckets of two items each: the bread-and-butter
    /// open/publish/claim/drain/close/shutdown cycle.
    pub fn session(mutation: SchedMutation) -> SchedModel {
        SchedModel {
            workers: 2,
            rounds: 2,
            items: 2,
            closer: false,
            leader_panics: false,
            worker_panics: false,
            spurious: false,
            rendezvous: false,
            condemned: false,
            mutation,
        }
    }

    /// One worker, two buckets, spurious wakeups on: proves the park
    /// re-checks its predicate.
    pub fn session_spurious(mutation: SchedMutation) -> SchedModel {
        SchedModel {
            workers: 1,
            rounds: 2,
            items: 2,
            spurious: true,
            ..SchedModel::session(mutation)
        }
    }

    /// One worker, one rendezvous bucket: the session's single open
    /// wakeup is what lets the worker participate at all.
    pub fn participation(mutation: SchedMutation) -> SchedModel {
        SchedModel {
            workers: 1,
            rounds: 1,
            items: 1,
            rendezvous: true,
            ..SchedModel::session(mutation)
        }
    }

    /// A closer thread races `shutdown` against one session.
    pub fn shutdown_race(mutation: SchedMutation) -> SchedModel {
        SchedModel {
            workers: 1,
            rounds: 1,
            items: 1,
            closer: true,
            ..SchedModel::session(mutation)
        }
    }

    /// A worker panics inside a claimed bucket: the faithful protocol
    /// aborts the process instead of stranding the drain wait.
    pub fn worker_panic(mutation: SchedMutation) -> SchedModel {
        SchedModel {
            workers: 1,
            rounds: 1,
            items: 2,
            worker_panics: true,
            ..SchedModel::session(mutation)
        }
    }

    /// The leader panics mid-bucket: the faithful drain guard still
    /// closes the bucket before the closure's frame dies.
    pub fn leader_panic(mutation: SchedMutation) -> SchedModel {
        SchedModel {
            workers: 1,
            rounds: 1,
            items: 2,
            leader_panics: true,
            ..SchedModel::session(mutation)
        }
    }

    /// The drain bucket has a condemned packet: §4.3 termination fires
    /// only after the watchdog re-queues the stalled tracer's item.
    pub fn condemned(mutation: SchedMutation) -> SchedModel {
        SchedModel {
            workers: 1,
            rounds: 1,
            items: 2,
            condemned: true,
            ..SchedModel::session(mutation)
        }
    }

    /// The scenario that catches `mutation` (used by the CLI and the
    /// no-vacuous-mutations meta-test).
    pub fn catching(mutation: SchedMutation) -> SchedModel {
        match mutation {
            SchedMutation::None => SchedModel::session(mutation),
            SchedMutation::MissedOpenNotify => SchedModel::participation(mutation),
            SchedMutation::ParkMissesOpen => SchedModel::session(mutation),
            SchedMutation::MissedShutdownNotify => SchedModel::session(mutation),
            SchedMutation::SplitClaim => SchedModel::session(mutation),
            SchedMutation::OpenBeforeDrained => SchedModel::session(mutation),
            SchedMutation::WaitBeforeClear => SchedModel::session(mutation),
            SchedMutation::UnwindPastDrain => SchedModel::leader_panic(mutation),
            SchedMutation::PanicNoAbort => SchedModel::worker_panic(mutation),
            SchedMutation::SkipCondemn => SchedModel::condemned(mutation),
        }
    }

    fn nthreads(&self) -> usize {
        1 + self.workers as usize + usize::from(self.closer)
    }

    fn closer_tid(&self) -> usize {
        1 + self.workers as usize
    }

    /// The cursor value a freshly published bucket starts at: in the
    /// condemned scenario item 0 is checked out by the stalled tracer
    /// and only re-enters via the watchdog's re-queue.
    fn initial_cursor(&self) -> u8 {
        u8::from(self.condemned)
    }

    fn record_claim(&self, n: &mut SchedProtoState, round: u8, item: u8) {
        if round == NO_ROUND {
            n.poison = Some("claim with no bucket published");
            return;
        }
        if !n.frames[round as usize] {
            n.poison = Some("dangling bucket closure: step against a dead leader frame");
            return;
        }
        let slot = round as usize * self.items as usize + item as usize;
        n.claims[slot] += 1;
        if n.claims[slot] > 1 {
            n.poison = Some("work item claimed twice in one bucket");
        }
    }

    /// True when the current bucket's work is exhausted: the cursor is
    /// drained and, in the condemned scenario, the re-queued item was
    /// claimed (§4.3 termination: a checked-out packet blocks it).
    fn work_done(&self, s: &SchedProtoState) -> bool {
        s.cursor >= self.items && (!self.condemned || s.claimed0)
    }

    /// True when every session worker has claimed the current bucket
    /// (the rendezvous closures the scheduler's unit tests use).
    fn all_participated(&self, s: &SchedProtoState) -> bool {
        (1..=self.workers as usize).all(|w| s.threads[w].last_seq == s.bucket_seq)
    }

    /// In-bucket successors shared by leader and workers: claim one
    /// item, claim the re-queued item, take the watchdog step (leader),
    /// panic (if scripted), or leave once the work is exhausted.
    /// `on_exit(n)` applies the thread's bucket-exit transition.
    fn step_run(
        &self,
        s: &SchedProtoState,
        tid: usize,
        on_exit: impl Fn(&mut SchedProtoState),
        can_panic: bool,
    ) -> Vec<SchedProtoState> {
        let t = &s.threads[tid];
        let mut out = Vec::new();
        // Inside the closure, every step touches the leader frame.
        if t.job_round == NO_ROUND || !s.frames[t.job_round as usize] {
            let mut n = s.clone();
            n.poison = Some("dangling bucket closure: step against a dead leader frame");
            return vec![n];
        }
        if s.cursor < self.items {
            let mut n = s.clone();
            let item = n.cursor;
            n.cursor += 1;
            self.record_claim(&mut n, t.job_round, item);
            out.push(n);
        }
        if self.condemned && s.requeued && !s.claimed0 {
            let mut n = s.clone();
            n.claimed0 = true;
            self.record_claim(&mut n, t.job_round, 0);
            out.push(n);
        }
        if tid == 0 && self.condemned && !s.requeued && self.mutation != SchedMutation::SkipCondemn
        {
            // The pause watchdog condemns the stalled tracer's handle
            // and re-queues its work, unblocking §4.3 termination.
            let mut n = s.clone();
            n.requeued = true;
            out.push(n);
        }
        if self.work_done(s) && (tid != 0 || !self.rendezvous || self.all_participated(s)) {
            let mut n = s.clone();
            on_exit(&mut n);
            out.push(n);
        }
        if can_panic && !s.threads[tid].panicked && s.cursor < self.items {
            out.push(self.panic_step(s, tid));
        }
        out
    }

    fn panic_step(&self, s: &SchedProtoState, tid: usize) -> SchedProtoState {
        let mut n = s.clone();
        n.threads[tid].panicked = true;
        if tid == 0 {
            match self.mutation {
                SchedMutation::UnwindPastDrain => {
                    // No drain guard on the unwind path: the frame dies
                    // with the bucket still published.
                    n.frames[n.threads[0].job_round as usize] = false;
                    n.threads[0].job_round = NO_ROUND;
                    n.threads[0].pc = L_CLOSE;
                }
                _ => {
                    // Faithful: the guard's Drop still closes the bucket
                    // before the frame is torn down (WaitBeforeClear
                    // runs its swapped guard on unwind too).
                    n.threads[0].pc = if self.mutation == SchedMutation::WaitBeforeClear {
                        L_DRAINWAIT
                    } else {
                        L_CLEARJOB
                    };
                }
            }
        } else {
            match self.mutation {
                SchedMutation::PanicNoAbort => {
                    // The catch_unwind/abort is gone: the worker thread
                    // just dies, without decrementing `executing`.
                    n.threads[tid].done = true;
                }
                _ => {
                    // Faithful: std::process::abort().
                    n.aborted = true;
                }
            }
        }
        n
    }

    /// The leader's bucket-complete transition: retire the frame, mark
    /// the round completed, move on to the next publish.
    fn finish_round(&self, n: &mut SchedProtoState) {
        let round = n.threads[0].job_round;
        n.frames[round as usize] = false;
        // A bucket the leader panicked out of drains (the guard still
        // runs on unwind) but did not *complete*: its remaining work is
        // abandoned with the pause, so the finale's claimed-exactly-once
        // check does not apply to it.
        n.completed[round as usize] = !n.threads[0].panicked;
        n.threads[0].job_round = NO_ROUND;
        n.threads[0].inline = false;
        n.threads[0].seen += 1;
        n.threads[0].pc = L_PUBLISH;
    }

    fn step_leader(&self, s: &SchedProtoState) -> Vec<SchedProtoState> {
        let t = &s.threads[0];
        match t.pc {
            // lock; open = true; the session's ONE notify_all; unlock.
            L_OPEN => {
                let mut n = s.clone();
                n.open = true;
                if self.mutation != SchedMutation::MissedOpenNotify {
                    n.wake_cv.notify_all();
                }
                n.threads[0].pc = L_PUBLISH;
                vec![n]
            }
            // lock; {job, bucket, bucket_seq + 1}; unlock — NO notify.
            // After shutdown: run the bucket inline instead (nobody
            // would claim it; see Session::run's fallback).
            L_PUBLISH => {
                if t.seen >= self.rounds || t.panicked {
                    let mut n = s.clone();
                    n.threads[0].pc = L_CLOSE;
                    return vec![n];
                }
                let round = t.seen;
                let mut n = s.clone();
                n.frames[round as usize] = true;
                n.rounds_started += 1;
                n.cursor = self.initial_cursor();
                n.requeued = false;
                n.claimed0 = false;
                n.threads[0].job_round = round;
                n.threads[0].pc = L_RUN;
                if s.shutdown {
                    n.threads[0].inline = true;
                } else {
                    n.job = Some(round);
                    n.bucket_seq = n.bucket_seq.wrapping_add(1);
                }
                vec![n]
            }
            // The leader runs its own slice alongside the workers.
            L_RUN => self.step_run(
                s,
                0,
                |n| {
                    if n.threads[0].inline {
                        // Inline buckets were never published: nothing
                        // to drain.
                        self.finish_round(n);
                    } else {
                        n.threads[0].pc = match self.mutation {
                            // Guard swapped: wait first, then clear.
                            SchedMutation::WaitBeforeClear => L_DRAINWAIT,
                            _ => L_CLEARJOB,
                        };
                    }
                },
                self.leader_panics,
            ),
            // Drain guard step 1: lock; job = None (closed to claims).
            L_CLEARJOB => {
                let mut n = s.clone();
                n.job = None;
                match self.mutation {
                    SchedMutation::OpenBeforeDrained => {
                        // The executing-wait is deleted: the frame dies
                        // (and the next bucket may be published) while
                        // workers are still inside the closure.
                        self.finish_round(&mut n);
                    }
                    SchedMutation::WaitBeforeClear => {
                        // Swapped guard: the wait already passed; the
                        // clear retires the frame without re-checking
                        // `executing`.
                        self.finish_round(&mut n);
                    }
                    _ => n.threads[0].pc = L_DRAINWAIT,
                }
                vec![n]
            }
            // Drain guard step 2: spin until executing == 0, then the
            // frame may die.
            L_DRAINWAIT => {
                if s.executing > 0 {
                    return vec![]; // the leader's bounded spin, blocked
                }
                let mut n = s.clone();
                match self.mutation {
                    SchedMutation::WaitBeforeClear => n.threads[0].pc = L_CLEARJOB,
                    _ => self.finish_round(&mut n),
                }
                vec![n]
            }
            // Session::drop: lock; open = false; unlock (no notify).
            L_CLOSE => {
                let mut n = s.clone();
                n.open = false;
                if self.closer {
                    n.threads[0].done = true; // the closer owns shutdown
                } else {
                    n.threads[0].pc = L_SHUTDOWN;
                }
                vec![n]
            }
            // lock; shutdown = true; notify_all(wake_cv); unlock.
            L_SHUTDOWN => {
                let mut n = s.clone();
                n.shutdown = true;
                if self.mutation != SchedMutation::MissedShutdownNotify {
                    n.wake_cv.notify_all();
                }
                n.threads[0].pc = L_JOIN;
                vec![n]
            }
            // JoinHandle::join on every pool worker.
            L_JOIN => {
                if (1..=self.workers as usize).all(|w| s.threads[w].done) {
                    let mut n = s.clone();
                    n.threads[0].done = true;
                    vec![n]
                } else {
                    vec![] // blocked in join
                }
            }
            _ => unreachable!("leader pc"),
        }
    }

    fn step_worker(&self, s: &SchedProtoState, tid: usize) -> Vec<SchedProtoState> {
        let t = &s.threads[tid];
        match t.pc {
            // lock; if shutdown exit; if open/job serve; else sleep on
            // wake_cv — predicate and sleep are ONE atomic step.
            W_PARK => {
                if s.wake_cv.is_blocked(tid) {
                    return vec![]; // asleep until notified/spurious
                }
                let mut n = s.clone();
                n.threads[tid].slept = false;
                if s.shutdown {
                    n.threads[tid].done = true;
                } else if s.open || s.job.is_some() {
                    n.threads[tid].pc = W_CLAIM;
                } else if self.mutation == SchedMutation::ParkMissesOpen {
                    // Check-then-park: the predicate was read, the
                    // sleep happens in a later step — an open or
                    // shutdown landing in between notifies nobody.
                    n.threads[tid].pc = W_PARK_SLEEP;
                } else {
                    n.wake_cv.sleep(tid);
                }
                vec![n]
            }
            // ParkMissesOpen only: the unconditional sleep after the
            // unlocked predicate check.
            W_PARK_SLEEP => {
                if s.wake_cv.is_blocked(tid) {
                    return vec![];
                }
                let mut n = s.clone();
                if t.slept {
                    n.threads[tid].slept = false;
                    n.threads[tid].pc = W_PARK;
                } else {
                    n.wake_cv.sleep(tid);
                    n.threads[tid].slept = true;
                }
                vec![n]
            }
            // serve(): lock; exit on shutdown / session closed; claim
            // when a bucket is published with an unseen sequence
            // number; otherwise spin.
            W_CLAIM => {
                let mut n = s.clone();
                if s.shutdown {
                    n.threads[tid].done = true;
                    return vec![n];
                }
                if !s.open && s.job.is_none() {
                    n.threads[tid].pc = W_PARK;
                    return vec![n];
                }
                match s.job {
                    Some(round)
                        if self.mutation == SchedMutation::SplitClaim
                            || s.bucket_seq != t.last_seq =>
                    {
                        if s.bucket_seq == t.last_seq {
                            // Only reachable under SplitClaim: the
                            // dedup is gone and the worker re-runs a
                            // bucket it already finished.
                            n.poison = Some("bucket closure run twice by one worker");
                            return vec![n];
                        }
                        n.threads[tid].last_seq = s.bucket_seq;
                        n.threads[tid].job_round = round;
                        n.executing += 1;
                        n.threads[tid].pc = W_RUN;
                        vec![n]
                    }
                    // Nothing claimable yet: the serve loop's bounded
                    // spin (the explorer's visited set prunes it).
                    _ => vec![s.clone()],
                }
            }
            // The claimed slice (catch_unwind around it; panic =>
            // abort).
            W_RUN => self.step_run(
                s,
                tid,
                |n| {
                    n.threads[tid].pc = W_FINISH;
                },
                self.worker_panics,
            ),
            // lock; executing -= 1; unlock; back to the serve loop.
            W_FINISH => {
                let mut n = s.clone();
                n.executing -= 1;
                n.threads[tid].job_round = NO_ROUND;
                n.threads[tid].pc = W_CLAIM;
                vec![n]
            }
            _ => unreachable!("worker pc"),
        }
    }

    fn step_closer(&self, s: &SchedProtoState) -> Vec<SchedProtoState> {
        let tid = self.closer_tid();
        match s.threads[tid].pc {
            C_SHUTDOWN => {
                let mut n = s.clone();
                n.shutdown = true;
                n.wake_cv.notify_all();
                n.threads[tid].pc = C_JOIN;
                vec![n]
            }
            C_JOIN => {
                if (1..=self.workers as usize).all(|w| s.threads[w].done) {
                    let mut n = s.clone();
                    n.threads[tid].done = true;
                    vec![n]
                } else {
                    vec![]
                }
            }
            _ => unreachable!("closer pc"),
        }
    }
}

impl Model for SchedModel {
    type State = SchedProtoState;

    fn initial(&self) -> SchedProtoState {
        SchedProtoState {
            open: false,
            job: None,
            bucket_seq: 0,
            executing: 0,
            shutdown: false,
            wake_cv: CvSet::default(),
            cursor: 0,
            requeued: false,
            claimed0: false,
            frames: vec![false; self.rounds as usize],
            completed: vec![false; self.rounds as usize],
            claims: vec![0; self.rounds as usize * self.items as usize],
            rounds_started: 0,
            aborted: false,
            poison: None,
            threads: (0..self.nthreads()).map(|_| SThread::new()).collect(),
        }
    }

    fn successors(&self, s: &SchedProtoState) -> Vec<SchedProtoState> {
        if s.aborted {
            return vec![];
        }
        let mut out = Vec::new();
        for tid in 0..self.nthreads() {
            if s.threads[tid].done {
                continue;
            }
            let steps = if tid == 0 {
                self.step_leader(s)
            } else if tid <= self.workers as usize {
                self.step_worker(s, tid)
            } else {
                self.step_closer(s)
            };
            out.extend(steps);
        }
        if self.spurious {
            for tid in s.wake_cv.sleepers() {
                let mut n = s.clone();
                n.wake_cv.wake(tid);
                out.push(n);
            }
        }
        out
    }

    fn is_final(&self, s: &SchedProtoState) -> bool {
        s.aborted || s.threads.iter().all(|t| t.done)
    }

    fn invariant(&self, s: &SchedProtoState) -> Result<(), String> {
        match s.poison {
            Some(msg) => Err(msg.to_string()),
            None => Ok(()),
        }
    }

    fn finale(&self, s: &SchedProtoState) -> Result<(), String> {
        if s.aborted {
            // The documented worker-panic contract: the process dies
            // instead of deadlocking. Nothing else to check.
            return Ok(());
        }
        if s.executing != 0 {
            return Err(format!("pool wound down with executing = {}", s.executing));
        }
        if s.job.is_some() {
            return Err("pool wound down with a bucket still published".to_string());
        }
        if s.open {
            return Err("pool wound down with the session still open".to_string());
        }
        if let Some(alive) = s.frames.iter().position(|&f| f) {
            return Err(format!("round {alive}'s frame still alive at exit"));
        }
        // Every item of every bucket that completed (drained normally)
        // was claimed exactly once. Buckets cut short by a leader panic
        // are exempt: the pause is unwinding and the work is abandoned,
        // not lost silently.
        for round in 0..self.rounds as usize {
            if !s.completed[round] {
                continue;
            }
            for item in 0..self.items as usize {
                let slot = round * self.items as usize + item;
                if s.claims[slot] != 1 {
                    return Err(format!(
                        "round {round} item {item} claimed {} times (want exactly 1)",
                        s.claims[slot]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Outcome};

    fn run(m: &SchedModel) -> Outcome {
        Explorer::default().run(m)
    }

    #[test]
    fn faithful_session_passes_exhaustively() {
        let out = run(&SchedModel::session(SchedMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_session_survives_spurious_wakeups() {
        let out = run(&SchedModel::session_spurious(SchedMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_participation_passes() {
        let out = run(&SchedModel::participation(SchedMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_shutdown_race_passes() {
        let out = run(&SchedModel::shutdown_race(SchedMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_worker_panic_aborts_not_deadlocks() {
        let out = run(&SchedModel::worker_panic(SchedMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_leader_panic_still_drains_bucket() {
        let out = run(&SchedModel::leader_panic(SchedMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_condemned_packet_requeues_and_terminates() {
        let out = run(&SchedModel::condemned(SchedMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn every_mutation_is_caught() {
        for mutation in SchedMutation::ALL {
            let out = run(&SchedModel::catching(mutation));
            assert!(
                out.violated(),
                "mutation {mutation:?} was not caught: {out:?}"
            );
        }
    }

    #[test]
    fn missed_open_notify_strands_the_rendezvous() {
        let out = run(&SchedModel::catching(SchedMutation::MissedOpenNotify));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("deadlock"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn check_then_park_loses_the_shutdown_wakeup() {
        let out = run(&SchedModel::catching(SchedMutation::ParkMissesOpen));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("deadlock"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn dropped_dedup_runs_a_bucket_twice() {
        let out = run(&SchedModel::catching(SchedMutation::SplitClaim));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("run twice"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn steal_vs_close_race_dangles_the_closure() {
        for mutation in [
            SchedMutation::WaitBeforeClear,
            SchedMutation::OpenBeforeDrained,
            SchedMutation::UnwindPastDrain,
        ] {
            let out = run(&SchedModel::catching(mutation));
            match out {
                Outcome::Violation { message, .. } => assert!(
                    message.contains("dangling bucket closure")
                        || message.contains("still published"),
                    "{mutation:?}: {message}"
                ),
                other => panic!("{mutation:?}: expected violation, got {other:?}"),
            }
        }
    }

    #[test]
    fn skipped_condemnation_hangs_termination() {
        let out = run(&SchedModel::catching(SchedMutation::SkipCondemn));
        match out {
            Outcome::Violation { message, .. } => assert!(
                message.contains("deadlock") || message.contains("livelock"),
                "{message}"
            ),
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
