//! Model of the PR 5 stop-the-world worker gang
//! (`crates/core/src/gang.rs`): epoch-counter dispatch of a
//! lifetime-erased job closure to parked helpers, a leader drop-guard
//! that closes the phase barrier even on unwind, helper panic-abort,
//! and the shutdown/dispatch race.
//!
//! The state machine mirrors `Gang::run` / `Gang::helper_loop` step for
//! step, with mutex-protected critical sections collapsed into single
//! atomic micro-steps (see [`crate::locks`]) and condvar waits modeled
//! as real blocking via [`CvSet`]:
//!
//! * **dispatch** = lock; if shutdown already requested, run the phase
//!   inline; else publish `{job, active = helpers, epoch + 1}` and
//!   `notify_all(dispatch_cv)`;
//! * **helper wait** = lock; `while epoch == seen` — checking the epoch
//!   *before* shutdown so a pending dispatch is always honored — sleep
//!   on `dispatch_cv`;
//! * **work claiming** = the phase closure's atomic cursor: each
//!   `fetch_add` claims one work item (one card stripe, root chunk,
//!   sweep chunk…) in a single step;
//! * **barrier** = the leader's `BarrierGuard`: `while active > 0`
//!   sleep on `done_cv`, then retire the job — this runs on the unwind
//!   path too, which is what makes the lifetime-erased closure sound;
//! * **helper panic** = `std::process::abort()`, modeled as a terminal
//!   `aborted` state that the finale accepts (the documented contract:
//!   a helper that dies takes the process with it rather than stranding
//!   the leader at the barrier forever).
//!
//! Ghost state carries the four safety properties from the PR 5 review:
//!
//! * `frames[round]` — whether the leader frame owning round `round`'s
//!   closure is still alive; a claim against a dead frame is the
//!   **dangling job closure** the lifetime erasure could produce;
//! * `claims[round][item]` — how many times each work item was claimed;
//!   `> 1` is a double-claim, and the finale demands every item of every
//!   started round be claimed **exactly once**;
//! * a helper stranded at the barrier, a shutdown that deadlocks a
//!   pending dispatch, and a lost wakeup all surface as the explorer's
//!   built-in deadlock detection (a sleeping thread has no successors).
//!
//! Every [`GangMutation`] re-introduces one bug this protocol shape
//! exists to prevent — including the two real ones human review caught
//! in PR 5 (`ShutdownBeforeEpoch`, `UnwindPastBarrier`).

use crate::locks::CvSet;
use crate::sched::Model;

/// A single protocol change for mutation testing: each deletes one
/// ordering rule, predicate re-check, notification, or unwind guard,
/// and the checker must find the resulting bug.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GangMutation {
    /// The faithful protocol.
    None,
    /// The helper waits under `if` instead of `while`: a spurious wakeup
    /// sends it back to the claim loop without re-checking the epoch, so
    /// it re-runs a phase it already finished (double-claim) or touches
    /// a job whose frame is gone.
    WaitIsIf,
    /// Dispatch publishes the job without `notify_all`: with no spurious
    /// wakeups to paper over the bug, every helper sleeps forever and
    /// the leader deadlocks at the barrier.
    MissedNotify,
    /// The helper honors `shutdown` before checking for a newly
    /// published epoch (the real PR 5 bug): it exits with a dispatch
    /// pending, `active` never drains, and the leader is stranded at the
    /// barrier.
    ShutdownBeforeEpoch,
    /// `Gang::run` skips the shutdown check and publishes a job after
    /// the helpers have already exited: nobody decrements `active`, so
    /// the barrier deadlocks (faithful code runs the phase inline).
    DispatchIgnoresShutdown,
    /// A leader panic unwinds past the `BarrierGuard` (the second real
    /// PR 5 bug): the frame owning the lifetime-erased closure dies
    /// while helpers are still claiming from it.
    UnwindPastBarrier,
    /// A helper panic unwinds out of `helper_loop` instead of aborting
    /// the process: `active` is never decremented and the leader waits
    /// at the barrier forever.
    PanicNoAbort,
    /// The claim cursor's `fetch_add` is split into a load and a store:
    /// two workers read the same cursor value and the same work item is
    /// claimed twice.
    SplitClaim,
}

impl GangMutation {
    /// Every mutation (excluding `None`), for the meta-test proving none
    /// of them is vacuous.
    pub const ALL: [GangMutation; 7] = [
        GangMutation::WaitIsIf,
        GangMutation::MissedNotify,
        GangMutation::ShutdownBeforeEpoch,
        GangMutation::DispatchIgnoresShutdown,
        GangMutation::UnwindPastBarrier,
        GangMutation::PanicNoAbort,
        GangMutation::SplitClaim,
    ];
}

// Leader program counters.
const L_DISPATCH: u8 = 0;
const L_RUN: u8 = 1;
const L_BARRIER: u8 = 2;
const L_SHUTDOWN: u8 = 3;
const L_JOIN: u8 = 4;

// Helper program counters.
const H_WAIT: u8 = 0;
const H_RUN: u8 = 1;
const H_FINISH: u8 = 2;

// Closer program counters.
const C_SHUTDOWN: u8 = 0;
const C_JOIN: u8 = 1;

const NO_ROUND: u8 = u8::MAX;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct GThread {
    pc: u8,
    /// Helper: last epoch seen. Leader: current round.
    seen: u8,
    /// Round whose job this thread is currently executing.
    job_round: u8,
    /// `SplitClaim`: cursor value loaded by the first half of the claim.
    claim_reg: u8,
    /// Mid-split-claim (the load happened, the store has not).
    mid_claim: bool,
    /// Woken from a condvar sleep at least once at the current wait site.
    slept: bool,
    /// This thread already took its one scripted panic.
    panicked: bool,
    /// Running a post-shutdown dispatch inline (no helpers, no barrier).
    inline: bool,
    done: bool,
}

impl GThread {
    fn new() -> GThread {
        GThread {
            pc: 0,
            seen: 0,
            job_round: NO_ROUND,
            claim_reg: 0,
            mid_claim: false,
            slept: false,
            panicked: false,
            inline: false,
            done: false,
        }
    }
}

/// Full system state of the gang model.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GangState {
    // GangState fields from gang.rs, all accessed under the gang mutex
    // (each access below is one collapsed critical section).
    epoch: u8,
    job: Option<u8>,
    active: u8,
    shutdown: bool,
    dispatch_cv: CvSet,
    done_cv: CvSet,
    /// The current round's claim cursor (an atomic in the phase closure).
    cursor: u8,
    /// Ghost: is round r's leader frame (owning the closure) alive?
    frames: Vec<bool>,
    /// Ghost: claim count per `round * items + item`.
    claims: Vec<u8>,
    /// Ghost: rounds dispatched or run inline so far.
    rounds_started: u8,
    /// Terminal: a helper panicked and the process aborted.
    aborted: bool,
    /// Ghost: first safety violation observed while stepping.
    poison: Option<&'static str>,
    threads: Vec<GThread>,
}

/// The gang protocol model for a fixed scenario.
#[derive(Clone, Debug)]
pub struct GangModel {
    /// Parked helper threads (`stw_workers - 1`).
    pub helpers: u8,
    /// Phases the leader dispatches.
    pub rounds: u8,
    /// Work items per phase, claimed through the shared cursor.
    pub items: u8,
    /// Add a separate thread that requests shutdown concurrently with
    /// the leader's dispatches (the `Drop`-vs-pause race).
    pub closer: bool,
    /// Script one leader panic mid-phase (exercises the `BarrierGuard`
    /// unwind path).
    pub leader_panics: bool,
    /// Script one helper panic mid-phase (exercises the abort contract).
    pub helper_panics: bool,
    /// Model spurious condvar wakeups.
    pub spurious: bool,
    /// The protocol change under test.
    pub mutation: GangMutation,
}

impl GangModel {
    /// Two helpers, two dispatched phases of two items each, no spurious
    /// wakeups: the bread-and-butter dispatch/claim/barrier cycle.
    pub fn dispatch(mutation: GangMutation) -> GangModel {
        GangModel {
            helpers: 2,
            rounds: 2,
            items: 2,
            closer: false,
            leader_panics: false,
            helper_panics: false,
            spurious: false,
            mutation,
        }
    }

    /// One helper, two phases, spurious wakeups on: proves the waits
    /// re-check their predicates.
    pub fn dispatch_spurious(mutation: GangMutation) -> GangModel {
        GangModel {
            helpers: 1,
            rounds: 2,
            items: 2,
            closer: false,
            leader_panics: false,
            helper_panics: false,
            spurious: true,
            mutation,
        }
    }

    /// A closer thread races `shutdown` against one leader dispatch.
    pub fn shutdown_race(mutation: GangMutation) -> GangModel {
        GangModel {
            helpers: 1,
            rounds: 1,
            items: 1,
            closer: true,
            leader_panics: false,
            helper_panics: false,
            spurious: false,
            mutation,
        }
    }

    /// A helper panics mid-phase: the faithful protocol aborts the
    /// process instead of stranding the leader.
    pub fn helper_panic(mutation: GangMutation) -> GangModel {
        GangModel {
            helpers: 1,
            rounds: 1,
            items: 2,
            closer: false,
            leader_panics: false,
            helper_panics: true,
            spurious: false,
            mutation,
        }
    }

    /// The leader panics mid-phase: the faithful `BarrierGuard` still
    /// closes the barrier before the frame dies.
    pub fn leader_panic(mutation: GangMutation) -> GangModel {
        GangModel {
            helpers: 1,
            rounds: 1,
            items: 2,
            closer: false,
            leader_panics: true,
            helper_panics: false,
            spurious: false,
            mutation,
        }
    }

    /// The scenario that catches `mutation` (used by the CLI and the
    /// no-vacuous-mutations meta-test).
    pub fn catching(mutation: GangMutation) -> GangModel {
        match mutation {
            GangMutation::None => GangModel::dispatch(mutation),
            GangMutation::WaitIsIf => GangModel::dispatch_spurious(mutation),
            GangMutation::MissedNotify => GangModel::dispatch(mutation),
            GangMutation::ShutdownBeforeEpoch => GangModel::shutdown_race(mutation),
            GangMutation::DispatchIgnoresShutdown => GangModel::shutdown_race(mutation),
            GangMutation::UnwindPastBarrier => GangModel::leader_panic(mutation),
            GangMutation::PanicNoAbort => GangModel::helper_panic(mutation),
            GangMutation::SplitClaim => GangModel::dispatch(mutation),
        }
    }

    fn nthreads(&self) -> usize {
        1 + self.helpers as usize + usize::from(self.closer)
    }

    fn closer_tid(&self) -> usize {
        1 + self.helpers as usize
    }

    /// One work-item claim through the phase cursor by `tid`, running
    /// round `round`. Returns `false` when the cursor is exhausted.
    fn claim(&self, n: &mut GangState, tid: usize, round: u8) -> bool {
        if n.cursor >= self.items {
            return false;
        }
        let item = n.cursor;
        n.cursor += 1;
        self.record_claim(n, round, item);
        let _ = tid;
        true
    }

    fn record_claim(&self, n: &mut GangState, round: u8, item: u8) {
        if round == NO_ROUND {
            n.poison = Some("claim with no job published");
            return;
        }
        if !n.frames[round as usize] {
            n.poison = Some("dangling job closure: claim against a dead leader frame");
            return;
        }
        let slot = round as usize * self.items as usize + item as usize;
        n.claims[slot] += 1;
        if n.claims[slot] > 1 {
            n.poison = Some("work item claimed twice in one phase");
        }
    }

    /// The claim-loop steps shared by leader and helpers. Returns the
    /// successor list; when the cursor is exhausted the thread moves to
    /// `after_pc`.
    fn step_run(&self, s: &GangState, tid: usize, after_pc: u8, can_panic: bool) -> Vec<GangState> {
        let t = &s.threads[tid];
        let mut out = Vec::new();
        if self.mutation == GangMutation::SplitClaim && !t.mid_claim && s.cursor < self.items {
            // First half of the split fetch_add: load the cursor.
            let mut n = s.clone();
            n.threads[tid].claim_reg = s.cursor;
            n.threads[tid].mid_claim = true;
            out.push(n);
        } else if self.mutation == GangMutation::SplitClaim && t.mid_claim {
            // Second half: store cursor + 1 and take the loaded item.
            let mut n = s.clone();
            n.threads[tid].mid_claim = false;
            if t.claim_reg < self.items {
                n.cursor = t.claim_reg + 1;
                self.record_claim(&mut n, t.job_round, t.claim_reg);
            }
            out.push(n);
        } else if self.mutation != GangMutation::SplitClaim {
            let mut n = s.clone();
            if !self.claim(&mut n, tid, t.job_round) {
                n.threads[tid].pc = after_pc;
            }
            out.push(n);
        } else {
            // SplitClaim with the cursor exhausted: leave the loop.
            let mut n = s.clone();
            n.threads[tid].pc = after_pc;
            out.push(n);
        }
        // Scripted panic while the phase is still in flight.
        if can_panic && !t.panicked && s.cursor < self.items {
            out.push(self.panic_step(s, tid));
        }
        out
    }

    fn panic_step(&self, s: &GangState, tid: usize) -> GangState {
        let mut n = s.clone();
        n.threads[tid].panicked = true;
        n.threads[tid].mid_claim = false;
        if tid == 0 {
            match self.mutation {
                GangMutation::UnwindPastBarrier => {
                    // No BarrierGuard: the frame dies immediately and the
                    // leader unwinds past the barrier and out of run().
                    n.frames[n.threads[0].job_round as usize] = false;
                    n.threads[0].pc = L_SHUTDOWN;
                }
                _ => {
                    // Faithful: the guard's Drop still walks the barrier
                    // before the frame is torn down.
                    n.threads[0].pc = L_BARRIER;
                }
            }
        } else {
            match self.mutation {
                GangMutation::PanicNoAbort => {
                    // The catch_unwind/abort is gone: the helper thread
                    // just dies, without decrementing `active`.
                    n.threads[tid].done = true;
                }
                _ => {
                    // Faithful: std::process::abort().
                    n.aborted = true;
                }
            }
        }
        n
    }

    fn step_leader(&self, s: &GangState) -> Vec<GangState> {
        let t = &s.threads[0];
        match t.pc {
            // lock; publish {job, active, epoch+1}; notify_all; unlock —
            // or, if shutdown already came, run the phase inline.
            L_DISPATCH => {
                if t.seen >= self.rounds {
                    let mut n = s.clone();
                    if self.closer {
                        n.threads[0].done = true; // the closer owns shutdown
                    } else {
                        n.threads[0].pc = L_SHUTDOWN;
                    }
                    return vec![n];
                }
                let mut n = s.clone();
                let round = t.seen;
                if s.shutdown && self.mutation != GangMutation::DispatchIgnoresShutdown {
                    // Post-shutdown dispatch runs inline: no helpers to
                    // rendezvous with, no barrier.
                    n.frames[round as usize] = true;
                    n.rounds_started += 1;
                    n.cursor = 0;
                    n.threads[0].job_round = round;
                    n.threads[0].inline = true;
                    n.threads[0].pc = L_RUN;
                    return vec![n];
                }
                n.job = Some(round);
                n.active = self.helpers;
                n.epoch = n.epoch.wrapping_add(1);
                n.cursor = 0;
                n.frames[round as usize] = true;
                n.rounds_started += 1;
                n.threads[0].job_round = round;
                n.threads[0].slept = false;
                if self.mutation != GangMutation::MissedNotify {
                    n.dispatch_cv.notify_all();
                }
                n.threads[0].pc = L_RUN;
                vec![n]
            }
            // The leader runs the phase body alongside the helpers.
            L_RUN => self.step_run(s, 0, L_BARRIER, self.leader_panics),
            // BarrierGuard: lock; while active > 0 sleep(done_cv);
            // job = None; unlock — then the frame dies.
            L_BARRIER => {
                if s.done_cv.is_blocked(0) {
                    return vec![]; // asleep until notified
                }
                let mut n = s.clone();
                if t.inline {
                    // Inline phases have no barrier: just retire the frame.
                    n.frames[t.job_round as usize] = false;
                    n.threads[0].inline = false;
                    n.threads[0].job_round = NO_ROUND;
                    n.threads[0].seen += 1;
                    n.threads[0].pc = L_DISPATCH;
                    return vec![n];
                }
                if s.active > 0 {
                    n.done_cv.sleep(0);
                    n.threads[0].slept = true;
                    return vec![n];
                }
                n.job = None;
                n.frames[t.job_round as usize] = false;
                n.threads[0].job_round = NO_ROUND;
                n.threads[0].seen += 1;
                n.threads[0].pc = if t.panicked { L_SHUTDOWN } else { L_DISPATCH };
                vec![n]
            }
            // lock; shutdown = true; notify_all(dispatch_cv); unlock.
            L_SHUTDOWN => {
                let mut n = s.clone();
                n.shutdown = true;
                n.dispatch_cv.notify_all();
                n.threads[0].pc = L_JOIN;
                vec![n]
            }
            // JoinHandle::join on every helper.
            L_JOIN => {
                if (1..=self.helpers as usize).all(|h| s.threads[h].done) {
                    let mut n = s.clone();
                    n.threads[0].done = true;
                    vec![n]
                } else {
                    vec![] // blocked in join
                }
            }
            _ => unreachable!("leader pc"),
        }
    }

    fn step_helper(&self, s: &GangState, tid: usize) -> Vec<GangState> {
        let t = &s.threads[tid];
        match t.pc {
            // lock; while epoch == seen { if shutdown return; sleep };
            // seen = epoch; job_round = job; unlock.
            H_WAIT => {
                if s.dispatch_cv.is_blocked(tid) {
                    return vec![]; // asleep until notified/spurious
                }
                let mut n = s.clone();
                if self.mutation == GangMutation::WaitIsIf && t.slept {
                    // Woke up and proceeds without re-checking the epoch.
                    n.threads[tid].slept = false;
                    match s.job {
                        Some(r) => {
                            n.threads[tid].seen = s.epoch;
                            n.threads[tid].job_round = r;
                            n.threads[tid].pc = H_RUN;
                        }
                        None => {
                            n.poison = Some("helper ran a vanished job after an unchecked wakeup");
                        }
                    }
                    return vec![n];
                }
                if self.mutation == GangMutation::ShutdownBeforeEpoch && s.shutdown {
                    // Exits even though a dispatched epoch is pending.
                    n.threads[tid].done = true;
                    return vec![n];
                }
                if s.epoch != t.seen {
                    n.threads[tid].seen = s.epoch;
                    n.threads[tid].slept = false;
                    match s.job {
                        Some(r) => {
                            n.threads[tid].job_round = r;
                            n.threads[tid].pc = H_RUN;
                        }
                        None => {
                            n.poison = Some("epoch advanced with no job published");
                        }
                    }
                    return vec![n];
                }
                if s.shutdown {
                    n.threads[tid].done = true;
                    return vec![n];
                }
                n.dispatch_cv.sleep(tid);
                n.threads[tid].slept = true;
                vec![n]
            }
            // The phase body (catch_unwind around it; panic => abort).
            H_RUN => self.step_run(s, tid, H_FINISH, self.helper_panics),
            // lock; active -= 1; if active == 0 notify_all(done_cv);
            // unlock.
            H_FINISH => {
                let mut n = s.clone();
                n.active = n.active.saturating_sub(1);
                if n.active == 0 {
                    n.done_cv.notify_all();
                }
                n.threads[tid].job_round = NO_ROUND;
                n.threads[tid].pc = H_WAIT;
                vec![n]
            }
            _ => unreachable!("helper pc"),
        }
    }

    fn step_closer(&self, s: &GangState) -> Vec<GangState> {
        let tid = self.closer_tid();
        match s.threads[tid].pc {
            C_SHUTDOWN => {
                let mut n = s.clone();
                n.shutdown = true;
                n.dispatch_cv.notify_all();
                n.threads[tid].pc = C_JOIN;
                vec![n]
            }
            C_JOIN => {
                if (1..=self.helpers as usize).all(|h| s.threads[h].done) {
                    let mut n = s.clone();
                    n.threads[tid].done = true;
                    vec![n]
                } else {
                    vec![]
                }
            }
            _ => unreachable!("closer pc"),
        }
    }
}

impl Model for GangModel {
    type State = GangState;

    fn initial(&self) -> GangState {
        GangState {
            epoch: 0,
            job: None,
            active: 0,
            shutdown: false,
            dispatch_cv: CvSet::default(),
            done_cv: CvSet::default(),
            cursor: 0,
            frames: vec![false; self.rounds as usize],
            claims: vec![0; self.rounds as usize * self.items as usize],
            rounds_started: 0,
            aborted: false,
            poison: None,
            threads: (0..self.nthreads()).map(|_| GThread::new()).collect(),
        }
    }

    fn successors(&self, s: &GangState) -> Vec<GangState> {
        if s.aborted {
            return vec![];
        }
        let mut out = Vec::new();
        for tid in 0..self.nthreads() {
            if s.threads[tid].done {
                continue;
            }
            let steps = if tid == 0 {
                self.step_leader(s)
            } else if tid <= self.helpers as usize {
                self.step_helper(s, tid)
            } else {
                self.step_closer(s)
            };
            out.extend(steps);
        }
        if self.spurious {
            let mut sleepy = s.dispatch_cv.sleepers();
            sleepy.extend(s.done_cv.sleepers());
            for tid in sleepy {
                let mut n = s.clone();
                n.dispatch_cv.wake(tid);
                n.done_cv.wake(tid);
                out.push(n);
            }
        }
        out
    }

    fn is_final(&self, s: &GangState) -> bool {
        s.aborted || s.threads.iter().all(|t| t.done)
    }

    fn invariant(&self, s: &GangState) -> Result<(), String> {
        match s.poison {
            Some(msg) => Err(msg.to_string()),
            None => Ok(()),
        }
    }

    fn finale(&self, s: &GangState) -> Result<(), String> {
        if s.aborted {
            // The documented helper-panic contract: the process dies
            // instead of deadlocking. Nothing else to check.
            return Ok(());
        }
        if s.active != 0 {
            return Err(format!("gang wound down with active = {}", s.active));
        }
        if s.job.is_some() {
            return Err("gang wound down with a job still published".to_string());
        }
        if let Some(alive) = s.frames.iter().position(|&f| f) {
            return Err(format!("round {alive}'s frame still alive at exit"));
        }
        for round in 0..s.rounds_started {
            for item in 0..self.items {
                let slot = round as usize * self.items as usize + item as usize;
                if s.claims[slot] != 1 {
                    return Err(format!(
                        "round {round} item {item} claimed {} times (want exactly 1)",
                        s.claims[slot]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Outcome};

    fn run(m: &GangModel) -> Outcome {
        Explorer::default().run(m)
    }

    #[test]
    fn faithful_dispatch_passes_exhaustively() {
        let out = run(&GangModel::dispatch(GangMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_dispatch_survives_spurious_wakeups() {
        let out = run(&GangModel::dispatch_spurious(GangMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_shutdown_race_passes() {
        let out = run(&GangModel::shutdown_race(GangMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_helper_panic_aborts_not_deadlocks() {
        let out = run(&GangModel::helper_panic(GangMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_leader_panic_still_closes_barrier() {
        let out = run(&GangModel::leader_panic(GangMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn every_mutation_is_caught() {
        for mutation in GangMutation::ALL {
            let out = run(&GangModel::catching(mutation));
            assert!(
                out.violated(),
                "mutation {mutation:?} was not caught: {out:?}"
            );
        }
    }

    #[test]
    fn wait_under_if_runs_stale_or_vanished_job() {
        let out = run(&GangModel::catching(GangMutation::WaitIsIf));
        match out {
            Outcome::Violation { message, .. } => assert!(
                message.contains("vanished job")
                    || message.contains("claimed twice")
                    || message.contains("want exactly 1"),
                "{message}"
            ),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_before_epoch_strands_the_leader() {
        let out = run(&GangModel::catching(GangMutation::ShutdownBeforeEpoch));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("deadlock"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn unwinding_past_the_barrier_dangles_the_job() {
        let out = run(&GangModel::catching(GangMutation::UnwindPastBarrier));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("dangling job closure"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn helper_panic_without_abort_deadlocks() {
        let out = run(&GangModel::catching(GangMutation::PanicNoAbort));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("deadlock"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
