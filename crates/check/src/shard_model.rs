//! Model of the sharded free-list refill protocol
//! (`crates/heap/src/shards.rs`): home-shard allocation vs.
//! occupancy-masked round-robin steal vs. wilderness refill vs.
//! concurrent lazy-sweep deal-in.
//!
//! Mutex-protected shard operations are collapsed into single atomic
//! micro-steps (see [`crate::locks`]); the two lock-free pieces — the
//! relaxed `free_granules` counter and the `nonempty` occupancy mask —
//! keep the exact step structure of the implementation, because that
//! structure is what the protocol is about:
//!
//! * `free` bumps `free_granules` **before** taking the shard lock and
//!   pushing the extent (the counter may transiently over-count, never
//!   under-count);
//! * `take_from` decrements `free_granules` **after** dropping the
//!   shard lock (same direction);
//! * `nonempty` mask bits are set/cleared only while holding the owning
//!   shard's lock, so a clear bit means "really was empty at that
//!   instant";
//! * an alloc that misses its home shard, every mask-visible shard, and
//!   the wilderness re-walks **all** shards unfiltered before declaring
//!   OOM, because the mask copy it steals by may be stale by the time
//!   it is used.
//!
//! Extents here never split: every request size exactly matches some
//! extent size, which mirrors the size-class behavior (a take never
//! returns a smaller extent) while keeping splitting — orthogonal to
//! the locking/ordering protocol — out of the state space.
//!
//! Ghost state carries the safety properties: each extent's location
//! (binned in a shard, in the wilderness, held by an allocator, or not
//! yet dealt in) makes **double-allocation** and **extent conservation**
//! checkable at every state and at quiescence; the `free_granules`
//! mirror must **never go negative**; the quiescent mask must agree
//! bit-for-bit with real shard occupancy; and an alloc that fails while
//! an extent it *witnessed* (binned when its final sweep began) is
//! still binned is a **spurious OOM** — the failure mode the unfiltered
//! sweep exists to prevent.

use crate::sched::Model;

const NSHARDS: usize = 2;

/// Where an extent currently lives.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Loc {
    /// Not yet dealt in by the sweeper.
    Unborn,
    /// `free` has bumped the counter but not yet pushed (faithful order).
    Pending,
    /// Binned in shard `k`.
    Shard(u8),
    /// Binned in the shared wilderness list.
    Wilderness,
    /// Handed out to allocator thread `tid`.
    Held(u8),
}

/// A single protocol change for mutation testing: each reverses one
/// ordering rule, drops one mask update, or removes one fallback, and
/// the checker must find the resulting bug.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardMutation {
    /// The faithful protocol.
    None,
    /// `free` pushes the extent before bumping `free_granules`: a
    /// concurrent alloc can take the extent and decrement first, driving
    /// the counter negative.
    FreeCountsAfterPush,
    /// `take_from` clears the occupancy bit after dropping the shard
    /// lock: the deferred clear can race a concurrent deal-in's set and
    /// leave a nonempty shard permanently invisible to stealers.
    MaskClearOutsideLock,
    /// Deal-in never sets the occupancy bit: freshly swept extents are
    /// invisible to the masked steal loop and the mask disagrees with
    /// occupancy at quiescence.
    SkipMaskSetOnFree,
    /// Delete the last-resort unfiltered sweep: an alloc whose stale
    /// mask copy hides a late deal-in reports OOM while a fitting extent
    /// sits binned — the spurious OOM.
    SkipFallbackSweep,
    /// Take an extent without holding the shard lock (observe, then
    /// remove in two steps): two allocators can take the same extent.
    RacyTake,
}

impl ShardMutation {
    /// Every mutation (excluding `None`), for the meta-test proving none
    /// of them is vacuous.
    pub const ALL: [ShardMutation; 5] = [
        ShardMutation::FreeCountsAfterPush,
        ShardMutation::MaskClearOutsideLock,
        ShardMutation::SkipMaskSetOnFree,
        ShardMutation::SkipFallbackSweep,
        ShardMutation::RacyTake,
    ];
}

/// What a thread does in the scenario.
#[derive(Clone, Debug)]
pub enum ShardRole {
    /// One allocation of exactly `want` granules, starting at `home`.
    Alloc {
        /// Granules requested (must exactly match some extent size).
        want: u8,
        /// Home shard.
        home: u8,
    },
    /// Lazy-sweep deal-in: `free` each `(extent, destination)` in order.
    Sweep {
        /// Extents to deal in, with their destination (straddlers go to
        /// the wilderness).
        frees: Vec<(usize, Loc)>,
    },
}

// Allocator program counters.
const A_HOME: u8 = 0;
const A_MASK: u8 = 1;
const A_STEAL: u8 = 2;
const A_WILD: u8 = 3;
const A_WITNESS: u8 = 4;
const A_SWEEP0: u8 = 5;
// A_SWEEP0 + k sweeps shard k; A_FAIL = A_SWEEP0 + NSHARDS.
const A_FAIL: u8 = A_SWEEP0 + NSHARDS as u8;
const A_COUNT: u8 = A_FAIL + 1;
const A_DEFERRED_CLEAR: u8 = A_COUNT + 1;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ShThread {
    pc: u8,
    /// Mask copy loaded by `A_MASK` (the stale-able observation).
    mask_copy: u8,
    /// `RacyTake`: extent observed by the first half of the take.
    reg: Option<u8>,
    /// `MaskClearOutsideLock`: shard whose bit we still owe a clear.
    pending_clear: Option<u8>,
    /// Ghost: extents binned when this thread's final sweep began.
    witnessed: u8,
    /// Sweeper: next entry in `frees`, ×2 for the two steps per free.
    fpc: u8,
    done: bool,
}

impl ShThread {
    fn new() -> ShThread {
        ShThread {
            pc: 0,
            mask_copy: 0,
            reg: None,
            pending_clear: None,
            witnessed: 0,
            fpc: 0,
            done: false,
        }
    }
}

/// Full system state of the shard model.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ShardState {
    /// Location of each extent (ghost + the actual bins).
    loc: Vec<Loc>,
    /// The `nonempty` occupancy mask.
    mask: u8,
    /// The `free_granules` counter (mirrored signed so a negative
    /// excursion is observable instead of wrapping).
    counter: i16,
    /// Ghost: first safety violation observed while stepping.
    poison: Option<&'static str>,
    threads: Vec<ShThread>,
}

/// The shard refill protocol model for a fixed scenario.
#[derive(Clone, Debug)]
pub struct ShardModel {
    /// Granule length of each extent.
    pub lens: Vec<u8>,
    /// Initial location of each extent.
    pub init: Vec<Loc>,
    /// One role per thread.
    pub roles: Vec<ShardRole>,
    /// The protocol change under test.
    pub mutation: ShardMutation,
}

impl ShardModel {
    /// The main scenario: two allocators (1 granule at home shard 0,
    /// 2 granules at home shard 1) race a lazy sweeper dealing a len-2
    /// extent into shard 0, a len-1 extent into shard 1, and a len-2
    /// straddler into the wilderness. Shard 1 starts with one len-1
    /// extent; everything else arrives concurrently.
    pub fn main(mutation: ShardMutation) -> ShardModel {
        ShardModel {
            lens: vec![1, 2, 1, 2],
            init: vec![Loc::Shard(1), Loc::Unborn, Loc::Unborn, Loc::Unborn],
            roles: vec![
                ShardRole::Alloc { want: 1, home: 0 },
                ShardRole::Alloc { want: 2, home: 1 },
                ShardRole::Sweep {
                    frees: vec![(1, Loc::Shard(0)), (2, Loc::Shard(1)), (3, Loc::Wilderness)],
                },
            ],
            mutation,
        }
    }

    /// Two allocators contend for the single extent in the heap: the
    /// lock (or, mutated, its absence) decides whether one of them
    /// fails cleanly or both "win".
    pub fn contend(mutation: ShardMutation) -> ShardModel {
        ShardModel {
            lens: vec![1],
            init: vec![Loc::Shard(1)],
            roles: vec![
                ShardRole::Alloc { want: 1, home: 0 },
                ShardRole::Alloc { want: 1, home: 0 },
            ],
            mutation,
        }
    }

    /// The scenario that catches `mutation` (used by the CLI and the
    /// no-vacuous-mutations meta-test).
    pub fn catching(mutation: ShardMutation) -> ShardModel {
        match mutation {
            ShardMutation::RacyTake => ShardModel::contend(mutation),
            _ => ShardModel::main(mutation),
        }
    }

    /// First extent of exactly `want` granules binned at `place`.
    fn find_fit(&self, s: &ShardState, place: Loc, want: u8) -> Option<u8> {
        (0..self.lens.len())
            .find(|&e| s.loc[e] == place && self.lens[e] == want)
            .map(|e| e as u8)
    }

    /// Takes extent `e` for `tid` (the locked part of `take_from`):
    /// moves it to `Held`, maintains the occupancy bit, and flags a
    /// double-take.
    fn take(&self, n: &mut ShardState, tid: usize, e: u8) {
        let prev = n.loc[e as usize];
        if matches!(prev, Loc::Held(_)) {
            n.poison = Some("double-allocation: extent taken while already held");
        }
        n.loc[e as usize] = Loc::Held(tid as u8);
        if let Loc::Shard(k) = prev {
            let emptied = !(0..self.lens.len()).any(|o| n.loc[o] == Loc::Shard(k));
            if emptied {
                if self.mutation == ShardMutation::MaskClearOutsideLock {
                    n.threads[tid].pending_clear = Some(k);
                } else {
                    n.mask &= !(1 << k);
                }
            }
        }
    }

    /// One allocator attempt against `place`: a hit routes through the
    /// after-lock bookkeeping (counter decrement, deferred mask clear)
    /// and finishes; a miss goes to `miss_pc`.
    fn attempt(
        &self,
        s: &ShardState,
        tid: usize,
        want: u8,
        place: Loc,
        miss_pc: u8,
    ) -> Vec<ShardState> {
        let mut n = s.clone();
        if self.mutation == ShardMutation::RacyTake {
            // Split take: observe the extent, then remove it later
            // without re-checking under a lock.
            match s.threads[tid].reg {
                None => match self.find_fit(s, place, want) {
                    Some(e) => {
                        n.threads[tid].reg = Some(e);
                        return vec![n];
                    }
                    None => {
                        n.threads[tid].pc = miss_pc;
                        return vec![n];
                    }
                },
                Some(e) => {
                    n.threads[tid].reg = None;
                    self.take(&mut n, tid, e);
                    n.threads[tid].pc = A_COUNT;
                    return vec![n];
                }
            }
        }
        match self.find_fit(s, place, want) {
            Some(e) => {
                self.take(&mut n, tid, e);
                n.threads[tid].pc = A_COUNT;
            }
            None => n.threads[tid].pc = miss_pc,
        }
        vec![n]
    }

    fn step_alloc(&self, s: &ShardState, tid: usize, want: u8, home: u8) -> Vec<ShardState> {
        let t = &s.threads[tid];
        match t.pc {
            A_HOME => self.attempt(s, tid, want, Loc::Shard(home), A_MASK),
            // One relaxed load of the occupancy mask: the copy every
            // later staleness hinges on.
            A_MASK => {
                let mut n = s.clone();
                n.threads[tid].mask_copy = s.mask;
                n.threads[tid].pc = A_STEAL;
                vec![n]
            }
            // Round-robin steal over the *other* shards, filtered by the
            // mask copy (NSHARDS = 2: exactly one victim).
            A_STEAL => {
                let victim = (home + 1) % NSHARDS as u8;
                if t.mask_copy & (1 << victim) == 0 {
                    let mut n = s.clone();
                    n.threads[tid].pc = A_WILD;
                    return vec![n];
                }
                self.attempt(s, tid, want, Loc::Shard(victim), A_WILD)
            }
            A_WILD => self.attempt(s, tid, want, Loc::Wilderness, A_WITNESS),
            // Ghost: snapshot every fitting extent binned in a shard the
            // instant the last-resort sweep begins. If we go on to fail
            // while one of them is *still* binned, the failure was the
            // mask's fault, not the heap's.
            A_WITNESS => {
                let mut n = s.clone();
                for e in 0..self.lens.len() {
                    if self.lens[e] == want && matches!(s.loc[e], Loc::Shard(_)) {
                        n.threads[tid].witnessed |= 1 << e;
                    }
                }
                n.threads[tid].pc = if self.mutation == ShardMutation::SkipFallbackSweep {
                    A_FAIL
                } else {
                    A_SWEEP0
                };
                vec![n]
            }
            pc if (A_SWEEP0..A_FAIL).contains(&pc) => {
                let k = pc - A_SWEEP0;
                self.attempt(s, tid, want, Loc::Shard(k), pc + 1)
            }
            A_FAIL => {
                let mut n = s.clone();
                let ghosted = (0..self.lens.len())
                    .any(|e| t.witnessed & (1 << e) != 0 && matches!(s.loc[e], Loc::Shard(_)));
                if ghosted {
                    n.poison =
                        Some("spurious OOM: alloc failed while a witnessed extent is still binned");
                }
                n.threads[tid].done = true;
                vec![n]
            }
            // fetch_sub on free_granules, after the shard lock is gone.
            A_COUNT => {
                let mut n = s.clone();
                n.counter -= want as i16;
                if n.counter < 0 {
                    n.poison = Some("free-granule counter went negative");
                }
                if t.pending_clear.is_some() {
                    n.threads[tid].pc = A_DEFERRED_CLEAR;
                } else {
                    n.threads[tid].done = true;
                }
                vec![n]
            }
            // MaskClearOutsideLock: the clear the lock should have
            // covered, landing who-knows-when.
            A_DEFERRED_CLEAR => {
                let mut n = s.clone();
                if let Some(k) = t.pending_clear {
                    n.mask &= !(1 << k);
                }
                n.threads[tid].pending_clear = None;
                n.threads[tid].done = true;
                vec![n]
            }
            _ => unreachable!("alloc pc"),
        }
    }

    fn step_sweep(&self, s: &ShardState, tid: usize, frees: &[(usize, Loc)]) -> Vec<ShardState> {
        let t = &s.threads[tid];
        let idx = (t.fpc / 2) as usize;
        if idx >= frees.len() {
            let mut n = s.clone();
            n.threads[tid].done = true;
            return vec![n];
        }
        let (e, dest) = frees[idx];
        let first_half = t.fpc.is_multiple_of(2);
        let counts_first = self.mutation != ShardMutation::FreeCountsAfterPush;
        let mut n = s.clone();
        n.threads[tid].fpc += 1;
        if first_half == counts_first {
            // free_granules += len, before the push in the faithful
            // order (after it under FreeCountsAfterPush).
            n.counter += self.lens[e] as i16;
            if counts_first {
                n.loc[e] = Loc::Pending;
            }
        } else {
            // lock dest; push; set the occupancy bit; unlock.
            n.loc[e] = dest;
            if let Loc::Shard(k) = dest {
                if self.mutation != ShardMutation::SkipMaskSetOnFree {
                    n.mask |= 1 << k;
                }
            }
        }
        vec![n]
    }
}

impl Model for ShardModel {
    type State = ShardState;

    fn initial(&self) -> ShardState {
        let counter = (0..self.lens.len())
            .filter(|&e| matches!(self.init[e], Loc::Shard(_) | Loc::Wilderness))
            .map(|e| self.lens[e] as i16)
            .sum();
        let mut mask = 0u8;
        for e in 0..self.lens.len() {
            if let Loc::Shard(k) = self.init[e] {
                mask |= 1 << k;
            }
        }
        ShardState {
            loc: self.init.clone(),
            mask,
            counter,
            poison: None,
            threads: (0..self.roles.len()).map(|_| ShThread::new()).collect(),
        }
    }

    fn successors(&self, s: &ShardState) -> Vec<ShardState> {
        let mut out = Vec::new();
        for (tid, role) in self.roles.iter().enumerate() {
            if s.threads[tid].done {
                continue;
            }
            match role {
                ShardRole::Alloc { want, home } => {
                    out.extend(self.step_alloc(s, tid, *want, *home))
                }
                ShardRole::Sweep { frees } => out.extend(self.step_sweep(s, tid, frees)),
            }
        }
        out
    }

    fn is_final(&self, s: &ShardState) -> bool {
        s.threads.iter().all(|t| t.done)
    }

    fn invariant(&self, s: &ShardState) -> Result<(), String> {
        if let Some(msg) = s.poison {
            return Err(msg.to_string());
        }
        if s.counter < 0 {
            return Err(format!("free-granule counter at {}", s.counter));
        }
        Ok(())
    }

    fn finale(&self, s: &ShardState) -> Result<(), String> {
        // Extent conservation: everything dealt in is binned or held,
        // exactly once (Loc is single-valued by construction, so the
        // check is that nothing is stuck in flight).
        for e in 0..self.lens.len() {
            match s.loc[e] {
                Loc::Pending => {
                    return Err(format!(
                        "extent {e} stuck in flight (counted, never binned)"
                    ))
                }
                Loc::Unborn
                    if self.roles.iter().any(|r| match r {
                        ShardRole::Sweep { frees } => frees.iter().any(|&(f, _)| f == e),
                        _ => false,
                    }) =>
                {
                    return Err(format!("extent {e} was never dealt in"))
                }
                _ => {}
            }
        }
        // The quiescent counter covers exactly the binned granules.
        let binned: i16 = (0..self.lens.len())
            .filter(|&e| matches!(s.loc[e], Loc::Shard(_) | Loc::Wilderness))
            .map(|e| self.lens[e] as i16)
            .sum();
        if s.counter != binned {
            return Err(format!(
                "quiescent free-granule counter {} != binned granules {binned}",
                s.counter
            ));
        }
        // The quiescent mask agrees bit-for-bit with shard occupancy.
        for k in 0..NSHARDS as u8 {
            let occupied = (0..self.lens.len()).any(|e| s.loc[e] == Loc::Shard(k));
            let bit = s.mask & (1 << k) != 0;
            if occupied != bit {
                return Err(format!(
                    "quiescent mask bit {k} is {bit} but shard {k} occupancy is {occupied}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Outcome};

    fn run(m: &ShardModel) -> Outcome {
        Explorer::default().run(m)
    }

    #[test]
    fn faithful_main_scenario_passes_exhaustively() {
        let out = run(&ShardModel::main(ShardMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn faithful_contended_take_passes() {
        let out = run(&ShardModel::contend(ShardMutation::None));
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn every_mutation_is_caught() {
        for mutation in ShardMutation::ALL {
            let out = run(&ShardModel::catching(mutation));
            assert!(
                out.violated(),
                "mutation {mutation:?} was not caught: {out:?}"
            );
        }
    }

    #[test]
    fn counting_after_the_push_goes_negative() {
        let out = run(&ShardModel::catching(ShardMutation::FreeCountsAfterPush));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("negative"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn dropping_the_fallback_sweep_fakes_oom() {
        let out = run(&ShardModel::catching(ShardMutation::SkipFallbackSweep));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("spurious OOM"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn lockless_take_double_allocates() {
        let out = run(&ShardModel::catching(ShardMutation::RacyTake));
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("double-allocation"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
