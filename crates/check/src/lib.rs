//! A schedule-exploring model checker for the collector's concurrency
//! protocols — proofs-by-exhaustion that the paper's fences and CAS
//! discipline, and every lock-free protocol the repo has grown since,
//! are all load-bearing.
//!
//! The substrate:
//!
//! * [`sched`] — a loom-style controlled scheduler: exhaustive DFS over
//!   every interleaving of a protocol state machine's micro-steps, with
//!   visited-state hashing (generalizing `mcgc_membar::weaksim`). A
//!   bounded search that runs out of budget reports
//!   [`Outcome::Inconclusive`] — never a silent pass;
//! * [`mem`] — the weak-memory substrate (per-thread store buffers for
//!   plain data, sequentially-consistent-but-not-fencing synchronization
//!   locations, §5-style fences and handshakes);
//! * [`locks`] — blocking-primitive building blocks: condvar waiter
//!   sets with real sleeping (lost wakeups become deadlocks the
//!   explorer reports) and the collapsed-critical-section reduction the
//!   lock-based models use.
//!
//! The model inventory, one per protocol the tree ships:
//!
//! * [`pool_model`] — the §4 packet-pool transitions (tagged-CAS
//!   push/pop, §5.1 publication fence, §4.3 after-the-op counters);
//! * [`barrier_model`] — the §2/§5.3 kickoff/write-barrier/
//!   card-snapshot protocol;
//! * [`sched_model`] — the unified GC scheduler's session/bucket
//!   protocol: one-wakeup session open, sequence-number bucket publish
//!   with no per-phase notify, claims-based drain guard, worker
//!   panic-abort, park/shutdown races, and §4.3 termination with a
//!   condemned packet (`crates/core/src/scheduler.rs`; subsumes the
//!   retired PR 5 gang model — epoch dispatch and drop-guard barriers
//!   became bucket publishes and drain guards);
//! * [`seqlock_model`] — the PR 6 flight-recorder seqlock slot
//!   (`crates/telemetry/src/spans.rs`; this model is what surfaced the
//!   missing release fence the telemetry rings shipped without);
//! * [`shard_model`] — the PR 4 sharded free-list refill protocol:
//!   home alloc, occupancy-masked steal, wilderness refill, lazy-sweep
//!   deal-in (`crates/heap/src/shards.rs`).
//!
//! Every model has a **mutation mode** ([`pool_model::PoolMutation`],
//! [`barrier_model::BarrierMutation`], [`sched_model::SchedMutation`],
//! [`seqlock_model::SeqlockMutation`], [`shard_model::ShardMutation`])
//! that deletes one fence, tag check, handshake, notification, unwind
//! guard, or ordering rule; the checker must find the resulting bug,
//! proving it has teeth — and each enum's `ALL` table backs a meta-test
//! asserting no mutation is vacuous. Run the whole matrix with
//! `cargo run -p mcgc-check` (see `src/bin/modelcheck.rs`, honoring
//! `MCGC_MODELCHECK_BUDGET`), or the unit tests with
//! `cargo test -p mcgc-check`.

pub mod barrier_model;
pub mod locks;
pub mod mem;
pub mod pool_model;
pub mod sched;
pub mod sched_model;
pub mod seqlock_model;
pub mod shard_model;

pub use barrier_model::{BarrierModel, BarrierMutation};
pub use mem::WeakMem;
pub use pool_model::{PoolModel, PoolMutation, Role};
pub use sched::{Explorer, Model, Outcome};
pub use sched_model::{SchedModel, SchedMutation};
pub use seqlock_model::{SeqlockModel, SeqlockMutation};
pub use shard_model::{ShardModel, ShardMutation, ShardRole};
