//! A schedule-exploring model checker for the collector's concurrency
//! protocols — proofs-by-exhaustion that the paper's fences and CAS
//! discipline are all load-bearing.
//!
//! Three pieces:
//!
//! * [`sched`] — a loom-style controlled scheduler: exhaustive DFS over
//!   every interleaving of a protocol state machine's micro-steps, with
//!   visited-state hashing (generalizing `mcgc_membar::weaksim`);
//! * [`mem`] — the weak-memory substrate (per-thread store buffers for
//!   plain data, sequentially-consistent-but-not-fencing synchronization
//!   locations, §5-style fences and handshakes);
//! * [`pool_model`] and [`barrier_model`] — instrumented state machines
//!   mirroring the §4 packet-pool transitions and the §2/§5.3
//!   kickoff/write-barrier/card-snapshot protocol, with ghost state for
//!   the safety properties: no lost packet, no double-get, sound
//!   termination detection, no lost object.
//!
//! Every model has a **mutation mode** ([`pool_model::PoolMutation`],
//! [`barrier_model::BarrierMutation`]) that deletes one fence, tag
//! check, handshake, or counter-ordering rule; the checker must find
//! the resulting bug, proving it has teeth. Run the whole matrix with
//! `cargo run -p mcgc-check` (see `src/bin/modelcheck.rs`), or the unit
//! tests with `cargo test -p mcgc-check`.

pub mod barrier_model;
pub mod mem;
pub mod pool_model;
pub mod sched;

pub use barrier_model::{BarrierModel, BarrierMutation};
pub use mem::WeakMem;
pub use pool_model::{PoolModel, PoolMutation, Role};
pub use sched::{Explorer, Model, Outcome};
