//! Model of the mostly-concurrent marking protocol: the card-table write
//! barrier (§2.1), the §5.3 card-snapshot/handshake cleaning sequence,
//! and the §2.2 stop-the-world finish — checked for the tri-color
//! safety property "no reachable object is left unmarked".
//!
//! The scene is the smallest heap that can lose an object: three
//! objects `A → B → C` built concurrently by a mutator while the
//! collector traces. `A` is the only root. Reference slots are plain
//! (buffered) locations; mark bits and card indicators are
//! synchronization locations — exactly the §5.3 situation where a card
//! store becomes visible *before* the slot store it covers, so a
//! collector that snapshots the card, cleans it, and rescans without a
//! handshake reads the stale slot and never sees the new reference.
//!
//! The collector state machine mirrors `mcgc_core`: kickoff root scan,
//! packet-style worklist drain, one concurrent card-cleaning pass
//! (snapshot-to-clean → handshake → rescan marked objects), then the
//! stop-the-world rendezvous (which drains every mutator buffer), root
//! rescan, final card cleaning, and final drain.

use crate::mem::WeakMem;
use crate::sched::Model;

const NOBJ: usize = 3;
const NCARDS: usize = 2;
/// Card holding each object's header (A on card 0; B and C on card 1).
const CARD_OF: [usize; NOBJ] = [0, 1, 1];
/// The single marked-object rescan candidate per card (A and B; C never
/// has references stored into it).
const OBJ_ON_CARD: [u8; NCARDS] = [0, 1];
const ROOT: u8 = 0;

const COLLECTOR: usize = 0;
const MUTATOR: usize = 1;

/// Protocol deletions for mutation testing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BarrierMutation {
    /// The faithful protocol.
    None,
    /// The write barrier stores the reference but never dirties the
    /// card: a reference stored into an already-scanned object is lost.
    SkipCardMark,
    /// Concurrent cleaning rescans registered cards without the §5.3
    /// handshake: the card indicator can be visible before the slot
    /// store it covers, so the rescan reads a stale slot.
    SkipHandshake,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ColState {
    pc: u8,
    /// 0 = concurrent trace, 1 = after concurrent cleaning, 2 = STW.
    phase: u8,
    cur_obj: u8,
    reg: u64,
    cursor: u8,
    worklist: Vec<u8>,
    registry: Vec<u8>,
    done: bool,
}

/// Full system state: weak memory (slots), marks/cards (sync), thread
/// machines.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BarrierState {
    mem: WeakMem,
    marks: [bool; NOBJ],
    cards: [bool; NCARDS],
    col: ColState,
    mut_pc: u8,
    mut_done: bool,
}

/// The kickoff / write-barrier / card-snapshot model.
#[derive(Copy, Clone, Debug)]
pub struct BarrierModel {
    /// The protocol change under test.
    pub mutation: BarrierMutation,
}

// Collector PCs.
const C_ROOT: u8 = 0;
const C_DRAIN: u8 = 1;
const C_LOAD: u8 = 2;
const C_PROCESS: u8 = 3;
const C_SNAPSHOT: u8 = 4;
const C_HANDSHAKE: u8 = 5;
const C_RESCAN: u8 = 6;
const C_STW: u8 = 8;
const C_STW_ROOTS: u8 = 9;
const C_STW_CARDS: u8 = 10;
const C_DONE: u8 = 11;

impl BarrierModel {
    fn ref_of(v: u64) -> Option<u8> {
        if v == 0 {
            None
        } else {
            Some((v - 1) as u8)
        }
    }

    fn step_collector(&self, s: &BarrierState) -> Vec<BarrierState> {
        let c = &s.col;
        let mut n = s.clone();
        match c.pc {
            C_ROOT => {
                // Kickoff: scan the root set (§2.1).
                n.marks[ROOT as usize] = true;
                n.col.worklist.push(ROOT);
                n.col.pc = C_DRAIN;
                vec![n]
            }
            C_DRAIN => {
                match n.col.worklist.pop() {
                    Some(obj) => {
                        n.col.cur_obj = obj;
                        n.col.pc = C_LOAD;
                    }
                    None => {
                        n.col.pc = match c.phase {
                            0 => C_SNAPSHOT,
                            1 => C_STW,
                            _ => C_DONE,
                        };
                    }
                }
                vec![n]
            }
            C_LOAD => {
                // The racy read: the collector sees shared memory only
                // (its own buffer is always empty).
                n.col.reg = s.mem.plain_load(COLLECTOR, c.cur_obj as usize);
                n.col.pc = C_PROCESS;
                vec![n]
            }
            C_PROCESS => {
                if let Some(child) = Self::ref_of(c.reg) {
                    if !n.marks[child as usize] {
                        n.marks[child as usize] = true;
                        n.col.worklist.push(child);
                    }
                }
                n.col.pc = C_DRAIN;
                vec![n]
            }
            C_SNAPSHOT => {
                // §5.3 step 1: snapshot-to-clean one card, register it.
                let cur = c.cursor as usize;
                if cur < NCARDS {
                    if s.cards[cur] {
                        n.cards[cur] = false;
                        n.col.registry.push(cur as u8);
                    }
                    n.col.cursor += 1;
                } else if c.registry.is_empty() {
                    n.col.phase = 1;
                    n.col.pc = C_DRAIN;
                } else {
                    n.col.pc = C_HANDSHAKE;
                }
                vec![n]
            }
            C_HANDSHAKE => {
                // §5.3 step 2: every mutator fences before the rescan.
                if self.mutation == BarrierMutation::SkipHandshake {
                    n.col.pc = C_RESCAN;
                    return vec![n];
                }
                if !s.mem.others_drained(COLLECTOR) {
                    return vec![]; // blocked; mutator flushes unblock it
                }
                n.col.pc = C_RESCAN;
                vec![n]
            }
            C_RESCAN => {
                // §5.3 step 3: queue the marked objects on registered
                // cards for rescanning.
                match n.col.registry.pop() {
                    Some(card) => {
                        let obj = OBJ_ON_CARD[card as usize];
                        if s.marks[obj as usize] {
                            n.col.worklist.push(obj);
                        }
                    }
                    None => {
                        n.col.phase = 1;
                        n.col.pc = C_DRAIN;
                    }
                }
                vec![n]
            }
            C_STW => {
                // The stop-the-world rendezvous: mutators are parked at a
                // safepoint with their store buffers drained.
                if !(s.mut_done && s.mem.others_drained(COLLECTOR)) {
                    return vec![]; // waits for the mutator to finish
                }
                n.col.pc = C_STW_ROOTS;
                vec![n]
            }
            C_STW_ROOTS => {
                // §2.2: rescan all roots.
                n.marks[ROOT as usize] = true;
                n.col.worklist.push(ROOT);
                n.col.cursor = 0;
                n.col.pc = C_STW_CARDS;
                vec![n]
            }
            C_STW_CARDS => {
                // §2.2 final card cleaning.
                let cur = c.cursor as usize;
                if cur < NCARDS {
                    if s.cards[cur] {
                        n.cards[cur] = false;
                        let obj = OBJ_ON_CARD[cur];
                        if s.marks[obj as usize] {
                            n.col.worklist.push(obj);
                        }
                    }
                    n.col.cursor += 1;
                } else {
                    n.col.phase = 2;
                    n.col.pc = C_DRAIN;
                }
                vec![n]
            }
            C_DONE => {
                n.col.done = true;
                vec![n]
            }
            _ => unreachable!("collector pc"),
        }
    }

    fn step_mutator(&self, s: &BarrierState) -> Vec<BarrierState> {
        let mut n = s.clone();
        match s.mut_pc {
            // write_ref(A, 0, B): slot store, then barrier card mark.
            0 => {
                n.mem.plain_store(MUTATOR, 0, 2); // slot[A] = B
                n.mut_pc = 1;
                vec![n]
            }
            1 => {
                if self.mutation != BarrierMutation::SkipCardMark {
                    n.cards[CARD_OF[0]] = true;
                }
                n.mut_pc = 2;
                vec![n]
            }
            // write_ref(B, 0, C)
            2 => {
                n.mem.plain_store(MUTATOR, 1, 3); // slot[B] = C
                n.mut_pc = 3;
                vec![n]
            }
            3 => {
                if self.mutation != BarrierMutation::SkipCardMark {
                    n.cards[CARD_OF[1]] = true;
                }
                n.mut_pc = 4;
                n.mut_done = true;
                vec![n]
            }
            _ => unreachable!("mutator pc"),
        }
    }
}

impl Model for BarrierModel {
    type State = BarrierState;

    fn initial(&self) -> BarrierState {
        BarrierState {
            mem: WeakMem::new(NOBJ, 2),
            marks: [false; NOBJ],
            cards: [false; NCARDS],
            col: ColState {
                pc: C_ROOT,
                phase: 0,
                cur_obj: 0,
                reg: 0,
                cursor: 0,
                worklist: Vec::new(),
                registry: Vec::new(),
                done: false,
            },
            mut_pc: 0,
            mut_done: false,
        }
    }

    fn successors(&self, s: &BarrierState) -> Vec<BarrierState> {
        let mut out = Vec::new();
        for mem in s.mem.flush_succs(MUTATOR) {
            let mut n = s.clone();
            n.mem = mem;
            out.push(n);
        }
        if !s.col.done {
            out.extend(self.step_collector(s));
        }
        if !s.mut_done {
            out.extend(self.step_mutator(s));
        }
        out
    }

    fn is_final(&self, s: &BarrierState) -> bool {
        s.col.done && s.mut_done && s.mem.all_drained()
    }

    fn invariant(&self, _s: &BarrierState) -> Result<(), String> {
        Ok(())
    }

    fn finale(&self, s: &BarrierState) -> Result<(), String> {
        // Ground truth: objects reachable from the root through shared
        // memory (all buffers drained in a final state).
        let mut reachable = [false; NOBJ];
        let mut stack = vec![ROOT];
        while let Some(obj) = stack.pop() {
            if reachable[obj as usize] {
                continue;
            }
            reachable[obj as usize] = true;
            if let Some(child) = Self::ref_of(s.mem.shared_load(obj as usize)) {
                stack.push(child);
            }
        }
        for (obj, &live) in reachable.iter().enumerate() {
            if live && !s.marks[obj] {
                return Err(format!(
                    "lost object: {obj} is reachable but unmarked after the cycle"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Outcome};

    fn run(mutation: BarrierMutation) -> Outcome {
        Explorer::default().run(&BarrierModel { mutation })
    }

    #[test]
    fn faithful_marking_never_loses_an_object() {
        let out = run(BarrierMutation::None);
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn skipping_the_card_mark_loses_an_object() {
        let out = run(BarrierMutation::SkipCardMark);
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("lost object"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn skipping_the_handshake_loses_an_object() {
        let out = run(BarrierMutation::SkipHandshake);
        match out {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("lost object"), "{message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
