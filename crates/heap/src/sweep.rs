//! Bitwise sweep (paper §2.2) — serial, parallel, and lazy (§7 future
//! work, implemented here as an extension).
//!
//! Sweep frees memory in time essentially proportional to the number of
//! live objects: it walks the mark bit vector, reads each marked object's
//! size from its header, and the runs of granules between live objects
//! become free extents.
//!
//! The heap is divided into fixed *sweep chunks* that can be swept
//! independently and in any order: a chunk's carry-in (a live object
//! spanning into it) is recovered by scanning the mark bitmap backwards
//! for the nearest preceding marked header ([`Bitmap::prev_set`]). This
//! makes the same chunk machinery serve the parallel stop-the-world sweep
//! (workers claim chunks from an atomic counter) and the lazy sweep
//! (mutators and background threads sweep chunks on demand after the
//! pause ends).
//!
//! [`Bitmap::prev_set`]: crate::bitmap::Bitmap::prev_set

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use mcgc_membar::sync::Mutex;
use mcgc_telemetry::{SpanKind, SpanRecorder};

use crate::freelist::Extent;
use crate::heap::Heap;
use crate::object::ObjectRef;

/// Default sweep chunk size in granules (512 KiB of heap).
pub const DEFAULT_CHUNK_GRANULES: usize = 64 << 10;

/// The result of sweeping one chunk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkSweep {
    /// Free extents found inside the chunk, address-ordered. Extents at
    /// the chunk edges stop at the chunk boundary; the free list coalesces
    /// them with neighbours from adjacent chunks.
    pub extents: Vec<Extent>,
    /// Granules occupied by live objects counted to this chunk (objects
    /// are counted where they start).
    pub live_granules: usize,
    /// Number of live objects starting in this chunk.
    pub live_objects: usize,
    /// Granules left as dark matter (runs below the configured minimum).
    pub dark_granules: usize,
}

/// Sweeps chunk `chunk` (of `chunk_granules`-sized chunks) of `heap`.
///
/// Walks marked headers within the chunk, clears allocation bits of dead
/// ranges, and returns the free extents. Does **not** touch the free
/// list; the caller decides whether to free incrementally (lazy) or
/// rebuild in bulk (stop-the-world).
pub fn sweep_chunk(heap: &Heap, chunk: usize, chunk_granules: usize) -> ChunkSweep {
    let heap_granules = heap.granules();
    // granule 0 is reserved; the sweepable region starts at 1
    let start = (chunk * chunk_granules).max(1);
    let end = ((chunk + 1) * chunk_granules).min(heap_granules);
    if start >= end {
        return ChunkSweep::default();
    }
    sweep_ranges(heap, &heap.mapped_ranges(start, end))
}

/// Sweeps the given committed granule ranges (address-ordered, each
/// entirely inside one run of committed segments). Free extents are
/// emitted per range, so they never span a hole left by a released
/// segment — neither do live objects, by the allocation invariant.
fn sweep_ranges(heap: &Heap, ranges: &[(usize, usize)]) -> ChunkSweep {
    let mut out = ChunkSweep::default();
    let marks = heap.mark_bits();
    let min_extent = heap.config().min_free_extent_granules;
    for &(rs, re) in ranges {
        // Carry-in: a live object starting before the range may span into
        // it (objects never span holes, so a carry-in found across a hole
        // boundary necessarily ends before `rs` and is ignored).
        let mut cursor = rs;
        if let Some(prev) = marks.prev_set(rs) {
            let h = heap.header(ObjectRef::from_granule(prev as u32));
            let obj_end = prev + h.size_granules as usize;
            if obj_end > rs {
                cursor = obj_end.min(re);
            }
        }
        while cursor < re {
            let next_mark = marks.next_set_before(cursor, re);
            let gap_end = next_mark.unwrap_or(re);
            if gap_end > cursor {
                // everything in [cursor, gap_end) is dead: clear alloc bits
                heap.alloc_bits().clear_range(cursor, gap_end);
                let len = gap_end - cursor;
                if len >= min_extent {
                    out.extents.push(Extent { start: cursor, len });
                } else {
                    out.dark_granules += len;
                }
            }
            match next_mark {
                Some(m) => {
                    let h = heap.header(ObjectRef::from_granule(m as u32));
                    debug_assert!(
                        heap.alloc_bits().get(m),
                        "marked granule {m} has no allocation bit"
                    );
                    out.live_objects += 1;
                    out.live_granules += h.size_granules as usize;
                    cursor = m + h.size_granules as usize;
                }
                None => break,
            }
        }
    }
    out
}

/// Number of sweep chunks for `heap` at the given chunk size.
pub fn chunk_count(heap: &Heap, chunk_granules: usize) -> usize {
    heap.granules().div_ceil(chunk_granules)
}

/// Aggregate statistics of a completed sweep.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Live granules (objects counted at their start chunk).
    pub live_granules: usize,
    /// Live object count.
    pub live_objects: usize,
    /// Granules returned to the free list.
    pub freed_granules: usize,
    /// Granules left dark.
    pub dark_granules: usize,
    /// Chunks swept.
    pub chunks: usize,
    /// Entirely-free segments released back to the segment table by this
    /// sweep (stop-the-world sweeps only; lazy sweeps never shrink).
    /// Their granules are counted in `freed_granules` but do not appear
    /// on the rebuilt free list.
    pub segments_released: usize,
}

impl SweepStats {
    fn absorb(&mut self, c: &ChunkSweep) {
        self.live_granules += c.live_granules;
        self.live_objects += c.live_objects;
        self.freed_granules += c.extents.iter().map(|e| e.len).sum::<usize>();
        self.dark_granules += c.dark_granules;
        self.chunks += 1;
    }
}

/// Sweeps the whole heap on the calling thread and rebuilds the free
/// list. All mutator caches must be retired (stop-the-world).
pub fn sweep_serial(heap: &Heap, chunk_granules: usize) -> SweepStats {
    let n = chunk_count(heap, chunk_granules);
    let mut stats = SweepStats::default();
    let mut all = Vec::new();
    for c in 0..n {
        let cs = sweep_chunk(heap, c, chunk_granules);
        stats.absorb(&cs);
        all.extend(cs.extents);
    }
    // Occupancy-driven shrink: a non-initial segment whose granules are
    // entirely free after the trough goes back to the segment table
    // instead of the free list.
    stats.segments_released = heap.release_empty_segments(&mut all);
    heap.free_list().rebuild(all);
    heap.set_dark_granules(stats.dark_granules as u64);
    heap.note_eager_sweep_granules(stats.freed_granules as u64);
    stats
}

/// A parallel sweep decoupled from thread management: any set of
/// already-running workers (the scheduler's pool, a `thread::scope`,
/// tests) claims chunks via [`ParallelSweep::worker`]; one thread then
/// calls [`ParallelSweep::finish`] to rebuild the free list.
///
/// Results are sorted by chunk index before the rebuild, so the final
/// free list is identical regardless of how many workers ran or how the
/// chunks interleaved — serial and parallel sweeps are byte-for-byte
/// equivalent.
#[derive(Debug)]
pub struct ParallelSweep {
    chunk_granules: usize,
    total: usize,
    next: AtomicUsize,
    results: Mutex<Vec<(usize, ChunkSweep)>>,
    recorder: Option<Arc<SpanRecorder>>,
}

impl ParallelSweep {
    /// Plans a sweep of the whole heap. All mutator caches must already
    /// be retired (stop-the-world).
    pub fn new(heap: &Heap, chunk_granules: usize) -> ParallelSweep {
        let total = chunk_count(heap, chunk_granules);
        ParallelSweep {
            chunk_granules,
            total,
            next: AtomicUsize::new(0),
            results: Mutex::new(Vec::with_capacity(total)),
            recorder: None,
        }
    }

    /// Attaches a flight recorder: each chunk claim is recorded as a
    /// `sweep.chunk` span on the claiming worker's track.
    pub fn with_recorder(mut self, rec: Arc<SpanRecorder>) -> ParallelSweep {
        self.recorder = Some(rec);
        self
    }

    /// Claims and sweeps chunks until none remain; call from each
    /// worker. Returns the number of chunks this call swept.
    pub fn worker(&self, heap: &Heap) -> u64 {
        let rec = self.recorder.as_deref().filter(|r| r.is_enabled());
        let mut mine = Vec::new();
        loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            if c >= self.total {
                break;
            }
            let _span = rec.map(|r| r.span(SpanKind::SweepChunk, c as u64));
            mine.push((c, sweep_chunk(heap, c, self.chunk_granules)));
        }
        let swept = mine.len() as u64;
        if swept > 0 {
            self.results.lock().extend(mine);
        }
        swept
    }

    /// Rebuilds the free list from the swept chunks (address order) and
    /// returns the aggregate stats. Call once, after every worker has
    /// returned.
    pub fn finish(self, heap: &Heap) -> SweepStats {
        let mut ordered = self.results.into_inner();
        // Unconditional: finishing with unswept chunks would silently
        // rebuild a partial free list (losing memory, or handing out
        // unswept extents). Runs once per pause — free next to the sort
        // and rebuild below.
        assert_eq!(ordered.len(), self.total, "finish before all workers done");
        ordered.sort_unstable_by_key(|(c, _)| *c);
        let mut stats = SweepStats::default();
        let mut all = Vec::new();
        for (_, cs) in &ordered {
            stats.absorb(cs);
            all.extend(cs.extents.iter().copied());
        }
        // Shrink while the world is stopped and every cache is retired —
        // the only context where "segment entirely free" is stable.
        stats.segments_released = heap.release_empty_segments(&mut all);
        heap.free_list().rebuild(all);
        heap.set_dark_granules(stats.dark_granules as u64);
        heap.note_eager_sweep_granules(stats.freed_granules as u64);
        stats
    }
}

/// Sweeps the whole heap with `workers` freshly spawned threads claiming
/// chunks from a shared counter, then rebuilds the free list. All
/// mutator caches must be retired (stop-the-world).
///
/// Convenience wrapper over [`ParallelSweep`] for tests and benches; the
/// collector's pause drives `ParallelSweep` as a scheduler work bucket
/// instead, keeping thread creation off the pause path.
pub fn sweep_parallel(heap: &Heap, chunk_granules: usize, workers: usize) -> SweepStats {
    let ps = ParallelSweep::new(heap, chunk_granules);
    std::thread::scope(|s| {
        for _ in 1..workers.max(1) {
            s.spawn(|| ps.worker(heap));
        }
        ps.worker(heap);
    });
    ps.finish(heap)
}

/// Which path claimed a lazily swept chunk. Selects the flight-recorder
/// span kind and which of the heap's cumulative sweep counters the chunk
/// and its reclaimed granules are charged to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SweepSource {
    /// An allocation-cache refill that found the free list unable to
    /// satisfy it (sweep-on-refill): the allocator that needs the memory
    /// pays for its reclamation.
    Refill,
    /// The background sweeper soaking idle cycles between tracing
    /// increments.
    Background,
    /// The next cycle's pre-pause straggler fence finishing whatever the
    /// refill and background paths left behind.
    Straggler,
    /// The mutator escalation ladder (or a test) helping directly.
    Escalation,
}

impl SweepSource {
    fn span_kind(self) -> SpanKind {
        match self {
            SweepSource::Refill => SpanKind::RefillSweepChunk,
            SweepSource::Background => SpanKind::BgSweepChunk,
            SweepSource::Straggler | SweepSource::Escalation => SpanKind::LazySweepChunk,
        }
    }
}

/// Per-chunk lifecycle within a sweep epoch. A chunk moves
/// `UNSWEPT → CLAIMED → SWEPT`, never backwards; the CAS from `UNSWEPT`
/// to `CLAIMED` is the claim, so each chunk is swept exactly once no
/// matter how many paths race for it.
const CHUNK_UNSWEPT: u8 = 0;
const CHUNK_CLAIMED: u8 = 1;
const CHUNK_SWEPT: u8 = 2;

/// State of an in-progress *sweep epoch*: a snapshot of the mapped
/// segment ranges published at pause end, whose chunks are claimed and
/// swept off-pause — by allocation-cache refills that find the free list
/// empty, by the background sweeper, by the escalation ladder, and
/// finally by the next cycle's straggler fence.
///
/// The next collection cycle must not start until [`LazySweep::is_done`];
/// mark bits are still load-bearing for unswept chunks.
#[derive(Debug)]
pub struct LazySweep {
    chunk_granules: usize,
    /// Scan cursor: a hint for the next unclaimed chunk. Claimers loop
    /// `fetch_add`, skipping chunks whose claim CAS loses.
    next: AtomicUsize,
    done: AtomicUsize,
    total: usize,
    /// Per-chunk `CHUNK_*` lifecycle state. Distinguishes swept from
    /// merely claimed chunks so segment release and the verifier can
    /// reason about partially swept epochs.
    state: Box<[AtomicU8]>,
    /// Committed granule ranges at plan time. A segment the grow rung
    /// commits *during* the lazy sweep has its space put straight on the
    /// free list (its bitmaps are clear — nothing to sweep); sweeping it
    /// here too would double-free it, so chunks only sweep the snapshot.
    /// The converse race cannot happen: segment release skips any segment
    /// this epoch has not fully swept ([`LazySweep::range_fully_swept`]),
    /// and everything else only shrinks under a stop-the-world pause.
    mapped: Vec<(usize, usize)>,
    /// Unmarked granules in the mapped snapshot — the epoch's expected
    /// total yield. Deferred: see [`LazySweep::expected_dead`].
    expected_dead: OnceLock<usize>,
    /// Granules actually freed by completed chunks so far.
    freed: AtomicUsize,
    recorder: Option<Arc<SpanRecorder>>,
}

impl LazySweep {
    /// Plans a lazy sweep of the whole heap, **clearing the free list**:
    /// all free space (including extents known before the collection) is
    /// rediscovered chunk by chunk, so allocation gradually recovers as
    /// chunks are swept.
    pub fn new(heap: &Heap, chunk_granules: usize) -> LazySweep {
        heap.free_list().rebuild(std::iter::empty());
        let total = chunk_count(heap, chunk_granules);
        let mapped = heap.mapped_ranges(1, heap.granules());
        LazySweep {
            chunk_granules,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            total,
            state: (0..total).map(|_| AtomicU8::new(CHUNK_UNSWEPT)).collect(),
            mapped,
            expected_dead: OnceLock::new(),
            freed: AtomicUsize::new(0),
            recorder: None,
        }
    }

    /// The epoch's expected total yield: unmarked granules in the mapped
    /// snapshot. Computed on first use — *off the pause* (the first
    /// kickoff-headroom check on the allocation slow path), because a
    /// popcount over the whole mark bitmap costs real pause time while
    /// the install itself needs none of it. Mark bits are stable from
    /// install to retire (sweeping only reads them), so the deferred scan
    /// sees exactly the plan-time bitmap. Over actual yield because live
    /// objects mark only their head granule and dark matter (sub-minimum
    /// tail fragments) never hits the free list; `pending_granules`
    /// clamps with the per-chunk bound.
    fn expected_dead(&self, heap: &Heap) -> usize {
        *self.expected_dead.get_or_init(|| {
            self.mapped
                .iter()
                .map(|&(s, e)| (e - s) - heap.mark_bits().count_range(s, e))
                .sum()
        })
    }

    /// Attaches a flight recorder: each lazily swept chunk is recorded
    /// on the sweeping thread's track, with the span kind naming which
    /// path paid for it (`sweep.lazy_chunk`, `sweep.refill_chunk`, or
    /// `sweep.bg_chunk`).
    pub fn with_recorder(mut self, rec: Arc<SpanRecorder>) -> LazySweep {
        self.recorder = Some(rec);
        self
    }

    /// Claims and sweeps one chunk, freeing its extents to the heap's
    /// free list. Returns the chunk's stats, or `None` if all chunks are
    /// claimed. Equivalent to [`LazySweep::sweep_one_from`] with
    /// [`SweepSource::Escalation`].
    pub fn sweep_one(&self, heap: &Heap) -> Option<ChunkSweep> {
        self.sweep_one_from(heap, SweepSource::Escalation)
    }

    /// Claims and sweeps one chunk on behalf of `source`, freeing its
    /// extents to the heap's free list and charging the heap's cumulative
    /// sweep counters. Returns `None` once every chunk is claimed (some
    /// may still be in flight on other threads — see
    /// [`LazySweep::is_done`]).
    pub fn sweep_one_from(&self, heap: &Heap, source: SweepSource) -> Option<ChunkSweep> {
        loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            if c >= self.total {
                return None;
            }
            // The cursor is only a hint: a targeted claim may have taken
            // this chunk already, in which case the CAS loses and the
            // cursor moves on.
            if self.claim(c) {
                return Some(self.sweep_claimed(heap, c, source));
            }
        }
    }

    /// CAS-claims chunk `c` for the caller. // MODEL: shard_model — the
    /// claim CAS is the only mutual exclusion; orderings beyond the RMW
    /// itself are not needed because the mark bits a sweeper reads were
    /// published by the pause that installed this plan.
    fn claim(&self, c: usize) -> bool {
        self.state[c]
            .compare_exchange(
                CHUNK_UNSWEPT,
                CHUNK_CLAIMED,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Sweeps an already-claimed chunk, publishes its state, frees its
    /// extents, and counts it done.
    fn sweep_claimed(&self, heap: &Heap, c: usize, source: SweepSource) -> ChunkSweep {
        let _span = self
            .recorder
            .as_deref()
            .filter(|r| r.is_enabled())
            .map(|r| r.span(source.span_kind(), c as u64));
        // Clip the chunk to the plan-time committed ranges (see `mapped`).
        let start = c * self.chunk_granules;
        let end = (c + 1) * self.chunk_granules;
        let ranges: Vec<(usize, usize)> = self
            .mapped
            .iter()
            .filter_map(|&(rs, re)| {
                let s = rs.max(start);
                let e = re.min(end);
                (s < e).then_some((s, e))
            })
            .collect();
        let cs = sweep_ranges(heap, &ranges);
        // SWEPT is published *before* the extents hit the free list so a
        // concurrent free-list audit never sees an extent inside a chunk
        // it still considers unswept (the converse — swept but extents in
        // flight — only makes segment release more conservative).
        self.state[c].store(CHUNK_SWEPT, Ordering::Release);
        for e in &cs.extents {
            heap.free_list().free(e.start, e.len);
        }
        let freed: usize = cs.extents.iter().map(|e| e.len).sum();
        self.freed.fetch_add(freed, Ordering::Relaxed);
        heap.note_lazy_chunk(source, freed as u64);
        // Release so the thread that observes `is_done` and retires the
        // plan (clearing mark bits) is ordered after every chunk's sweep.
        self.done.fetch_add(1, Ordering::Release);
        cs
    }

    /// True once every chunk has been swept (claimed *and* completed).
    pub fn is_done(&self) -> bool {
        // Acquire pairs with the Release `done` increment in
        // `sweep_claimed`: retiring the plan (which clears mark bits) is
        // ordered after the last chunk's bitmap writes.
        self.done.load(Ordering::Acquire) >= self.total
    }

    /// Fraction of chunks completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done.load(Ordering::Relaxed) as f64 / self.total as f64
        }
    }

    /// Total chunks in the plan.
    pub fn total_chunks(&self) -> usize {
        self.total
    }

    /// Chunks not yet completed (claimed-but-in-flight chunks count as
    /// remaining).
    pub fn remaining_chunks(&self) -> usize {
        self.total.saturating_sub(self.done.load(Ordering::Relaxed))
    }

    /// Granules still locked up in unswept chunks: the epoch's expected
    /// yield (unmarked granules at plan time) minus what completed chunks
    /// already freed, clamped by the unswept-chunk capacity. The epoch
    /// cleared the free list at install, so until a chunk is swept its
    /// dead space is invisible to `free_bytes()` — kickoff pacing adds
    /// this back as pending headroom, otherwise the post-pause heap looks
    /// full and the next cycle starts (and fences the whole epoch) before
    /// refill/background sweeping can drain it. Counting only *dead*
    /// granules matters in the other direction too: treating live data in
    /// unswept chunks as headroom would delay kickoff past the point
    /// where allocation fails and forces the pause early.
    pub fn pending_granules(&self, heap: &Heap) -> usize {
        let cap = self.remaining_chunks() * self.chunk_granules;
        if cap == 0 {
            return 0;
        }
        self.expected_dead(heap)
            .saturating_sub(self.freed.load(Ordering::Relaxed))
            .min(cap)
    }

    /// True when every chunk overlapping granules `[lo, hi)` *within the
    /// plan-time mapped snapshot* has completed its sweep. Ranges outside
    /// the snapshot (segments grown after the pause, or holes at plan
    /// time) are vacuously swept — the epoch will never touch them.
    ///
    /// This is the segment-release guard: a segment is only "empty" once
    /// its chunks are swept, because until then its dead granules are
    /// invisible to the free list and the segment would be released with
    /// its extents later double-freed into a hole.
    pub fn range_fully_swept(&self, lo: usize, hi: usize) -> bool {
        if self.total == 0 || lo >= hi {
            return true;
        }
        let first = lo / self.chunk_granules;
        let last = ((hi - 1) / self.chunk_granules).min(self.total - 1);
        for c in first..=last {
            let cs = (c * self.chunk_granules).max(lo);
            let ce = ((c + 1) * self.chunk_granules).min(hi);
            let in_snapshot = self.mapped.iter().any(|&(rs, re)| rs.max(cs) < re.min(ce));
            if in_snapshot && self.state[c].load(Ordering::Acquire) != CHUNK_SWEPT {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{AllocCache, HeapConfig, ObjectShape};
    use crate::object::GRANULE_BYTES;

    fn build_heap() -> (Heap, Vec<ObjectRef>) {
        let heap = Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            cache_bytes: 8 << 10,
            large_object_bytes: 4 << 10,
            min_free_extent_granules: 2,
            alloc_shards: 4,
            ..HeapConfig::default()
        });
        let mut cache = AllocCache::new();
        let mut objs = Vec::new();
        for i in 0..2000u32 {
            let shape = ObjectShape::new(i % 4, i % 7, 1);
            let obj = loop {
                match heap.alloc_small(&mut cache, shape) {
                    Some(o) => break o,
                    None => assert!(heap.refill_cache(&mut cache, shape.granules())),
                }
            };
            objs.push(obj);
        }
        heap.retire_cache(&mut cache);
        (heap, objs)
    }

    fn free_total(heap: &Heap) -> usize {
        heap.free_bytes() / GRANULE_BYTES
    }

    #[test]
    fn sweep_none_marked_frees_everything() {
        let (heap, _) = build_heap();
        let stats = sweep_serial(&heap, 1 << 10);
        assert_eq!(stats.live_objects, 0);
        assert_eq!(
            stats.freed_granules + stats.dark_granules,
            heap.granules() - 1
        );
        assert_eq!(free_total(&heap), stats.freed_granules);
        assert_eq!(heap.alloc_bits().count(), 0, "all allocation bits cleared");
    }

    #[test]
    fn sweep_all_marked_frees_only_gaps() {
        let (heap, objs) = build_heap();
        for &o in &objs {
            heap.mark(o);
        }
        let live: usize = objs
            .iter()
            .map(|&o| heap.header(o).size_granules as usize)
            .sum();
        let stats = sweep_serial(&heap, 1 << 10);
        assert_eq!(stats.live_objects, objs.len());
        assert_eq!(stats.live_granules, live);
        for &o in &objs {
            assert!(heap.is_published(o), "live object keeps its alloc bit");
        }
    }

    #[test]
    fn sweep_partial_keeps_marked_only() {
        let (heap, objs) = build_heap();
        for (i, &o) in objs.iter().enumerate() {
            if i % 3 == 0 {
                heap.mark(o);
            }
        }
        let stats = sweep_serial(&heap, 1 << 10);
        assert_eq!(stats.live_objects, objs.len().div_ceil(3));
        for (i, &o) in objs.iter().enumerate() {
            assert_eq!(heap.is_published(o), i % 3 == 0, "object {i}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (heap_a, objs_a) = build_heap();
        let (heap_b, objs_b) = build_heap();
        assert_eq!(objs_a, objs_b, "deterministic build");
        for (i, (&a, &b)) in objs_a.iter().zip(&objs_b).enumerate() {
            if i % 5 < 2 {
                heap_a.mark(a);
                heap_b.mark(b);
            }
        }
        let sa = sweep_serial(&heap_a, 1 << 10);
        let sb = sweep_parallel(&heap_b, 1 << 10, 4);
        assert_eq!(sa.live_objects, sb.live_objects);
        assert_eq!(sa.live_granules, sb.live_granules);
        assert_eq!(sa.freed_granules, sb.freed_granules);
        assert_eq!(sa.dark_granules, sb.dark_granules);
        let ea = heap_a.free_list().extents_sorted();
        let eb = heap_b.free_list().extents_sorted();
        assert_eq!(ea, eb, "identical free lists");
    }

    #[test]
    fn object_spanning_chunks_is_preserved() {
        let heap = Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            cache_bytes: 8 << 10,
            large_object_bytes: 256,
            min_free_extent_granules: 2,
            alloc_shards: 4,
            ..HeapConfig::default()
        });
        // Large object spanning several 1 KiB-granule chunks.
        let big = heap.alloc_large(ObjectShape::new(0, 5000, 2)).unwrap();
        heap.mark(big);
        let chunk = 1 << 10;
        let stats = sweep_serial(&heap, chunk);
        assert_eq!(stats.live_objects, 1);
        assert_eq!(stats.live_granules, 5001);
        assert!(heap.is_published(big));
        // The spanned interior chunks must not be freed.
        assert_eq!(
            free_total(&heap),
            heap.granules() - 1 - 5001 - stats.dark_granules
        );
    }

    #[test]
    fn lazy_sweep_converges_to_same_free_space() {
        let (heap_a, objs_a) = build_heap();
        let (heap_b, objs_b) = build_heap();
        for (i, (&a, &b)) in objs_a.iter().zip(&objs_b).enumerate() {
            if i % 2 == 0 {
                heap_a.mark(a);
                heap_b.mark(b);
            }
        }
        let eager = sweep_serial(&heap_a, 1 << 10);
        let lazy = LazySweep::new(&heap_b, 1 << 10);
        assert!(!lazy.is_done());
        let mut stats = SweepStats::default();
        while let Some(cs) = lazy.sweep_one(&heap_b) {
            stats.absorb(&cs);
        }
        assert!(lazy.is_done());
        assert!((lazy.progress() - 1.0).abs() < f64::EPSILON);
        assert_eq!(stats.live_objects, eager.live_objects);
        assert_eq!(free_total(&heap_a), free_total(&heap_b));
    }

    #[test]
    fn mixed_source_lazy_sweep_is_bit_identical_to_eager() {
        // The differential contract behind the sweep-epoch design: no
        // matter which paths drain the epoch (sweep-on-refill, the
        // background sweeper, the straggler fence, escalation rungs),
        // the reclaimed free space is *bit-identical* to an eager
        // in-pause sweep — same totals, same granule set, same dark
        // matter. Extent *boundaries* are allowed to differ until the
        // next rebuild: incremental per-chunk frees land in shard bins
        // uncoalesced (coalescing is deferred to the STW rebuild by the
        // allocator's design), so a dead run straddling a chunk boundary
        // is two extents until then.
        let (heap_a, objs_a) = build_heap();
        let (heap_b, objs_b) = build_heap();
        assert_eq!(objs_a, objs_b, "deterministic build");
        for (i, (&a, &b)) in objs_a.iter().zip(&objs_b).enumerate() {
            if i % 7 < 3 {
                heap_a.mark(a);
                heap_b.mark(b);
            }
        }
        let eager = sweep_serial(&heap_a, 1 << 10);
        let lazy = LazySweep::new(&heap_b, 1 << 10);
        let sources = [
            SweepSource::Refill,
            SweepSource::Background,
            SweepSource::Straggler,
            SweepSource::Escalation,
        ];
        let mut stats = SweepStats::default();
        let mut turn = 0usize;
        while let Some(cs) = lazy.sweep_one_from(&heap_b, sources[turn % sources.len()]) {
            stats.absorb(&cs);
            turn += 1;
        }
        assert!(lazy.is_done());
        assert_eq!(stats.live_objects, eager.live_objects);
        assert_eq!(stats.live_granules, eager.live_granules);
        assert_eq!(stats.freed_granules, eager.freed_granules);
        assert_eq!(stats.dark_granules, eager.dark_granules);
        assert_eq!(free_total(&heap_a), free_total(&heap_b));
        // Run the coalescing rebuild the next stop-the-world performs
        // anyway; after it the extent lists must be bit-identical.
        let eb = heap_b.free_list().extents_sorted();
        heap_b.free_list().rebuild(eb);
        assert_eq!(
            heap_a.free_list().extents_sorted(),
            heap_b.free_list().extents_sorted(),
            "identical free lists regardless of sweep path"
        );
        // And every path's chunk count landed in the heap's accounting.
        let sc = heap_b.sweep_counters();
        assert!(sc.refill_chunks > 0);
        assert!(sc.bg_chunks > 0);
        assert!(sc.straggler_chunks > 0);
        assert!(sc.escalation_chunks > 0);
        assert_eq!(
            sc.on_pause_granules + sc.off_pause_granules,
            eager.freed_granules as u64,
            "on/off-pause split partitions the reclaimed granules"
        );
    }

    fn growable_heap() -> Heap {
        Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            max_heap_bytes: 2 << 20,
            cache_bytes: 8 << 10,
            large_object_bytes: 4 << 10,
            min_free_extent_granules: 2,
            alloc_shards: 4,
            segment_bytes: 0,
        })
    }

    #[test]
    fn sweep_releases_empty_grown_segments() {
        let heap = growable_heap();
        assert!(heap.try_grow());
        assert!(heap.try_grow());
        let sg = heap.segment_granules();
        let initial = heap.segment_stats().initial;
        // Nothing is marked, so the grown segments are entirely dead and
        // the sweep must hand them back to the segment table.
        let stats = sweep_serial(&heap, 1 << 10);
        assert_eq!(stats.segments_released, 2);
        assert_eq!(heap.segment_stats().committed, initial);
        assert_eq!(heap.segment_stats().shrinks, 2);
        // The free list holds only initial-segment space.
        assert_eq!(
            free_total(&heap) + stats.dark_granules,
            initial * sg - 1,
            "released segments left the free list"
        );
    }

    #[test]
    fn lazy_sweep_ignores_segments_grown_mid_sweep() {
        let heap = growable_heap();
        let sg = heap.segment_granules();
        let plan_granules = heap.granules();
        let lazy = LazySweep::new(&heap, 1 << 10);
        lazy.sweep_one(&heap).unwrap();
        // A grow rung fires mid-sweep: its space goes straight to the
        // free list and must NOT be swept (double-freed) by the plan.
        assert!(heap.try_grow());
        while lazy.sweep_one(&heap).is_some() {}
        assert!(lazy.is_done());
        assert_eq!(
            free_total(&heap),
            (plan_granules - 1) + sg,
            "plan-time space swept once, grown segment added once"
        );
    }

    #[test]
    fn release_skips_segments_unswept_in_flight_epoch() {
        let heap = growable_heap();
        assert!(heap.try_grow());
        let sg = heap.segment_granules();
        let initial = heap.segment_stats().initial;
        let plan = Arc::new(LazySweep::new(&heap, 1 << 10));
        heap.install_lazy_plan(Arc::clone(&plan));
        // Forge full free-list coverage of the grown (still unswept)
        // segment: without the epoch guard, release would hand the
        // segment back while its chunks still owe a sweep.
        let base = initial * sg;
        heap.free_list().set_extents_unchecked(vec![Extent {
            start: base,
            len: sg,
        }]);
        assert_eq!(
            heap.release_empty_free_segments(),
            0,
            "a segment is only empty once its chunks are swept"
        );
        // The forged extents are exactly what the epoch-aware free-list
        // audit exists to catch.
        let v = crate::verify::verify(&heap, false);
        assert!(
            v.iter()
                .any(|x| matches!(x, crate::verify::Violation::FreeListUnswept { .. })),
            "audit flags extents inside unswept chunks: {v:?}"
        );
        // Drain the epoch; the segment's space is now genuinely free.
        heap.free_list().rebuild(std::iter::empty());
        while plan.sweep_one(&heap).is_some() {}
        assert!(plan.is_done());
        assert!(heap.take_lazy_plan_if_done().is_some());
        assert_eq!(heap.release_empty_free_segments(), 1);
        assert_eq!(heap.segment_stats().committed, initial);
    }

    #[test]
    fn grow_then_release_during_in_flight_epoch() {
        let heap = growable_heap();
        let sg = heap.segment_granules();
        let initial = heap.segment_stats().initial;
        let plan_granules = heap.granules();
        let plan = Arc::new(LazySweep::new(&heap, 1 << 10));
        heap.install_lazy_plan(Arc::clone(&plan));
        // A grow rung fires mid-epoch: the fresh segment is outside the
        // snapshot, its space goes straight to the free list.
        assert!(heap.try_grow());
        // Mid-epoch release may take the never-snapshotted segment (it
        // is vacuously swept) without disturbing the in-flight epoch.
        assert_eq!(heap.release_empty_free_segments(), 1);
        assert_eq!(heap.segment_stats().committed, initial);
        // The epoch still drains to the same total as if nothing grew.
        while plan.sweep_one(&heap).is_some() {}
        assert!(plan.is_done());
        assert!(heap.take_lazy_plan_if_done().is_some());
        assert_eq!(free_total(&heap), plan_granules - 1);
        assert!(plan.range_fully_swept(1, sg * initial));
    }

    #[test]
    fn refill_self_serves_during_epoch() {
        let (heap, objs) = build_heap();
        for (i, &o) in objs.iter().enumerate() {
            if i % 2 == 0 {
                heap.mark(o);
            }
        }
        let plan = Arc::new(LazySweep::new(&heap, 1 << 10));
        heap.install_lazy_plan(Arc::clone(&plan));
        // The free list is empty; the only memory is inside unswept
        // chunks, and refill must claim and sweep them itself.
        let mut cache = AllocCache::new();
        assert!(
            heap.refill_cache(&mut cache, 4),
            "sweep-on-refill recovers memory from the epoch"
        );
        assert!(heap.sweep_counters().refill_chunks >= 1);
        assert!(heap.sweep_counters().off_pause_granules >= 1);
        heap.retire_cache(&mut cache);
    }

    #[test]
    fn sweep_then_reallocate_roundtrip() {
        let (heap, objs) = build_heap();
        for (i, &o) in objs.iter().enumerate() {
            if i % 10 == 0 {
                heap.mark(o);
            }
        }
        sweep_serial(&heap, DEFAULT_CHUNK_GRANULES);
        // Allocation proceeds into the recovered space.
        let mut cache = AllocCache::new();
        let mut count = 0;
        loop {
            match heap.alloc_small(&mut cache, ObjectShape::new(1, 2, 0)) {
                Some(_) => count += 1,
                None => {
                    if !heap.refill_cache(&mut cache, 4) {
                        break;
                    }
                }
            }
        }
        assert!(count > 10_000, "recovered space is allocatable: {count}");
    }
}
