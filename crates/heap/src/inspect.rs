//! Heap occupancy inspector: a consistent, cheap summary of where the
//! heap's memory is — per-shard and per-size-class free space, external
//! fragmentation, card-table state — intended to be snapshotted at cycle
//! boundaries and fed to the flight recorder as counter tracks.
//!
//! Everything here reads the same lock-free counters and briefly-held
//! shard locks the allocator itself uses; an inspection is safe to take
//! at any time, though the per-shard numbers are only mutually consistent
//! when taken inside a pause (which is where the collector takes them).

use mcgc_telemetry::SpanRecorder;

use crate::heap::{Heap, SegmentStats};
use crate::object::GRANULE_BYTES;
use crate::shards::{BinOccupancy, NUM_CLASSES};

/// A point-in-time summary of heap occupancy and fragmentation.
#[derive(Clone, Debug, PartialEq)]
pub struct HeapInspection {
    /// Committed heap size in bytes (released segments excluded).
    pub total_bytes: usize,
    /// Bytes on the free list (shards + wilderness).
    pub free_bytes: usize,
    /// Bytes lost to dark matter (runs below the minimum extent size).
    pub dark_bytes: usize,
    /// `1 - free/total`, the collector's kickoff input.
    pub occupancy: f64,
    /// Number of free extents across all shards and the wilderness.
    pub free_extents: usize,
    /// Largest single free extent in bytes.
    pub largest_free_bytes: usize,
    /// `1 - largest_free/free`: 0 when all free space is one extent,
    /// approaching 1 as free space shatters. 0 when nothing is free.
    pub external_fragmentation: f64,
    /// Free space held by each allocation shard.
    pub shards: Vec<BinOccupancy>,
    /// Free space held by the wilderness (next-fit tail) list.
    pub wilderness: BinOccupancy,
    /// Shard + wilderness extents bucketed by size class
    /// (`floor(log2(len))`, capped at [`NUM_CLASSES`] - 1).
    pub classes: [BinOccupancy; NUM_CLASSES],
    /// Total cards in the card table.
    pub cards_total: usize,
    /// Cards currently dirty.
    pub cards_dirty: usize,
    /// Cumulative dirtying stores (writes that found the card clean).
    pub dirty_stores: u64,
    /// Cumulative bytes allocated since heap creation.
    pub bytes_allocated: u64,
    /// Cumulative objects allocated since heap creation.
    pub objects_allocated: u64,
    /// Segment-table snapshot: committed/peak/max counts and cumulative
    /// grow/shrink events.
    pub segments: SegmentStats,
    /// Bitmask of committed segments (bit `i` = segment `i`; first 64).
    pub segment_map: u64,
    /// Chunks of the active sweep epoch not yet swept (0 when no epoch
    /// is in flight): memory the heap owns but the free list cannot see
    /// yet.
    pub lazy_unswept_chunks: usize,
    /// Cumulative sweep accounting: per-path chunk counts and the
    /// on-/off-pause reclaimed-granule split.
    pub sweep: crate::heap::SweepCounters,
}

/// Takes an occupancy snapshot of `heap`. See the module docs for the
/// consistency caveat outside pauses.
pub fn inspect(heap: &Heap) -> HeapInspection {
    let fl = heap.free_list();
    let total_bytes = heap.total_bytes();
    let free_bytes = heap.free_bytes();
    let largest_free_bytes = heap.largest_free_bytes();
    let external_fragmentation = if free_bytes == 0 {
        0.0
    } else {
        1.0 - largest_free_bytes as f64 / free_bytes as f64
    };
    let cards = heap.cards();
    HeapInspection {
        total_bytes,
        free_bytes,
        dark_bytes: heap.dark_bytes(),
        occupancy: heap.occupancy(),
        free_extents: heap.free_extent_count(),
        largest_free_bytes,
        external_fragmentation,
        shards: fl.shard_occupancy(),
        wilderness: fl.wilderness_occupancy(),
        classes: fl.class_occupancy(),
        cards_total: cards.len(),
        cards_dirty: cards.count_dirty(),
        dirty_stores: cards.dirty_store_count(),
        bytes_allocated: heap.bytes_allocated(),
        objects_allocated: heap.objects_allocated(),
        segments: heap.segment_stats(),
        segment_map: heap.segment_map(),
        lazy_unswept_chunks: heap.lazy_plan().map_or(0, |p| p.remaining_chunks()),
        sweep: heap.sweep_counters(),
    }
}

impl HeapInspection {
    /// Emits this inspection into `rec` as counter points (Perfetto
    /// counter tracks), timestamped now. Names carry the `heap_` prefix
    /// so trace counters line up with the registry's gauge names.
    pub fn record_counters(&self, rec: &SpanRecorder) {
        rec.record_counter("heap_occupancy", self.occupancy);
        rec.record_counter("heap_free_bytes", self.free_bytes as f64);
        rec.record_counter("heap_largest_free_bytes", self.largest_free_bytes as f64);
        rec.record_counter("heap_external_fragmentation", self.external_fragmentation);
        rec.record_counter("heap_free_extents", self.free_extents as f64);
        rec.record_counter("heap_dark_bytes", self.dark_bytes as f64);
        rec.record_counter("heap_cards_dirty", self.cards_dirty as f64);
        rec.record_counter("heap_segments_committed", self.segments.committed as f64);
        rec.record_counter("heap_segments_peak", self.segments.peak as f64);
        rec.record_counter("heap_segment_grows", self.segments.grows as f64);
        rec.record_counter("heap_segment_shrinks", self.segments.shrinks as f64);
        rec.record_counter("heap_lazy_unswept_chunks", self.lazy_unswept_chunks as f64);
    }

    /// A human-readable multi-line rendering (for `gc_top` and the
    /// `gc_trace` postmortem report).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mib = |b: usize| b as f64 / (1 << 20) as f64;
        let _ = writeln!(
            out,
            "heap {:.1} MiB, {:.1} MiB free ({:.1}% occupied), {:.1} MiB dark",
            mib(self.total_bytes),
            mib(self.free_bytes),
            self.occupancy * 100.0,
            mib(self.dark_bytes),
        );
        let _ = writeln!(
            out,
            "free extents: {} (largest {:.1} MiB, external fragmentation {:.1}%)",
            self.free_extents,
            mib(self.largest_free_bytes),
            self.external_fragmentation * 100.0,
        );
        let _ = writeln!(
            out,
            "cards: {} dirty / {} ({} dirtying stores)",
            self.cards_dirty, self.cards_total, self.dirty_stores,
        );
        let _ = writeln!(
            out,
            "segments: {} committed / {} max ({:.1} MiB each, peak {}, {} grows, {} shrinks)",
            self.segments.committed,
            self.segments.max,
            mib(self.segments.seg_bytes),
            self.segments.peak,
            self.segments.grows,
            self.segments.shrinks,
        );
        let _ = writeln!(
            out,
            "sweep: {} unswept chunks; reclaimed {:.1} MiB on-pause / {:.1} MiB off-pause \
             (refill {} chunks, background {}, straggler {}, escalation {})",
            self.lazy_unswept_chunks,
            mib(self.sweep.on_pause_granules as usize * GRANULE_BYTES),
            mib(self.sweep.off_pause_granules as usize * GRANULE_BYTES),
            self.sweep.refill_chunks,
            self.sweep.bg_chunks,
            self.sweep.straggler_chunks,
            self.sweep.escalation_chunks,
        );
        let shard_granules: usize = self.shards.iter().map(|s| s.free_granules).sum();
        let _ = writeln!(
            out,
            "shards: {} holding {:.1} MiB; wilderness {:.1} MiB in {} extents",
            self.shards.len(),
            mib(shard_granules * GRANULE_BYTES),
            mib(self.wilderness.free_granules * GRANULE_BYTES),
            self.wilderness.extents,
        );
        let _ = writeln!(out, "size classes (free granules / extents):");
        for (c, bin) in self.classes.iter().enumerate() {
            if bin.extents == 0 {
                continue;
            }
            let lo = 1usize << c;
            let _ = writeln!(
                out,
                "  class {c:>2} (>= {lo:>8} granules): {:>10} / {}",
                bin.free_granules, bin.extents,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{AllocCache, HeapConfig, ObjectShape};
    use crate::sweep::sweep_serial;

    fn build_heap() -> Heap {
        let heap = Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            cache_bytes: 8 << 10,
            large_object_bytes: 4 << 10,
            min_free_extent_granules: 2,
            alloc_shards: 4,
            ..HeapConfig::default()
        });
        let mut cache = AllocCache::new();
        for i in 0..1500u32 {
            let shape = ObjectShape::new(i % 4, i % 7, 1);
            loop {
                match heap.alloc_small(&mut cache, shape) {
                    Some(_) => break,
                    None => assert!(heap.refill_cache(&mut cache, shape.granules())),
                }
            }
        }
        heap.retire_cache(&mut cache);
        heap
    }

    #[test]
    fn inspection_is_internally_consistent() {
        let heap = build_heap();
        let insp = inspect(&heap);
        assert_eq!(insp.total_bytes, heap.total_bytes());
        assert_eq!(insp.free_bytes, heap.free_bytes());
        assert!(insp.occupancy > 0.0 && insp.occupancy <= 1.0);
        // Per-class totals cover exactly the shard + wilderness granules.
        let class_granules: usize = insp.classes.iter().map(|b| b.free_granules).sum();
        let shard_granules: usize = insp.shards.iter().map(|b| b.free_granules).sum();
        assert_eq!(
            class_granules,
            shard_granules + insp.wilderness.free_granules
        );
        assert_eq!(class_granules * GRANULE_BYTES, insp.free_bytes);
        let class_extents: usize = insp.classes.iter().map(|b| b.extents).sum();
        assert_eq!(class_extents, insp.free_extents);
        assert!(insp.largest_free_bytes <= insp.free_bytes);
        assert!((0.0..=1.0).contains(&insp.external_fragmentation));
    }

    #[test]
    fn fragmentation_rises_after_partial_sweep() {
        let heap = build_heap();
        let before = inspect(&heap);
        // Nothing marked: sweeping frees everything into few large
        // extents — fragmentation drops, free space rises.
        sweep_serial(&heap, 1 << 10);
        let after = inspect(&heap);
        assert!(after.free_bytes > before.free_bytes);
        assert!(after.largest_free_bytes >= before.largest_free_bytes);
    }

    #[test]
    fn counters_land_in_recorder() {
        let heap = build_heap();
        let rec = SpanRecorder::new(64);
        inspect(&heap).record_counters(&rec);
        let pts = rec.counter_points();
        assert_eq!(pts.len(), 12);
        assert!(pts.iter().all(|p| p.name.starts_with("heap_")));
        assert!(pts
            .iter()
            .any(|p| p.name == "heap_occupancy" && p.value > 0.0));
    }

    #[test]
    fn render_mentions_key_lines() {
        let heap = build_heap();
        let text = inspect(&heap).render();
        assert!(text.contains("heap "));
        assert!(text.contains("free extents:"));
        assert!(text.contains("cards:"));
        assert!(text.contains("size classes"));
    }
}
