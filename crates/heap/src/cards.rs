//! The card table used by the write barrier (paper §2, §5.3).
//!
//! One byte per 512-byte card. The write barrier dirties the card of the
//! object whose reference slot was updated; card *cleaning* rescans marked
//! objects on dirty cards to pick up references stored after they were
//! traced. The §5.3 snapshot protocol (register dirty cards, clear the
//! indicators, handshake, then clean from the registry) is implemented by
//! [`CardTable::snapshot_dirty`] plus the collector's fence handshake.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::object::GRANULES_PER_CARD;

const CLEAN: u8 = 0;
const DIRTY: u8 = 1;

/// A concurrent card table, one byte per card.
pub struct CardTable {
    cards: Box<[AtomicU8]>,
    /// Total number of cards ever dirtied (write-barrier activations that
    /// actually transitioned clean->dirty are not distinguished; this
    /// counts dirty stores, cheap and monotone).
    dirty_stores: AtomicU64,
}

impl CardTable {
    /// Creates a card table covering `granules` granules of heap.
    pub fn new(granules: usize) -> CardTable {
        let n = granules.div_ceil(GRANULES_PER_CARD);
        CardTable {
            cards: (0..n).map(|_| AtomicU8::new(CLEAN)).collect(),
            dirty_stores: AtomicU64::new(0),
        }
    }

    /// Number of cards.
    #[inline]
    pub fn len(&self) -> usize {
        self.cards.len()
    }

    /// True if the table covers zero cards.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cards.is_empty()
    }

    /// Dirties `card`. This is the write-barrier store; a plain relaxed
    /// store, with **no fence** (paper §5: "no fence at all in the write
    /// barrier") — the snapshot protocol on the collector side compensates.
    #[inline]
    pub fn dirty(&self, card: usize) {
        self.cards[card].store(DIRTY, Ordering::Relaxed);
        self.dirty_stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads whether `card` is dirty.
    #[inline]
    pub fn is_dirty(&self, card: usize) -> bool {
        self.cards[card].load(Ordering::Relaxed) == DIRTY
    }

    /// Clears the dirty indicator of `card`.
    #[inline]
    pub fn clear(&self, card: usize) {
        self.cards[card].store(CLEAN, Ordering::Relaxed);
    }

    /// Clears the whole table (collector initialization, at a safepoint).
    pub fn clear_all(&self) {
        for c in self.cards.iter() {
            c.store(CLEAN, Ordering::Relaxed);
        }
    }

    /// Step 1 of the §5.3 card-cleaning protocol: scan the table,
    /// *register* (return) all dirty card indices in `[start, end)` and
    /// clear their indicators.
    ///
    /// The caller must force a mutator fence handshake before scanning the
    /// registered cards' contents.
    pub fn snapshot_dirty(&self, start: usize, end: usize, out: &mut Vec<usize>) {
        debug_assert!(start <= end && end <= self.cards.len());
        for card in start..end {
            // swap avoids losing a concurrent re-dirty: if the mutator
            // dirties between our load and clear, the swap still observes
            // DIRTY and registers the card.
            if self.cards[card].swap(CLEAN, Ordering::Relaxed) == DIRTY {
                out.push(card);
            }
        }
    }

    /// Counts dirty cards in the whole table (diagnostics / metering).
    pub fn count_dirty(&self) -> usize {
        self.cards
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) == DIRTY)
            .count()
    }

    /// Total number of write-barrier dirty stores since creation.
    pub fn dirty_store_count(&self) -> u64 {
        self.dirty_stores.load(Ordering::Relaxed)
    }

    /// First granule of `card`.
    #[inline]
    pub fn card_start_granule(card: usize) -> usize {
        card * GRANULES_PER_CARD
    }

    /// One-past-last granule of `card`, clamped to `heap_granules`.
    #[inline]
    pub fn card_end_granule(card: usize, heap_granules: usize) -> usize {
        ((card + 1) * GRANULES_PER_CARD).min(heap_granules)
    }
}

impl std::fmt::Debug for CardTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CardTable")
            .field("cards", &self.cards.len())
            .field("dirty", &self.count_dirty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_and_snapshot() {
        let t = CardTable::new(GRANULES_PER_CARD * 10);
        assert_eq!(t.len(), 10);
        t.dirty(3);
        t.dirty(7);
        t.dirty(7);
        assert!(t.is_dirty(3));
        assert_eq!(t.count_dirty(), 2);
        assert_eq!(t.dirty_store_count(), 3);

        let mut snap = Vec::new();
        t.snapshot_dirty(0, 10, &mut snap);
        assert_eq!(snap, vec![3, 7]);
        assert_eq!(t.count_dirty(), 0, "snapshot clears indicators");

        snap.clear();
        t.snapshot_dirty(0, 10, &mut snap);
        assert!(snap.is_empty());
    }

    #[test]
    fn snapshot_range_partial() {
        let t = CardTable::new(GRANULES_PER_CARD * 8);
        for c in 0..8 {
            t.dirty(c);
        }
        let mut snap = Vec::new();
        t.snapshot_dirty(2, 5, &mut snap);
        assert_eq!(snap, vec![2, 3, 4]);
        assert_eq!(t.count_dirty(), 5, "cards outside range untouched");
    }

    #[test]
    fn rounds_up_partial_card() {
        let t = CardTable::new(GRANULES_PER_CARD + 1);
        assert_eq!(t.len(), 2);
        assert_eq!(
            CardTable::card_end_granule(1, GRANULES_PER_CARD + 1),
            GRANULES_PER_CARD + 1
        );
        assert_eq!(CardTable::card_start_granule(1), GRANULES_PER_CARD);
    }

    #[test]
    fn concurrent_dirty_never_lost() {
        // A card dirtied concurrently with snapshotting must end up either
        // in the snapshot or still dirty in the table.
        use std::sync::Arc;
        let t = Arc::new(CardTable::new(GRANULES_PER_CARD * 64));
        for round in 0..50 {
            let t2 = Arc::clone(&t);
            let writer = std::thread::spawn(move || {
                for c in 0..64 {
                    t2.dirty((c * 7 + round) % 64);
                }
            });
            let mut snap = Vec::new();
            t.snapshot_dirty(0, 64, &mut snap);
            writer.join().unwrap();
            let mut rest = Vec::new();
            t.snapshot_dirty(0, 64, &mut rest);
            let mut all: Vec<usize> = snap.into_iter().chain(rest).collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 64, "round {round}: some card lost: {all:?}");
        }
    }
}
