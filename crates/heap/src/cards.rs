//! The card table used by the write barrier (paper §2, §5.3).
//!
//! One byte per 512-byte card, packed eight cards to a `u64` word. The
//! write barrier dirties the card of the object whose reference slot was
//! updated with a single relaxed byte store; collector-side scans
//! (snapshot, counting, bulk clears) walk the table a word at a time — a
//! zero word skips eight clean cards in one load, and `trailing_zeros`
//! jumps straight to the next dirty lane, mirroring the mark-bitmap walk
//! in [`crate::bitmap`]. Card *cleaning* rescans marked objects on dirty
//! cards to pick up references stored after they were traced. The §5.3
//! snapshot protocol (register dirty cards, clear the indicators,
//! handshake, then clean from the registry) is implemented by
//! [`CardTable::snapshot_dirty`] plus the collector's fence handshake.
//!
//! # On mixed-size atomics
//!
//! Mutators store bytes while scans load words, which the C++/Rust
//! memory model does not fully bless (non-synchronized conflicting
//! atomic accesses of different sizes). The table is deliberately
//! structured so that no correctness property depends on a word read:
//! word loads only *filter* which lanes to visit, and the authoritative
//! register-and-clear is a same-size per-byte `swap`. A racy word read
//! can at worst delay a card to the next scan (it stays dirty in the
//! table), which is exactly the guarantee the byte-at-a-time loop gave
//! under relaxed loads. This is the standard card-table layout of
//! production collectors (HotSpot, MMTk side metadata).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::object::GRANULES_PER_CARD;

const CLEAN: u8 = 0;
const DIRTY: u8 = 1;
/// Cards packed into one `u64` scan word.
const CARDS_PER_WORD: usize = 8;

/// A concurrent card table, one byte per card, scanned word-at-a-time.
pub struct CardTable {
    /// Card bytes packed eight to a word. The write barrier addresses
    /// single bytes through [`CardTable::byte`]; scans load whole words.
    words: Box<[AtomicU64]>,
    /// Number of cards actually covering heap (the last word may have
    /// trailing padding lanes, which are never dirtied).
    n_cards: usize,
    /// Total number of cards ever dirtied (write-barrier activations that
    /// actually transitioned clean->dirty are not distinguished; this
    /// counts dirty stores, cheap and monotone).
    dirty_stores: AtomicU64,
}

impl CardTable {
    /// Creates a card table covering `granules` granules of heap.
    pub fn new(granules: usize) -> CardTable {
        let n = granules.div_ceil(GRANULES_PER_CARD);
        let words = n.div_ceil(CARDS_PER_WORD);
        CardTable {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            n_cards: n,
            dirty_stores: AtomicU64::new(0),
        }
    }

    /// Number of cards.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_cards
    }

    /// True if the table covers zero cards.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_cards == 0
    }

    /// Byte view of one card's indicator.
    #[inline]
    fn byte(&self, card: usize) -> &AtomicU8 {
        assert!(card < self.n_cards, "card {card} out of bounds");
        // SAFETY: `card < n_cards <= words.len() * CARDS_PER_WORD`, so
        // the byte at offset `card` lies inside the `words` allocation,
        // and `AtomicU8` has size 1 and the same representation as one
        // byte of an `AtomicU64`. Mixed-size access is confined to the
        // advisory word loads (see module docs).
        unsafe { &*self.words.as_ptr().cast::<AtomicU8>().add(card) }
    }

    /// Dirties `card`. This is the write-barrier store; a plain relaxed
    /// store, with **no fence** (paper §5: "no fence at all in the write
    /// barrier") — the snapshot protocol on the collector side compensates.
    #[inline]
    pub fn dirty(&self, card: usize) {
        self.byte(card).store(DIRTY, Ordering::Relaxed);
        self.dirty_stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads whether `card` is dirty.
    #[inline]
    pub fn is_dirty(&self, card: usize) -> bool {
        self.byte(card).load(Ordering::Relaxed) == DIRTY
    }

    /// Clears the dirty indicator of `card`.
    #[inline]
    pub fn clear(&self, card: usize) {
        self.byte(card).store(CLEAN, Ordering::Relaxed);
    }

    /// Clears the whole table (collector initialization, at a safepoint).
    pub fn clear_all(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Step 1 of the §5.3 card-cleaning protocol: scan the table,
    /// *register* (return) all dirty card indices in `[start, end)` and
    /// clear their indicators.
    ///
    /// Walks eight cards per word load, skipping clean words outright;
    /// each candidate lane is then cleared with a per-byte `swap`, which
    /// avoids losing a concurrent re-dirty: if the mutator dirties
    /// between our load and clear, the swap still observes `DIRTY` and
    /// registers the card.
    ///
    /// The caller must force a mutator fence handshake before scanning the
    /// registered cards' contents.
    pub fn snapshot_dirty(&self, start: usize, end: usize, out: &mut Vec<usize>) {
        debug_assert!(start <= end && end <= self.n_cards);
        for w in start / CARDS_PER_WORD..end.div_ceil(CARDS_PER_WORD) {
            let word_base = w * CARDS_PER_WORD;
            // `to_le` makes lane i of the integer correspond to memory
            // byte (= card) word_base + i on either endianness.
            let mut lanes = self.words[w].load(Ordering::Relaxed).to_le();
            if lanes == 0 {
                continue;
            }
            if start > word_base {
                lanes &= !0u64 << ((start - word_base) * 8);
            }
            let word_end = word_base + CARDS_PER_WORD;
            if end < word_end {
                lanes &= !0u64 >> ((word_end - end) * 8);
            }
            while lanes != 0 {
                let lane = (lanes.trailing_zeros() / 8) as usize;
                let card = word_base + lane;
                if self.byte(card).swap(CLEAN, Ordering::Relaxed) == DIRTY {
                    out.push(card);
                }
                lanes &= !(0xFFu64 << (lane * 8));
            }
        }
    }

    /// Counts dirty cards in the whole table (diagnostics / metering).
    ///
    /// Card bytes only ever hold 0 or 1, so a word's popcount is its
    /// dirty-card count.
    pub fn count_dirty(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Total number of write-barrier dirty stores since creation.
    pub fn dirty_store_count(&self) -> u64 {
        self.dirty_stores.load(Ordering::Relaxed)
    }

    /// First granule of `card`.
    #[inline]
    pub fn card_start_granule(card: usize) -> usize {
        card * GRANULES_PER_CARD
    }

    /// One-past-last granule of `card`, clamped to `heap_granules`.
    #[inline]
    pub fn card_end_granule(card: usize, heap_granules: usize) -> usize {
        ((card + 1) * GRANULES_PER_CARD).min(heap_granules)
    }
}

impl std::fmt::Debug for CardTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CardTable")
            .field("cards", &self.n_cards)
            .field("dirty", &self.count_dirty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_and_snapshot() {
        let t = CardTable::new(GRANULES_PER_CARD * 10);
        assert_eq!(t.len(), 10);
        t.dirty(3);
        t.dirty(7);
        t.dirty(7);
        assert!(t.is_dirty(3));
        assert_eq!(t.count_dirty(), 2);
        assert_eq!(t.dirty_store_count(), 3);

        let mut snap = Vec::new();
        t.snapshot_dirty(0, 10, &mut snap);
        assert_eq!(snap, vec![3, 7]);
        assert_eq!(t.count_dirty(), 0, "snapshot clears indicators");

        snap.clear();
        t.snapshot_dirty(0, 10, &mut snap);
        assert!(snap.is_empty());
    }

    #[test]
    fn snapshot_range_partial() {
        let t = CardTable::new(GRANULES_PER_CARD * 8);
        for c in 0..8 {
            t.dirty(c);
        }
        let mut snap = Vec::new();
        t.snapshot_dirty(2, 5, &mut snap);
        assert_eq!(snap, vec![2, 3, 4]);
        assert_eq!(t.count_dirty(), 5, "cards outside range untouched");
    }

    #[test]
    fn snapshot_range_straddles_words() {
        // A range crossing word boundaries, with dirty cards in the
        // masked-off lanes on both sides.
        let t = CardTable::new(GRANULES_PER_CARD * 24);
        for c in [5, 6, 8, 12, 15, 16, 20, 23] {
            t.dirty(c);
        }
        let mut snap = Vec::new();
        t.snapshot_dirty(6, 21, &mut snap);
        assert_eq!(snap, vec![6, 8, 12, 15, 16, 20]);
        assert!(t.is_dirty(5) && t.is_dirty(23), "outside lanes untouched");
        assert_eq!(t.count_dirty(), 2);
    }

    #[test]
    fn rounds_up_partial_card() {
        let t = CardTable::new(GRANULES_PER_CARD + 1);
        assert_eq!(t.len(), 2);
        assert_eq!(
            CardTable::card_end_granule(1, GRANULES_PER_CARD + 1),
            GRANULES_PER_CARD + 1
        );
        assert_eq!(CardTable::card_start_granule(1), GRANULES_PER_CARD);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn padding_lanes_are_not_addressable() {
        // 2 cards share a word with 6 padding lanes; the byte view must
        // still bounds-check against the card count, not the word count.
        let t = CardTable::new(GRANULES_PER_CARD * 2);
        t.dirty(2);
    }

    #[test]
    fn concurrent_dirty_never_lost() {
        // A card dirtied concurrently with snapshotting must end up either
        // in the snapshot or still dirty in the table.
        use std::sync::Arc;
        let t = Arc::new(CardTable::new(GRANULES_PER_CARD * 64));
        for round in 0..50 {
            let t2 = Arc::clone(&t);
            let writer = std::thread::spawn(move || {
                for c in 0..64 {
                    t2.dirty((c * 7 + round) % 64);
                }
            });
            let mut snap = Vec::new();
            t.snapshot_dirty(0, 64, &mut snap);
            writer.join().unwrap();
            let mut rest = Vec::new();
            t.snapshot_dirty(0, 64, &mut rest);
            let mut all: Vec<usize> = snap.into_iter().chain(rest).collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 64, "round {round}: some card lost: {all:?}");
        }
    }
}
