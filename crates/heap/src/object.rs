//! Object model: granules, object references, and header encoding.
//!
//! The heap is an array of 8-byte *granules*. An object occupies a
//! contiguous run of granules: one header granule, then `ref_count`
//! reference slots, then data slots. This mirrors the IBM JVM layout the
//! paper's collector operates on (mark/allocation bit vectors are one bit
//! per 8 bytes; see §2.1 and §5.2 of the paper).

use core::fmt;

/// Size of a granule in bytes. One mark bit and one allocation bit cover
/// one granule (paper §2.1: "a mark bit vector, one bit per 8 bytes").
pub const GRANULE_BYTES: usize = 8;

/// Size of a card in bytes (paper §6.2: "The card size is 512 bytes").
pub const CARD_BYTES: usize = 512;

/// Number of granules covered by one card.
pub const GRANULES_PER_CARD: usize = CARD_BYTES / GRANULE_BYTES;

/// Maximum object size in granules encodable in a header (24 bits).
pub const MAX_OBJECT_GRANULES: usize = (1 << 24) - 1;

/// A reference to an object: the granule index of its header.
///
/// Granule index 0 is reserved (the heap never allocates it), so 0 can be
/// used as the null encoding inside heap slots; a constructed `ObjectRef`
/// is always non-null.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash)]
pub struct ObjectRef(u32);

impl ObjectRef {
    /// Creates an object reference from a raw granule index.
    ///
    /// # Panics
    /// Panics if `granule` is 0 (reserved as the null encoding).
    #[inline]
    pub fn from_granule(granule: u32) -> ObjectRef {
        assert!(granule != 0, "granule 0 is reserved for null");
        ObjectRef(granule)
    }

    /// The granule index of the object header.
    #[inline]
    pub fn granule(self) -> u32 {
        self.0
    }

    /// The granule index as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Encodes the reference for storage in a heap slot.
    #[inline]
    pub fn encode(this: Option<ObjectRef>) -> u64 {
        match this {
            Some(r) => r.0 as u64,
            None => 0,
        }
    }

    /// Decodes a heap slot value into an optional reference.
    #[inline]
    pub fn decode(raw: u64) -> Option<ObjectRef> {
        if raw == 0 {
            None
        } else {
            debug_assert!(raw <= u32::MAX as u64, "corrupt reference slot {raw:#x}");
            Some(ObjectRef(raw as u32))
        }
    }

    /// The card index containing this object's header.
    #[inline]
    pub fn card(self) -> usize {
        self.index() / GRANULES_PER_CARD
    }
}

impl fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectRef({:#x})", self.0)
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Decoded object header.
///
/// Packed into one u64 granule:
/// ```text
/// bits  0..24  total size in granules (including the header granule)
/// bits 24..48  number of reference slots (immediately after the header)
/// bits 48..56  class id (workload-defined tag)
/// bits 56..64  flags
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Debug, Hash)]
pub struct Header {
    /// Total object size in granules, including the header granule.
    pub size_granules: u32,
    /// Number of reference slots following the header.
    pub ref_count: u32,
    /// Workload-defined class tag.
    pub class_id: u8,
    /// Flag bits (reserved; bit 0 = pinned in the incremental-compaction
    /// extension).
    pub flags: u8,
}

impl Header {
    /// Creates a header for an object with `ref_count` reference slots and
    /// `data_granules` non-reference granules.
    ///
    /// # Panics
    /// Panics if the resulting size exceeds [`MAX_OBJECT_GRANULES`] or if
    /// `ref_count` does not fit in the object.
    pub fn new(ref_count: u32, data_granules: u32, class_id: u8) -> Header {
        let size = 1u64 + ref_count as u64 + data_granules as u64;
        assert!(
            size <= MAX_OBJECT_GRANULES as u64,
            "object too large: {size} granules"
        );
        Header {
            size_granules: size as u32,
            ref_count,
            class_id,
            flags: 0,
        }
    }

    /// Encodes the header into its granule representation.
    #[inline]
    pub fn encode(self) -> u64 {
        debug_assert!(self.size_granules as usize <= MAX_OBJECT_GRANULES);
        debug_assert!(self.ref_count < (1 << 24));
        (self.size_granules as u64)
            | ((self.ref_count as u64) << 24)
            | ((self.class_id as u64) << 48)
            | ((self.flags as u64) << 56)
    }

    /// Decodes a header from its granule representation.
    #[inline]
    pub fn decode(raw: u64) -> Header {
        Header {
            size_granules: (raw & 0xFF_FFFF) as u32,
            ref_count: ((raw >> 24) & 0xFF_FFFF) as u32,
            class_id: ((raw >> 48) & 0xFF) as u8,
            flags: ((raw >> 56) & 0xFF) as u8,
        }
    }

    /// Object size in bytes.
    #[inline]
    pub fn size_bytes(self) -> usize {
        self.size_granules as usize * GRANULE_BYTES
    }

    /// Number of data (non-reference) granules.
    #[inline]
    pub fn data_count(self) -> u32 {
        self.size_granules - 1 - self.ref_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header::new(3, 5, 42);
        assert_eq!(h.size_granules, 9);
        let d = Header::decode(h.encode());
        assert_eq!(d, h);
        assert_eq!(d.data_count(), 5);
        assert_eq!(d.size_bytes(), 72);
    }

    #[test]
    fn header_extremes() {
        let h = Header::new(0, 0, 0);
        assert_eq!(h.size_granules, 1);
        assert_eq!(Header::decode(h.encode()), h);

        let big = Header::new(1000, MAX_OBJECT_GRANULES as u32 - 2000, 255);
        assert_eq!(Header::decode(big.encode()), big);
    }

    #[test]
    #[should_panic(expected = "object too large")]
    fn header_too_large() {
        let _ = Header::new(0, MAX_OBJECT_GRANULES as u32 + 1, 0);
    }

    #[test]
    fn objectref_encode_decode() {
        assert_eq!(ObjectRef::decode(0), None);
        let r = ObjectRef::from_granule(77);
        assert_eq!(ObjectRef::decode(ObjectRef::encode(Some(r))), Some(r));
        assert_eq!(ObjectRef::encode(None), 0);
        assert_eq!(r.index(), 77);
        assert_eq!(r.card(), 77 / GRANULES_PER_CARD);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn objectref_zero_rejected() {
        let _ = ObjectRef::from_granule(0);
    }

    #[test]
    fn card_geometry() {
        assert_eq!(GRANULES_PER_CARD, 64);
        let r = ObjectRef::from_granule(GRANULES_PER_CARD as u32);
        assert_eq!(r.card(), 1);
        let r = ObjectRef::from_granule(GRANULES_PER_CARD as u32 - 1);
        assert_eq!(r.card(), 0);
    }
}
