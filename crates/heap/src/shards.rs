//! Sharded, size-class-binned allocation substrate.
//!
//! The paper's premise is scaling a server collector across many
//! mutators, but a single `Mutex<FreeList>` with an O(n) next-fit scan
//! serializes every cache refill, retire, and large allocation. This
//! module replaces it with the structure per-thread allocators converge
//! on (Multicore OCaml's size-classed pools, LXR's block regions, the
//! Dimpsey et al. free-list lineage the paper builds on):
//!
//! * **N address-interleaved shards**, each its own lock. The heap is cut
//!   into power-of-two *stripes*; a freed extent lands in the shard of
//!   its stripe (`(start / stripe) % n`) when it lies wholly inside one
//!   stripe. Extents that straddle a stripe boundary (or exceed a
//!   stripe) go to the wilderness whole instead of being split —
//!   splitting would strand fragments that match no refill size until
//!   the next rebuild. Re-coalescing across shard boundaries happens at
//!   the stop-the-world [`ShardedFreeList::rebuild`].
//! * **Power-of-two size-class bins** inside each shard: class
//!   `floor(log2(len))`, so the common cache-refill size pops in O(1)
//!   instead of scanning an address-ordered list. Bins do not coalesce
//!   intra-cycle (segregated fit); the sweep rebuild restores maximal
//!   extents each cycle.
//! * **One shared wilderness bin** — a plain [`FreeList`] — holding
//!   extents longer than a stripe. Large objects carve from its end
//!   (compaction avoidance [12]); refills fall back to its front.
//! * **A relaxed atomic free-granule counter**, so `free_bytes()` and
//!   `occupancy()` (polled by the pacer on every allocation slow path and
//!   by OOM reporting) never take a lock.
//!
//! Refills try the mutator's *home shard* first, steal round-robin from
//! the other shards on a miss — skipping shards a relaxed occupancy
//! bitmask marks empty — and fall back to the wilderness; the home shard
//! is updated to wherever the refill last succeeded, so a mutator that
//! keeps retiring and re-allocating the same stripe stays on one
//! uncontended lock. The mask is a hint, never a verdict: after the
//! wilderness also misses, one unfiltered sweep over every shard runs
//! before the refill reports out-of-memory, so a stale mask bit can cost
//! a retry but never a spurious OOM.
//!
//! With `nshards <= 1` the shard array is empty and every operation
//! routes through the wilderness `FreeList` — byte-for-byte the old
//! single-lock allocator, kept as the A/B baseline for the alloc-scaling
//! benchmark.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use mcgc_membar::sync::{Mutex, MutexGuard};
use mcgc_telemetry::{SpanKind, SpanRecorder};

use crate::freelist::{Extent, FreeList};

/// Size classes cover `floor(log2(len))` for any extent a shard can hold
/// (the heap is at most `u32::MAX` granules).
pub const NUM_CLASSES: usize = 33;

#[inline]
fn class_of(len: usize) -> usize {
    debug_assert!(len > 0);
    ((usize::BITS - 1 - len.leading_zeros()) as usize).min(NUM_CLASSES - 1)
}

/// One shard: segregated power-of-two bins, no intra-shard coalescing.
#[derive(Debug)]
struct Shard {
    bins: [Vec<Extent>; NUM_CLASSES],
    free_granules: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            bins: std::array::from_fn(|_| Vec::new()),
            free_granules: 0,
        }
    }

    fn clear(&mut self) {
        for bin in &mut self.bins {
            bin.clear();
        }
        self.free_granules = 0;
    }

    fn push(&mut self, e: Extent) {
        debug_assert!(e.len > 0);
        self.free_granules += e.len;
        self.bins[class_of(e.len)].push(e);
    }

    /// O(1) segregated-fit pop: scan the request's own class for a fit
    /// (its extents may be shorter than `len`), then pop from any higher
    /// class, whose extents all fit. The remainder after splitting goes
    /// back into its own class bin.
    fn take(&mut self, len: usize) -> Option<usize> {
        let fc = class_of(len);
        if let Some(i) = self.bins[fc].iter().position(|e| e.len >= len) {
            return Some(self.pop_split(fc, i, len));
        }
        for c in fc + 1..NUM_CLASSES {
            if !self.bins[c].is_empty() {
                let i = self.bins[c].len() - 1;
                return Some(self.pop_split(c, i, len));
            }
        }
        None
    }

    fn pop_split(&mut self, class: usize, idx: usize, len: usize) -> usize {
        let e = self.bins[class].swap_remove(idx);
        debug_assert!(e.len >= len);
        self.free_granules -= len;
        if e.len > len {
            // The remainder stays inside the same stripe, so re-binning it
            // here never crosses a shard boundary.
            let rem = Extent {
                start: e.start + len,
                len: e.len - len,
            };
            self.bins[class_of(rem.len)].push(rem);
        }
        e.start
    }
}

/// Point-in-time occupancy of one shard, the wilderness bin, or one size
/// class (the heap inspector's unit of aggregation).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BinOccupancy {
    /// Free granules binned here right now.
    pub free_granules: usize,
    /// Free extents binned here right now.
    pub extents: usize,
}

/// Cumulative substrate statistics (all counters relaxed, monotone).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocShardStats {
    /// Number of allocation locks (1 in single-lock baseline mode).
    pub shards: usize,
    /// Lock acquisitions that found the lock held (`try_lock` missed and
    /// the caller had to block).
    pub contended_locks: u64,
    /// Refills served by a shard other than the mutator's home shard.
    pub refill_steals: u64,
    /// Refills that fell through every shard to the wilderness bin.
    pub wilderness_refills: u64,
}

/// The sharded free-space substrate. See the module docs for the layout.
///
/// All methods take `&self`; internal locking is per shard plus one
/// wilderness lock. The aggregate free-granule count is maintained in a
/// relaxed atomic beside the locks.
#[derive(Debug)]
pub struct ShardedFreeList {
    /// Empty in single-lock baseline mode (`nshards <= 1`).
    shards: Box<[Mutex<Shard>]>,
    /// Shared bin for extents longer than one stripe; also the entire
    /// substrate in baseline mode.
    wilderness: Mutex<FreeList>,
    /// Total free granules across shards and wilderness. The
    /// credit-before-push / debit-after-take discipline is exhaustively
    /// checked by `shard_model` in `crates/check`. Relaxed: readers
    /// (pacer, occupancy, OOM reports) tolerate a stale value; updates
    /// happen on the same paths that take the structure's locks.
    free_granules: AtomicUsize,
    /// Occupancy hint: bit `i` set while shard `i` (i < 64) holds any
    /// granules. Mutated only while that shard's lock is held, so per-shard
    /// transitions are ordered; readers load it relaxed as a filter for the
    /// steal loop. Shards beyond bit 63 are treated as always-occupied.
    nonempty: AtomicU64,
    stripe_granules: usize,
    stripe_shift: u32,
    contended_locks: AtomicU64,
    refill_steals: AtomicU64,
    wilderness_refills: AtomicU64,
    /// Optional flight recorder: refill/steal/wilderness spans on the
    /// slow paths. Unset (tests, benches without telemetry) or disabled,
    /// the hooks cost one load and a branch.
    recorder: OnceLock<Arc<SpanRecorder>>,
}

impl ShardedFreeList {
    /// Creates an empty substrate with `nshards` shards (`<= 1` selects
    /// the single-lock baseline) and the given power-of-two stripe.
    pub fn new(nshards: usize, stripe_granules: usize) -> ShardedFreeList {
        let stripe = stripe_granules.next_power_of_two().max(2);
        let n = if nshards <= 1 { 0 } else { nshards };
        ShardedFreeList {
            shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(),
            wilderness: Mutex::new(FreeList::new()),
            free_granules: AtomicUsize::new(0),
            nonempty: AtomicU64::new(0),
            stripe_granules: stripe,
            stripe_shift: stripe.trailing_zeros(),
            contended_locks: AtomicU64::new(0),
            refill_steals: AtomicU64::new(0),
            wilderness_refills: AtomicU64::new(0),
            recorder: OnceLock::new(),
        }
    }

    /// Attaches the flight recorder that refill/steal/wilderness spans
    /// are recorded against (once, at collector construction; later
    /// calls are ignored).
    pub fn attach_recorder(&self, rec: Arc<SpanRecorder>) {
        let _ = self.recorder.set(rec);
    }

    #[inline]
    fn recorder(&self) -> Option<&SpanRecorder> {
        self.recorder
            .get()
            .map(Arc::as_ref)
            .filter(|r| r.is_enabled())
    }

    /// Number of allocation locks mutators spread over (1 in baseline
    /// mode; the wilderness lock is not counted separately).
    pub fn shard_count(&self) -> usize {
        self.shards.len().max(1)
    }

    /// Stripe length in granules (extents longer than this live in the
    /// wilderness bin).
    pub fn stripe_granules(&self) -> usize {
        self.stripe_granules
    }

    /// Total free granules (relaxed atomic read; no lock).
    #[inline]
    pub fn free_granules(&self) -> usize {
        // MODEL: shard_model — advisory read; the model's finale checks
        // the counter is exact at quiescence, not during the race.
        self.free_granules.load(Ordering::Relaxed)
    }

    /// Cumulative contention/steal statistics.
    pub fn stats(&self) -> AllocShardStats {
        AllocShardStats {
            shards: self.shard_count(),
            contended_locks: self.contended_locks.load(Ordering::Relaxed),
            refill_steals: self.refill_steals.load(Ordering::Relaxed),
            wilderness_refills: self.wilderness_refills.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn shard_of(&self, start: usize) -> usize {
        (start >> self.stripe_shift) % self.shards.len()
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        match self.shards[idx].try_lock() {
            Some(g) => g,
            None => {
                self.contended_locks.fetch_add(1, Ordering::Relaxed);
                self.shards[idx].lock()
            }
        }
    }

    fn lock_wilderness(&self) -> MutexGuard<'_, FreeList> {
        match self.wilderness.try_lock() {
            Some(g) => g,
            None => {
                self.contended_locks.fetch_add(1, Ordering::Relaxed);
                self.wilderness.lock()
            }
        }
    }

    /// Locks shard `idx` and takes `len` granules from it, maintaining
    /// the occupancy mask and the global free-granule counter.
    fn take_from(&self, idx: usize, len: usize) -> Option<usize> {
        let mut g = self.lock_shard(idx);
        let start = g.take(len)?;
        if g.free_granules == 0 && idx < 64 {
            // Still under the shard lock, so this clear cannot race with a
            // concurrent free's set on the same shard.
            // MODEL: shard_model — MaskClearOutsideLock moves this past
            // the unlock and the model catches the resulting stale mask.
            self.nonempty.fetch_and(!(1u64 << idx), Ordering::Relaxed);
        }
        drop(g);
        // MODEL: shard_model — decrement AFTER the take, outside the
        // lock; counting before the list op can drive the counter
        // negative (the model's FreeCountsAfterPush dual).
        self.free_granules.fetch_sub(len, Ordering::Relaxed);
        Some(start)
    }

    /// Allocates `len` granules for a cache refill: home shard, then
    /// round-robin steal from the other shards (skipping shards the
    /// occupancy mask marks empty), then the wilderness front, then one
    /// unfiltered sweep of every shard so a stale mask bit can never turn
    /// into a spurious out-of-memory. On success `home` is updated to the
    /// serving shard.
    pub fn alloc(&self, len: usize, home: &mut usize) -> Option<usize> {
        debug_assert!(len > 0);
        // One span per refill; the kind is settled where the refill lands
        // (home shard / steal / wilderness), the payload is the length.
        let mut span = self
            .recorder()
            .map(|r| r.span(SpanKind::ShardRefill, len as u64));
        let n = self.shards.len();
        if n > 0 {
            let h = *home % n;
            if let Some(start) = self.take_from(h, len) {
                *home = h;
                return Some(start);
            }
            // MODEL: shard_model — advisory snapshot: a stale set bit
            // only costs a wasted lock, and a stale clear bit is
            // backstopped by the unfiltered sweep below (the model's
            // SkipFallbackSweep shows the sweep is load-bearing).
            let mask = self.nonempty.load(Ordering::Relaxed);
            for i in 1..n {
                let idx = (h + i) % n;
                if idx < 64 && mask & (1u64 << idx) == 0 {
                    continue;
                }
                if let Some(start) = self.take_from(idx, len) {
                    *home = idx;
                    self.refill_steals.fetch_add(1, Ordering::Relaxed);
                    if let Some(s) = &mut span {
                        s.set_kind(SpanKind::ShardSteal);
                        s.set_arg(idx as u64);
                    }
                    return Some(start);
                }
            }
        }
        if let Some(start) = self.lock_wilderness().alloc(len) {
            self.wilderness_refills.fetch_add(1, Ordering::Relaxed);
            self.free_granules.fetch_sub(len, Ordering::Relaxed); // MODEL: shard_model
            if let Some(s) = &mut span {
                s.set_kind(SpanKind::WildernessRefill);
            }
            return Some(start);
        }
        // Last resort: revisit every shard without the mask filter, so
        // free space a stale mask hid is still found before we fail.
        for idx in 0..n {
            if let Some(start) = self.take_from(idx, len) {
                *home = idx;
                self.refill_steals.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = &mut span {
                    s.set_kind(SpanKind::ShardSteal);
                    s.set_arg(idx as u64);
                }
                return Some(start);
            }
        }
        None
    }

    /// Home-shard-only probe: takes `len` granules from the caller's home
    /// shard without stealing or touching the wilderness. The
    /// sweep-on-refill path tries this first, sweeps an unswept chunk
    /// when it misses, and only falls back to the full
    /// [`ShardedFreeList::alloc`] afterwards — so a refill pays for
    /// reclamation before raiding other shards' space.
    pub fn alloc_local(&self, len: usize, home: usize) -> Option<usize> {
        debug_assert!(len > 0);
        let n = self.shards.len();
        if n == 0 {
            return None;
        }
        self.take_from(home % n, len)
    }

    /// Wilderness-style allocation for large objects: carve from the end
    /// of the wilderness bin, falling back to the highest-ending fitting
    /// extent across the shard bins when the wilderness cannot serve.
    pub fn alloc_from_end(&self, len: usize) -> Option<usize> {
        debug_assert!(len > 0);
        let _span = self
            .recorder()
            .map(|r| r.span(SpanKind::WildernessRefill, len as u64));
        if let Some(start) = self.lock_wilderness().alloc_from_end(len) {
            self.free_granules.fetch_sub(len, Ordering::Relaxed); // MODEL: shard_model
            return Some(start);
        }
        if self.shards.is_empty() {
            return None;
        }
        // Rare fallback: hold every shard lock (ascending order, the same
        // order rebuild uses, so lock acquisition cannot deadlock) and
        // take the globally highest-ending extent that fits.
        let mut guards: Vec<MutexGuard<'_, Shard>> =
            (0..self.shards.len()).map(|i| self.lock_shard(i)).collect();
        let mut best: Option<(usize, usize, usize, usize)> = None; // (shard, class, idx, end)
        for (si, g) in guards.iter().enumerate() {
            for c in class_of(len)..NUM_CLASSES {
                for (i, e) in g.bins[c].iter().enumerate() {
                    if e.len >= len && best.is_none_or(|b| e.end() > b.3) {
                        best = Some((si, c, i, e.end()));
                    }
                }
            }
        }
        let (si, class, idx, _) = best?;
        let g = &mut guards[si];
        let e = g.bins[class].swap_remove(idx);
        g.free_granules -= e.len;
        if e.len > len {
            g.push(Extent {
                start: e.start,
                len: e.len - len,
            });
        }
        if g.free_granules == 0 && si < 64 {
            // MODEL: shard_model — clear while the shard lock is held.
            self.nonempty.fetch_and(!(1u64 << si), Ordering::Relaxed);
        }
        self.free_granules.fetch_sub(len, Ordering::Relaxed); // MODEL: shard_model
        Some(e.end() - len)
    }

    /// Returns an extent to the substrate: the owning shard's size-class
    /// bin when the extent lies wholly inside one stripe, the wilderness
    /// otherwise (longer than a stripe, or straddling a stripe boundary —
    /// splitting straddlers would strand fragments that match no refill
    /// size until the next rebuild; the wilderness next-fit handles odd
    /// extents and coalesces as it goes).
    pub fn free(&self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        // MODEL: shard_model — credit the counter BEFORE pushing the
        // extent: an allocator that observes the credit but loses the
        // race to the extent retries, which is safe; the reverse order
        // (FreeCountsAfterPush) admits a taken-but-uncounted window
        // that drives the counter negative.
        self.free_granules.fetch_add(len, Ordering::Relaxed);
        // Same-stripe test: first and last granule share a stripe index
        // (also false whenever `len > stripe_granules`).
        if self.shards.is_empty() || (start ^ (start + len - 1)) >> self.stripe_shift != 0 {
            self.lock_wilderness().free(start, len);
            return;
        }
        let idx = self.shard_of(start);
        let mut g = self.lock_shard(idx);
        let was_empty = g.free_granules == 0;
        g.push(Extent { start, len });
        if was_empty && idx < 64 {
            // Set under the shard lock so it orders with take_from's clear.
            // MODEL: shard_model — SkipMaskSetOnFree loses this set and
            // the model catches the mask/occupancy divergence.
            self.nonempty.fetch_or(1u64 << idx, Ordering::Relaxed);
        }
    }

    /// Replaces the contents with `extents`, which must be address-ordered
    /// and non-overlapping (as produced by sweep). Adjacent extents are
    /// coalesced first — including pieces that lived in different shards
    /// before the rebuild, which is why maximal extents are restored every
    /// stop-the-world rebuild despite bins never coalescing — and the
    /// coalesced runs are then dealt back out by address.
    pub fn rebuild<I: IntoIterator<Item = Extent>>(&self, extents: I) {
        // Canonical lock order: wilderness, then shards ascending.
        let mut wild = self.lock_wilderness();
        let mut guards: Vec<MutexGuard<'_, Shard>> =
            (0..self.shards.len()).map(|i| self.lock_shard(i)).collect();
        wild.rebuild(std::iter::empty());
        for g in guards.iter_mut() {
            g.clear();
        }
        let mut total = 0usize;
        let mut pending: Option<Extent> = None;
        for e in extents {
            if e.len == 0 {
                continue;
            }
            debug_assert!(
                pending.is_none_or(|p| p.end() <= e.start),
                "rebuild input not address-ordered"
            );
            total += e.len;
            match &mut pending {
                Some(p) if p.end() == e.start => p.len += e.len,
                Some(p) => {
                    let done = *p;
                    *p = e;
                    self.deal(&mut wild, &mut guards, done);
                }
                None => pending = Some(e),
            }
        }
        if let Some(p) = pending {
            self.deal(&mut wild, &mut guards, p);
        }
        let mut mask = 0u64;
        for (i, g) in guards.iter().enumerate().take(64) {
            if g.free_granules > 0 {
                mask |= 1u64 << i;
            }
        }
        // MODEL: shard_model — stores under every lock (rebuild is the
        // STW path), so the mask and counter are rebuilt exactly.
        self.nonempty.store(mask, Ordering::Relaxed);
        self.free_granules.store(total, Ordering::Relaxed);
    }

    /// Routes one coalesced extent under the locks `rebuild` holds, with
    /// the same stripe-local-or-wilderness rule as [`ShardedFreeList::free`].
    fn deal(
        &self,
        wild: &mut MutexGuard<'_, FreeList>,
        guards: &mut [MutexGuard<'_, Shard>],
        e: Extent,
    ) {
        if guards.is_empty() || (e.start ^ (e.end() - 1)) >> self.stripe_shift != 0 {
            wild.free(e.start, e.len);
            return;
        }
        guards[self.shard_of(e.start)].push(e);
    }

    /// Every extent, sorted by start address (diagnostics, verification,
    /// tests). Takes each lock once, sequentially.
    pub fn extents_sorted(&self) -> Vec<Extent> {
        let mut all = self.wilderness_extents();
        all.extend(self.shard_extents());
        all.sort_unstable_by_key(|e| (e.start, e.len));
        all
    }

    /// The wilderness bin's extents in its own (address) iteration order.
    pub fn wilderness_extents(&self) -> Vec<Extent> {
        self.lock_wilderness().iter().collect()
    }

    /// All shard-binned extents, in no particular order.
    pub fn shard_extents(&self) -> Vec<Extent> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            let g = self.lock_shard(i);
            for bin in &g.bins {
                out.extend(bin.iter().copied());
            }
        }
        out
    }

    /// Point-in-time occupancy of each shard, in shard order (empty in
    /// baseline mode). One lock per shard, taken sequentially.
    pub fn shard_occupancy(&self) -> Vec<BinOccupancy> {
        (0..self.shards.len())
            .map(|i| {
                let g = self.lock_shard(i);
                BinOccupancy {
                    free_granules: g.free_granules,
                    extents: g.bins.iter().map(Vec::len).sum(),
                }
            })
            .collect()
    }

    /// Point-in-time occupancy of the wilderness bin.
    pub fn wilderness_occupancy(&self) -> BinOccupancy {
        let g = self.lock_wilderness();
        BinOccupancy {
            free_granules: g.iter().map(|e| e.len).sum(),
            extents: g.extent_count(),
        }
    }

    /// Point-in-time occupancy per power-of-two size class (class
    /// `floor(log2(len))`), aggregated across every shard and the
    /// wilderness bin.
    pub fn class_occupancy(&self) -> [BinOccupancy; NUM_CLASSES] {
        let mut out = [BinOccupancy::default(); NUM_CLASSES];
        for i in 0..self.shards.len() {
            let g = self.lock_shard(i);
            for (c, bin) in g.bins.iter().enumerate() {
                out[c].extents += bin.len();
                out[c].free_granules += bin.iter().map(|e| e.len).sum::<usize>();
            }
        }
        for e in self.lock_wilderness().iter() {
            let c = class_of(e.len);
            out[c].extents += 1;
            out[c].free_granules += e.len;
        }
        out
    }

    /// Number of extents across all bins.
    pub fn extent_count(&self) -> usize {
        let mut n = self.lock_wilderness().extent_count();
        for i in 0..self.shards.len() {
            n += self.lock_shard(i).bins.iter().map(Vec::len).sum::<usize>();
        }
        n
    }

    /// Size of the largest extent anywhere, in granules.
    pub fn largest_extent(&self) -> usize {
        let mut best = self.lock_wilderness().largest_extent();
        for i in 0..self.shards.len() {
            let g = self.lock_shard(i);
            for bin in g.bins.iter().rev() {
                if let Some(m) = bin.iter().map(|e| e.len).max() {
                    best = best.max(m);
                    break; // higher classes checked first; lower can't beat it
                }
            }
        }
        best
    }

    /// Installs `extents` verbatim into the wilderness bin with no
    /// ordering, overlap, or length checks, clearing the shards. Exists so
    /// verifier tests can construct corrupted states that
    /// [`ShardedFreeList::rebuild`]'s debug assertions would reject; never
    /// call it from collector code.
    #[doc(hidden)]
    pub fn set_extents_unchecked(&self, extents: Vec<Extent>) {
        let mut wild = self.lock_wilderness();
        let mut guards: Vec<MutexGuard<'_, Shard>> =
            (0..self.shards.len()).map(|i| self.lock_shard(i)).collect();
        for g in guards.iter_mut() {
            g.clear();
        }
        let total = extents.iter().map(|e| e.len).sum();
        wild.set_extents_unchecked(extents);
        // MODEL: shard_model — test-only reset under every lock.
        self.nonempty.store(0, Ordering::Relaxed);
        self.free_granules.store(total, Ordering::Relaxed);
    }

    #[cfg(test)]
    fn nonempty_mask(&self) -> u64 {
        self.nonempty.load(Ordering::Relaxed) // MODEL: shard_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(nshards: usize, stripe: usize, total: usize) -> ShardedFreeList {
        let fl = ShardedFreeList::new(nshards, stripe);
        fl.rebuild([Extent {
            start: 1,
            len: total,
        }]);
        fl
    }

    #[test]
    fn class_of_is_floor_log2() {
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(2), 1);
        assert_eq!(class_of(3), 1);
        assert_eq!(class_of(64), 6);
        assert_eq!(class_of(127), 6);
        assert_eq!(class_of(128), 7);
    }

    #[test]
    fn fresh_extent_lands_in_wilderness() {
        let fl = filled(4, 256, 10_000);
        assert_eq!(fl.free_granules(), 10_000);
        assert_eq!(fl.wilderness_extents().len(), 1);
        assert!(fl.shard_extents().is_empty());
    }

    #[test]
    fn small_free_routes_to_shard_by_stripe() {
        let fl = ShardedFreeList::new(4, 256);
        fl.free(10, 20); // stripe 0 -> shard 0
        fl.free(256 * 3 + 5, 30); // stripe 3 -> shard 3
        assert_eq!(fl.free_granules(), 50);
        assert_eq!(fl.wilderness_extents().len(), 0);
        assert_eq!(fl.shard_extents().len(), 2);
        let mut home = 0;
        assert_eq!(fl.alloc(20, &mut home), Some(10));
        assert_eq!(home, 0);
        // Miss at home shard 0, steal from shard 3.
        assert_eq!(fl.alloc(30, &mut home), Some(256 * 3 + 5));
        assert_eq!(home, 3);
        assert_eq!(fl.stats().refill_steals, 1);
        assert_eq!(fl.free_granules(), 0);
    }

    #[test]
    fn straddling_free_routes_to_wilderness_whole() {
        let fl = ShardedFreeList::new(4, 256);
        fl.free(250, 20); // [250, 270) crosses the 256 boundary
        assert_eq!(
            fl.wilderness_extents(),
            vec![Extent {
                start: 250,
                len: 20
            }],
            "straddler must not be split into unusable fragments"
        );
        assert!(fl.shard_extents().is_empty());
        assert_eq!(fl.free_granules(), 20);
        // Still allocatable at full size via the wilderness fallback.
        let mut home = 0;
        assert_eq!(fl.alloc(20, &mut home), Some(250));
    }

    #[test]
    fn occupancy_mask_tracks_shard_transitions() {
        let fl = ShardedFreeList::new(4, 256);
        assert_eq!(fl.nonempty_mask(), 0);
        fl.free(256 * 3 + 5, 30); // stripe 3 -> shard 3
        assert_eq!(fl.nonempty_mask(), 1 << 3);
        fl.free(10, 5); // stripe 0 -> shard 0
        assert_eq!(fl.nonempty_mask(), (1 << 3) | 1);
        let mut home = 0;
        assert_eq!(fl.alloc(5, &mut home), Some(10));
        assert_eq!(fl.nonempty_mask(), 1 << 3, "emptied shard 0 clears bit");
        // The mask-guided steal still finds shard 3 from an empty home.
        assert_eq!(fl.alloc(30, &mut home), Some(256 * 3 + 5));
        assert_eq!(fl.nonempty_mask(), 0);
        assert_eq!(fl.alloc(1, &mut home), None, "clean miss, no free space");
        // Rebuild repopulates the mask from what it dealt out.
        fl.rebuild([Extent { start: 10, len: 5 }]);
        assert_eq!(fl.nonempty_mask(), 1);
    }

    #[test]
    fn rebuild_coalesces_across_shard_boundaries() {
        let fl = ShardedFreeList::new(4, 256);
        // Two shard-resident pieces that are address-adjacent across a
        // stripe boundary, plus a separate run.
        fl.free(250, 6);
        fl.free(256, 14);
        fl.free(600, 10);
        let sorted = fl.extents_sorted();
        assert_eq!(sorted.len(), 3, "bins do not coalesce intra-cycle");
        fl.rebuild(sorted);
        assert_eq!(fl.free_granules(), 30);
        // After rebuild the adjacent pieces coalesced into [250, 270),
        // which straddles a stripe boundary and so was dealt to the
        // wilderness whole: conservation holds and no two pieces overlap.
        let after = fl.extents_sorted();
        let total: usize = after.iter().map(|e| e.len).sum();
        assert_eq!(total, 30);
        for w in after.windows(2) {
            assert!(w[0].end() <= w[1].start, "overlap: {w:?}");
        }
    }

    #[test]
    fn wilderness_serves_refills_when_shards_empty() {
        let fl = filled(4, 256, 100_000);
        let mut home = 0;
        assert_eq!(fl.alloc(512, &mut home), Some(1));
        assert_eq!(fl.stats().wilderness_refills, 1);
        assert_eq!(fl.free_granules(), 100_000 - 512);
    }

    #[test]
    fn alloc_from_end_prefers_wilderness_then_shards() {
        let fl = filled(4, 256, 1000);
        assert_eq!(fl.alloc_from_end(100), Some(901));
        // Drain the wilderness, then free a shard-resident extent high up.
        let mut home = 0;
        while fl.alloc(64, &mut home).is_some() {}
        while fl.alloc(1, &mut home).is_some() {}
        assert_eq!(fl.free_granules(), 0);
        // Two stripe-local extents in different shards; the fallback must
        // pick the globally highest-ending one.
        fl.free(300, 50);
        fl.free(600, 50);
        assert_eq!(fl.alloc_from_end(40), Some(610), "highest-ending fit");
        assert_eq!(fl.free_granules(), 60);
    }

    #[test]
    fn baseline_mode_uses_single_wilderness_list() {
        let fl = filled(1, 256, 10_000);
        assert_eq!(fl.shard_count(), 1);
        fl.free(20_000, 10); // small extents also go to the wilderness
        assert!(fl.shard_extents().is_empty());
        assert_eq!(fl.wilderness_extents().len(), 2);
        let mut home = 0;
        assert_eq!(fl.alloc(100, &mut home), Some(1));
        assert_eq!(fl.free_granules(), 10_000 - 100 + 10);
    }

    #[test]
    fn conservation_through_mixed_ops() {
        let fl = filled(8, 64, 50_000);
        let mut home = 0;
        let mut held: Vec<(usize, usize)> = Vec::new();
        for i in 0..2000 {
            let len = 1 + (i * 7) % 120;
            if i % 3 == 2 && !held.is_empty() {
                let (s, l) = held.swap_remove(held.len() / 2);
                fl.free(s, l);
            } else if let Some(s) = fl.alloc(len, &mut home) {
                held.push((s, len));
            }
        }
        let held_total: usize = held.iter().map(|&(_, l)| l).sum();
        assert_eq!(fl.free_granules() + held_total, 50_000);
        // No extent overlaps another or a held region.
        let mut regions: Vec<(usize, usize)> = held
            .iter()
            .map(|&(s, l)| (s, s + l))
            .chain(fl.extents_sorted().iter().map(|e| (e.start, e.end())))
            .collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "region overlap: {w:?}");
        }
    }
}
