//! Atomic bitmaps used for the mark bit vector and the allocation bit
//! vector (one bit per granule, paper §2.1 and §5.2).

use std::sync::atomic::{AtomicU64, Ordering};

const BITS: usize = 64;

/// A fixed-size concurrent bitmap, one bit per granule.
///
/// All single-bit operations are atomic; bulk operations
/// ([`Bitmap::clear_all`]) must only run while no other thread mutates the
/// bitmap (i.e., during collector initialization at a safepoint).
pub struct Bitmap {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap covering `len` bits, all zero.
    pub fn new(len: usize) -> Bitmap {
        let words = len.div_ceil(BITS);
        Bitmap {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Number of bits in the map.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        let w = self.words[idx / BITS].load(Ordering::Relaxed);
        w & (1 << (idx % BITS)) != 0
    }

    /// Atomically sets bit `idx`, returning `true` if this call changed it
    /// from 0 to 1 (i.e., the caller won the race).
    #[inline]
    pub fn set(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        let mask = 1u64 << (idx % BITS);
        let prev = self.words[idx / BITS].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Atomically clears bit `idx`, returning `true` if this call changed
    /// it from 1 to 0.
    #[inline]
    pub fn clear(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        let mask = 1u64 << (idx % BITS);
        let prev = self.words[idx / BITS].fetch_and(!mask, Ordering::Relaxed);
        prev & mask != 0
    }

    /// Clears every bit. Not atomic with respect to concurrent set/clear;
    /// callers must hold the heap at a safepoint.
    pub fn clear_all(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of 64-bit words backing the map (the unit of
    /// [`Bitmap::load_word`] / [`Bitmap::clear_words`] striping).
    #[inline]
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Reads backing word `w` (bits `[64w, 64w + 64)`); bits at or past
    /// [`Bitmap::len`] are always zero. Lets scanners advance a word at
    /// a time instead of probing bit by bit.
    #[inline]
    pub fn load_word(&self, w: usize) -> u64 {
        self.words[w].load(Ordering::Relaxed)
    }

    /// Zeroes whole backing words `[start_word, end_word)`. Together
    /// with [`Bitmap::word_len`] this is the parallel form of
    /// [`Bitmap::clear_all`]: workers clear disjoint word ranges, so the
    /// plain stores never race. Same safepoint contract as `clear_all`.
    pub fn clear_words(&self, start_word: usize, end_word: usize) {
        assert!(start_word <= end_word && end_word <= self.words.len());
        for w in &self.words[start_word..end_word] {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Clears all bits in `[start, end)`.
    ///
    /// Word-interior boundaries are handled with atomic masks so bits
    /// outside the range are never disturbed.
    pub fn clear_range(&self, start: usize, end: usize) {
        assert!(start <= end && end <= self.len);
        if start == end {
            return;
        }
        let (sw, sb) = (start / BITS, start % BITS);
        let (ew, eb) = (end / BITS, end % BITS);
        if sw == ew {
            let mask = (!0u64 << sb) & !(!0u64).checked_shl(eb as u32).unwrap_or(0);
            let keep = if eb == 0 { !0u64 << sb } else { mask };
            self.words[sw].fetch_and(!keep, Ordering::Relaxed);
            return;
        }
        self.words[sw].fetch_and(!(!0u64 << sb), Ordering::Relaxed);
        for w in sw + 1..ew {
            self.words[w].store(0, Ordering::Relaxed);
        }
        if eb != 0 {
            self.words[ew].fetch_and(!0u64 << eb, Ordering::Relaxed);
        }
    }

    /// Finds the first set bit at or after `from`, or `None`.
    pub fn next_set(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut wi = from / BITS;
        let mut word = self.words[wi].load(Ordering::Relaxed) & (!0u64 << (from % BITS));
        loop {
            if word != 0 {
                let idx = wi * BITS + word.trailing_zeros() as usize;
                return if idx < self.len { Some(idx) } else { None };
            }
            wi += 1;
            if wi * BITS >= self.len {
                return None;
            }
            word = self.words[wi].load(Ordering::Relaxed);
        }
    }

    /// Finds the last set bit strictly before `before`, or `None`.
    pub fn prev_set(&self, before: usize) -> Option<usize> {
        if before == 0 {
            return None;
        }
        let before = before.min(self.len);
        let mut wi = (before - 1) / BITS;
        let top = (before - 1) % BITS;
        let mut word = self.words[wi].load(Ordering::Relaxed);
        if top < BITS - 1 {
            word &= (1u64 << (top + 1)) - 1;
        }
        loop {
            if word != 0 {
                return Some(wi * BITS + (BITS - 1 - word.leading_zeros() as usize));
            }
            if wi == 0 {
                return None;
            }
            wi -= 1;
            word = self.words[wi].load(Ordering::Relaxed);
        }
    }

    /// Finds the first set bit in `[from, limit)`, or `None`.
    pub fn next_set_before(&self, from: usize, limit: usize) -> Option<usize> {
        debug_assert!(limit <= self.len);
        match self.next_set(from) {
            Some(i) if i < limit => Some(i),
            _ => None,
        }
    }

    /// Counts set bits in `[start, end)`.
    pub fn count_range(&self, start: usize, end: usize) -> usize {
        assert!(start <= end && end <= self.len);
        let mut count = 0;
        let mut i = start;
        while i < end {
            let wi = i / BITS;
            let off = i % BITS;
            let upto = ((wi + 1) * BITS).min(end);
            let take = upto - i;
            let mut w = self.words[wi].load(Ordering::Relaxed) >> off;
            if take < BITS {
                w &= (1u64 << take) - 1;
            }
            count += w.count_ones() as usize;
            i = upto;
        }
        count
    }

    /// Counts all set bits.
    pub fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Iterates over all set bit indices in `[start, end)`.
    pub fn iter_set(&self, start: usize, end: usize) -> SetBits<'_> {
        assert!(start <= end && end <= self.len);
        SetBits {
            map: self,
            next: start,
            end,
        }
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bitmap")
            .field("len", &self.len)
            .field("set", &self.count())
            .finish()
    }
}

/// Iterator over set bits of a [`Bitmap`]; see [`Bitmap::iter_set`].
pub struct SetBits<'a> {
    map: &'a Bitmap,
    next: usize,
    end: usize,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let found = self.map.next_set_before(self.next, self.end)?;
        self.next = found + 1;
        Some(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let b = Bitmap::new(200);
        assert!(!b.get(63));
        assert!(b.set(63));
        assert!(!b.set(63), "second set returns false");
        assert!(b.get(63));
        assert!(b.clear(63));
        assert!(!b.clear(63));
        assert!(!b.get(63));
    }

    #[test]
    fn next_set_scans_across_words() {
        let b = Bitmap::new(300);
        b.set(0);
        b.set(64);
        b.set(299);
        assert_eq!(b.next_set(0), Some(0));
        assert_eq!(b.next_set(1), Some(64));
        assert_eq!(b.next_set(65), Some(299));
        assert_eq!(b.next_set(300), None);
        assert_eq!(b.next_set_before(65, 299), None);
        assert_eq!(b.next_set_before(65, 300), Some(299));
    }

    #[test]
    fn count_range_partial_words() {
        let b = Bitmap::new(256);
        for i in (0..256).step_by(3) {
            b.set(i);
        }
        let brute = |s: usize, e: usize| (s..e).filter(|&i| b.get(i)).count();
        for &(s, e) in &[(0, 256), (1, 255), (63, 65), (64, 128), (100, 101), (5, 5)] {
            assert_eq!(b.count_range(s, e), brute(s, e), "range {s}..{e}");
        }
        assert_eq!(b.count(), brute(0, 256));
    }

    #[test]
    fn clear_range_boundaries() {
        let b = Bitmap::new(256);
        for i in 0..256 {
            b.set(i);
        }
        b.clear_range(10, 20);
        b.clear_range(60, 70);
        b.clear_range(128, 256);
        for i in 0..256 {
            let expect = !(10..20).contains(&i) && !(60..70).contains(&i) && i < 128;
            assert_eq!(b.get(i), expect, "bit {i}");
        }
        // whole-word boundary
        let c = Bitmap::new(192);
        for i in 0..192 {
            c.set(i);
        }
        c.clear_range(64, 128);
        assert_eq!(c.count(), 128);
        assert!(c.get(63) && !c.get(64) && !c.get(127) && c.get(128));
    }

    #[test]
    fn word_level_access() {
        let b = Bitmap::new(200);
        assert_eq!(b.word_len(), 4);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(199);
        assert_eq!(b.load_word(0), (1 << 63) | 1);
        assert_eq!(b.load_word(1), 1);
        assert_eq!(b.load_word(3), 1 << (199 % 64));
        b.clear_words(0, 1);
        assert_eq!(b.load_word(0), 0);
        assert!(b.get(64) && b.get(199), "other words untouched");
        b.clear_words(1, 4);
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn prev_set_scans_backwards() {
        let b = Bitmap::new(300);
        b.set(0);
        b.set(64);
        b.set(299);
        assert_eq!(b.prev_set(0), None);
        assert_eq!(b.prev_set(1), Some(0));
        assert_eq!(b.prev_set(64), Some(0));
        assert_eq!(b.prev_set(65), Some(64));
        assert_eq!(b.prev_set(299), Some(64));
        assert_eq!(b.prev_set(300), Some(299));
        assert_eq!(b.prev_set(10_000), Some(299), "clamped to len");
        let empty = Bitmap::new(100);
        assert_eq!(empty.prev_set(100), None);
    }

    #[test]
    fn iter_set_collects() {
        let b = Bitmap::new(130);
        for i in [0usize, 5, 64, 65, 129] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_set(0, 130).collect();
        assert_eq!(got, vec![0, 5, 64, 65, 129]);
        let got: Vec<usize> = b.iter_set(1, 65).collect();
        assert_eq!(got, vec![5, 64]);
    }

    #[test]
    fn concurrent_set_unique_winners() {
        use std::sync::Arc;
        let b = Arc::new(Bitmap::new(1 << 14));
        let winners: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || (0..b.len()).filter(|&i| b.set(i)).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(winners.iter().sum::<usize>(), 1 << 14);
        assert_eq!(b.count(), 1 << 14);
    }
}
