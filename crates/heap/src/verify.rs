//! A heap verifier used by tests and debug assertions: walks the
//! allocation bit vector and checks structural invariants.

use crate::heap::Heap;
use crate::object::ObjectRef;

/// A structural problem found by [`verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An object extends past the end of the heap.
    ObjectOutOfBounds {
        /// Offending object.
        obj: u32,
        /// Its decoded end granule.
        end: usize,
    },
    /// An object header decodes to zero size.
    ZeroSizeObject {
        /// Offending object.
        obj: u32,
    },
    /// Two allocated objects overlap.
    Overlap {
        /// Earlier object.
        first: u32,
        /// Overlapping later object.
        second: u32,
    },
    /// A reference slot points outside the heap.
    DanglingRef {
        /// Object holding the slot.
        obj: u32,
        /// Slot index.
        slot: u32,
        /// The bad target granule.
        target: u32,
    },
    /// A reference targets a granule with no (published) allocation bit.
    UnpublishedRef {
        /// Object holding the slot.
        obj: u32,
        /// Slot index.
        slot: u32,
        /// The unpublished target.
        target: u32,
    },
    /// A free-list extent overlaps an allocated object.
    FreeListOverlap {
        /// Extent start granule.
        start: usize,
        /// Extent length.
        len: usize,
    },
    /// A marked granule has no allocation bit.
    MarkWithoutAlloc {
        /// The granule.
        granule: usize,
    },
    /// The free list is not address-ordered, or holds a zero-length or
    /// overlapping extent.
    FreeListDisorder {
        /// Offending extent start granule.
        start: usize,
        /// Offending extent length.
        len: usize,
    },
    /// A free-list extent intersects an unmapped (released) segment: an
    /// allocation from it would hand out memory the heap gave back.
    FreeListUnmapped {
        /// Extent start granule.
        start: usize,
        /// Extent length.
        len: usize,
    },
    /// A free-list extent overlaps a chunk the active sweep epoch has
    /// not finished sweeping: extents only enter the free list after
    /// their chunk is published as swept, so this extent was either
    /// forged or double-freed out of an unswept region.
    FreeListUnswept {
        /// Extent start granule.
        start: usize,
        /// Extent length.
        len: usize,
    },
    /// A marked (black) object references an unmarked object without
    /// being covered: the mostly-concurrent tri-color invariant (§2.1)
    /// is broken, and the referent would be swept while reachable.
    TriColor {
        /// The marked, already-scanned parent.
        parent: u32,
        /// Slot index holding the uncovered reference.
        slot: u32,
        /// The unmarked child.
        child: u32,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ObjectOutOfBounds { obj, end } => {
                write!(f, "object {obj:#x} extends to {end:#x}, past heap end")
            }
            Violation::ZeroSizeObject { obj } => write!(f, "object {obj:#x} has zero size"),
            Violation::Overlap { first, second } => {
                write!(f, "objects {first:#x} and {second:#x} overlap")
            }
            Violation::DanglingRef { obj, slot, target } => {
                write!(
                    f,
                    "object {obj:#x} slot {slot} points out of heap: {target:#x}"
                )
            }
            Violation::UnpublishedRef { obj, slot, target } => write!(
                f,
                "object {obj:#x} slot {slot} targets unpublished granule {target:#x}"
            ),
            Violation::FreeListOverlap { start, len } => {
                write!(f, "free extent [{start:#x}, +{len}) overlaps a live object")
            }
            Violation::MarkWithoutAlloc { granule } => {
                write!(f, "granule {granule:#x} is marked but not allocated")
            }
            Violation::FreeListDisorder { start, len } => {
                write!(
                    f,
                    "free extent [{start:#x}, +{len}) is out of order, empty, or overlapping"
                )
            }
            Violation::FreeListUnmapped { start, len } => {
                write!(
                    f,
                    "free extent [{start:#x}, +{len}) intersects an unmapped segment"
                )
            }
            Violation::FreeListUnswept { start, len } => {
                write!(
                    f,
                    "free extent [{start:#x}, +{len}) overlaps a chunk the active sweep \
                     epoch has not swept"
                )
            }
            Violation::TriColor {
                parent,
                slot,
                child,
            } => write!(
                f,
                "tri-color violation: marked object {parent:#x} slot {slot} references \
                 unmarked {child:#x} with no card coverage"
            ),
        }
    }
}

/// Walks the heap and returns every structural violation found.
///
/// Must run while the heap is quiescent (no concurrent mutators) — e.g.,
/// in tests, or at a safepoint with all caches retired. Unpublished
/// references are only reported when `strict_refs` is set, because during
/// a concurrent phase references to still-pending cache allocations are
/// legal (§5.2 defers them).
pub fn verify(heap: &Heap, strict_refs: bool) -> Vec<Violation> {
    let mut violations = Vec::new();
    let granules = heap.granules();
    let alloc = heap.alloc_bits();

    // Pass 1: object walk.
    let mut prev: Option<(u32, usize)> = None;
    let mut cursor = 1;
    while let Some(start) = alloc.next_set(cursor) {
        let obj = ObjectRef::from_granule(start as u32);
        let h = heap.header(obj);
        let size = h.size_granules as usize;
        if size == 0 {
            violations.push(Violation::ZeroSizeObject { obj: start as u32 });
            cursor = start + 1;
            continue;
        }
        let end = start + size;
        // Past the frontier, or spanning into a hole left by a released
        // segment — either way the object's granules are not all backed.
        if end > granules || !heap.is_range_mapped(start, size) {
            violations.push(Violation::ObjectOutOfBounds {
                obj: start as u32,
                end,
            });
            cursor = start + 1;
            continue;
        }
        if let Some((pobj, pend)) = prev {
            if start < pend {
                violations.push(Violation::Overlap {
                    first: pobj,
                    second: start as u32,
                });
            }
        }
        for i in 0..h.ref_count {
            if let Some(target) = heap.load_ref(obj, i) {
                if target.index() >= granules || !heap.is_range_mapped(target.index(), 1) {
                    violations.push(Violation::DanglingRef {
                        obj: start as u32,
                        slot: i,
                        target: target.granule(),
                    });
                } else if strict_refs && !alloc.get(target.index()) {
                    violations.push(Violation::UnpublishedRef {
                        obj: start as u32,
                        slot: i,
                        target: target.granule(),
                    });
                }
            }
        }
        prev = Some((start as u32, end));
        cursor = start + 1;
    }

    // Pass 2: free extents must be well-formed. The wilderness bin is a
    // next-fit list that keeps address order, so its iteration order is
    // checked directly; shard size-class bins are unordered by design, so
    // across the whole substrate the *sorted* union is checked for
    // zero-length extents, overlap, and alloc-bit intersection.
    let fl = heap.free_list();
    let lazy_plan = heap.lazy_plan();
    let mut prev_end = 0usize;
    for e in fl.wilderness_extents() {
        if e.start < prev_end {
            violations.push(Violation::FreeListDisorder {
                start: e.start,
                len: e.len,
            });
        }
        prev_end = prev_end.max(e.start + e.len);
    }
    let mut all = fl.wilderness_extents();
    all.extend(fl.shard_extents());
    all.sort_unstable_by_key(|e| (e.start, e.len));
    let mut prev_end = 0usize;
    for e in all {
        if e.len == 0 || e.start < prev_end {
            violations.push(Violation::FreeListDisorder {
                start: e.start,
                len: e.len,
            });
        }
        prev_end = prev_end.max(e.start + e.len);
        if alloc.count_range(e.start, (e.start + e.len).min(granules)) != 0 {
            violations.push(Violation::FreeListOverlap {
                start: e.start,
                len: e.len,
            });
        }
        if e.len > 0 && !heap.is_range_mapped(e.start, e.len) {
            violations.push(Violation::FreeListUnmapped {
                start: e.start,
                len: e.len,
            });
        }
        // Epoch-aware audit: the free list is cleared when a sweep epoch
        // is installed and extents re-enter it only after their chunk is
        // published swept, so no extent may overlap a still-unswept
        // chunk of the epoch's snapshot.
        if e.len > 0 {
            if let Some(p) = &lazy_plan {
                if !p.range_fully_swept(e.start, e.start + e.len) {
                    violations.push(Violation::FreeListUnswept {
                        start: e.start,
                        len: e.len,
                    });
                }
            }
        }
    }

    // Pass 3: marks imply allocation.
    let marks = heap.mark_bits();
    let mut m = 0;
    while let Some(g) = marks.next_set(m) {
        if !alloc.get(g) {
            violations.push(Violation::MarkWithoutAlloc { granule: g });
        }
        m = g + 1;
    }

    violations
}

/// Checks the mostly-concurrent tri-color invariant (§2.1): every
/// reference held by a marked (black) object must lead to a marked
/// object, unless something else promises the reference will be
/// revisited — the parent is *grey* (marked but not yet scanned: its
/// entry sits in a work packet), or the parent is *covered* (the card
/// holding its header is dirty or registered for rescanning, so card
/// cleaning will re-trace it).
///
/// `grey(granule)` and `covered(granule)` answer those questions for an
/// object's header granule; the caller derives them from the packet pool
/// and the card table + cleaning registry. Run only at a quiescent point
/// (a safepoint, or in tests): mid-increment the mark bits are racing.
///
/// At the end of marking — after final card cleaning, with the packet
/// pool drained — pass `|_| false` for both and the check is exact:
/// marked objects may only reference marked objects.
pub fn verify_tricolor(
    heap: &Heap,
    grey: impl Fn(usize) -> bool,
    covered: impl Fn(usize) -> bool,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let granules = heap.granules();
    let alloc = heap.alloc_bits();
    let marks = heap.mark_bits();
    let mut cursor = 1;
    while let Some(start) = marks.next_set(cursor) {
        cursor = start + 1;
        // Structural problems (marks without alloc bits, bad headers) are
        // verify()'s business; skip anything it would already flag.
        if !alloc.get(start) {
            continue;
        }
        let obj = ObjectRef::from_granule(start as u32);
        let h = heap.header(obj);
        if h.size_granules == 0 || start + h.size_granules as usize > granules {
            continue;
        }
        if grey(start) || covered(start) {
            continue;
        }
        for i in 0..h.ref_count {
            if let Some(target) = heap.load_ref(obj, i) {
                if target.index() < granules && !marks.get(target.index()) {
                    violations.push(Violation::TriColor {
                        parent: start as u32,
                        slot: i,
                        child: target.granule(),
                    });
                }
            }
        }
    }
    violations
}

/// Panics with a readable report if [`verify`] finds violations.
pub fn assert_heap_valid(heap: &Heap, strict_refs: bool) {
    let v = verify(heap, strict_refs);
    if !v.is_empty() {
        let mut msg = format!("heap verification failed with {} violations:\n", v.len());
        for violation in v.iter().take(20) {
            msg.push_str(&format!("  - {violation}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{AllocCache, HeapConfig, ObjectShape};

    fn heap() -> Heap {
        Heap::new(HeapConfig::with_heap_bytes(1 << 20))
    }

    #[test]
    fn clean_heap_verifies() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let a = h
            .alloc_small(&mut cache, ObjectShape::new(1, 1, 0))
            .unwrap();
        let b = h
            .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
            .unwrap();
        h.store_ref_unbarriered(a, 0, Some(b));
        h.retire_cache(&mut cache);
        assert_eq!(verify(&h, true), vec![]);
        assert_heap_valid(&h, true);
    }

    #[test]
    fn pending_refs_only_flagged_in_strict_mode() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let a = h
            .alloc_small(&mut cache, ObjectShape::new(1, 0, 0))
            .unwrap();
        let b = h
            .alloc_small(&mut cache, ObjectShape::new(0, 0, 0))
            .unwrap();
        h.publish_cache(&mut cache);
        let c = h
            .alloc_small(&mut cache, ObjectShape::new(0, 0, 0))
            .unwrap();
        h.store_ref_unbarriered(a, 0, Some(b));
        h.store_ref_unbarriered(a, 0, Some(c)); // c is pending
        assert_eq!(verify(&h, false), vec![]);
        let strict = verify(&h, true);
        assert_eq!(
            strict,
            vec![Violation::UnpublishedRef {
                obj: a.granule(),
                slot: 0,
                target: c.granule()
            }]
        );
    }

    #[test]
    fn detects_mark_without_alloc() {
        let h = heap();
        h.mark_bits().set(500);
        let v = verify(&h, true);
        assert_eq!(v, vec![Violation::MarkWithoutAlloc { granule: 500 }]);
    }

    #[test]
    fn detects_zero_size_object() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        // Host object with data granules we can forge headers into.
        let x = h
            .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
            .unwrap();
        h.retire_cache(&mut cache);
        // An allocation bit inside x's (zeroed) data area decodes as an
        // object of size 0.
        let g = x.index() + 2;
        h.alloc_bits().set(g);
        let v = verify(&h, true);
        assert_eq!(v, vec![Violation::ZeroSizeObject { obj: g as u32 }]);
    }

    #[test]
    fn detects_object_out_of_bounds() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let x = h
            .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
            .unwrap();
        h.retire_cache(&mut cache);
        // Forge a header whose size runs past the end of the 1 MiB heap.
        let huge = crate::object::Header::new(0, 1 << 20, 0);
        h.store_data(x, 1, huge.encode());
        let g = x.index() + 2;
        h.alloc_bits().set(g);
        let v = verify(&h, true);
        assert_eq!(
            v,
            vec![Violation::ObjectOutOfBounds {
                obj: g as u32,
                end: g + huge.size_granules as usize,
            }]
        );
    }

    #[test]
    fn detects_overlapping_objects() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let x = h
            .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
            .unwrap();
        h.retire_cache(&mut cache);
        // Forge a well-formed one-granule object inside x.
        let forged = crate::object::Header::new(0, 0, 0);
        h.store_data(x, 1, forged.encode());
        let g = x.index() + 2;
        h.alloc_bits().set(g);
        let v = verify(&h, true);
        assert_eq!(
            v,
            vec![Violation::Overlap {
                first: x.granule(),
                second: g as u32,
            }]
        );
    }

    #[test]
    fn detects_free_list_overlap() {
        let h = heap();
        // An allocation bit in the middle of free space: the covering
        // free extent now overlaps an "object" (which also decodes as
        // zero-size, since the memory is zeroed).
        let g = h.granules() - 100;
        h.alloc_bits().set(g);
        let v = verify(&h, true);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::FreeListOverlap { .. })),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::ZeroSizeObject { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn detects_free_list_disorder() {
        use crate::freelist::Extent;
        let h = heap();
        let e = h.free_list().extents_sorted();
        assert!(!e.is_empty());
        // Split the first real extent into two out-of-order pieces.
        let first = e[0];
        let a = Extent {
            start: first.start + 8,
            len: first.len - 8,
        };
        let b = Extent {
            start: first.start,
            len: 8,
        };
        h.free_list().set_extents_unchecked(vec![a, b]);
        let v = verify(&h, true);
        assert_eq!(
            v,
            vec![Violation::FreeListDisorder {
                start: b.start,
                len: b.len,
            }]
        );
    }

    #[test]
    fn detects_tricolor_violation_and_respects_grey_and_coverage() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let a = h
            .alloc_small(&mut cache, ObjectShape::new(1, 0, 0))
            .unwrap();
        let b = h
            .alloc_small(&mut cache, ObjectShape::new(0, 0, 0))
            .unwrap();
        h.retire_cache(&mut cache);
        h.store_ref_unbarriered(a, 0, Some(b));
        // a is black (marked, treated as scanned), b is white, no card
        // coverage: the reference to b would be lost.
        h.mark(a);
        let strict = verify_tricolor(&h, |_| false, |_| false);
        assert_eq!(
            strict,
            vec![Violation::TriColor {
                parent: a.granule(),
                slot: 0,
                child: b.granule(),
            }]
        );
        // Any of the three escape hatches clears it: a is still grey …
        assert_eq!(verify_tricolor(&h, |g| g == a.index(), |_| false), vec![]);
        // … or a's card is covered (dirty / registered for rescanning) …
        assert_eq!(verify_tricolor(&h, |_| false, |g| g == a.index()), vec![]);
        // … or b gets marked.
        h.mark(b);
        assert_eq!(verify_tricolor(&h, |_| false, |_| false), vec![]);
    }

    #[test]
    fn grow_and_shrink_keep_heap_valid_and_holes_are_flagged() {
        use crate::freelist::Extent;
        let h = Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            max_heap_bytes: 2 << 20,
            ..HeapConfig::default()
        });
        // Grown heap verifies clean.
        assert!(h.try_grow());
        assert_eq!(verify(&h, true), vec![]);
        // Release the grown segment again (it is entirely free).
        let mut extents = h.free_list().extents_sorted();
        assert_eq!(h.release_empty_segments(&mut extents), 1);
        h.free_list().set_extents_unchecked(extents.clone());
        assert_eq!(verify(&h, true), vec![]);
        // Forge an extent reaching into the hole: flagged as unmapped.
        let sg = h.segment_granules();
        let hole = h.segment_stats().initial * sg;
        let mut forged = extents;
        forged.push(Extent {
            start: hole + 8,
            len: 16,
        });
        h.free_list().set_extents_unchecked(forged);
        let v = verify(&h, true);
        assert_eq!(
            v,
            vec![Violation::FreeListUnmapped {
                start: hole + 8,
                len: 16,
            }]
        );
    }

    #[test]
    fn detects_dangling_ref() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let a = h
            .alloc_small(&mut cache, ObjectShape::new(1, 0, 0))
            .unwrap();
        h.publish_cache(&mut cache);
        // Forge an out-of-heap reference.
        h.store_ref_unbarriered(a, 0, Some(ObjectRef::from_granule(u32::MAX)));
        let v = verify(&h, true);
        assert!(matches!(v[0], Violation::DanglingRef { .. }));
    }
}
