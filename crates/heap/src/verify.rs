//! A heap verifier used by tests and debug assertions: walks the
//! allocation bit vector and checks structural invariants.

use crate::heap::Heap;
use crate::object::ObjectRef;

/// A structural problem found by [`verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An object extends past the end of the heap.
    ObjectOutOfBounds {
        /// Offending object.
        obj: u32,
        /// Its decoded end granule.
        end: usize,
    },
    /// An object header decodes to zero size.
    ZeroSizeObject {
        /// Offending object.
        obj: u32,
    },
    /// Two allocated objects overlap.
    Overlap {
        /// Earlier object.
        first: u32,
        /// Overlapping later object.
        second: u32,
    },
    /// A reference slot points outside the heap.
    DanglingRef {
        /// Object holding the slot.
        obj: u32,
        /// Slot index.
        slot: u32,
        /// The bad target granule.
        target: u32,
    },
    /// A reference targets a granule with no (published) allocation bit.
    UnpublishedRef {
        /// Object holding the slot.
        obj: u32,
        /// Slot index.
        slot: u32,
        /// The unpublished target.
        target: u32,
    },
    /// A free-list extent overlaps an allocated object.
    FreeListOverlap {
        /// Extent start granule.
        start: usize,
        /// Extent length.
        len: usize,
    },
    /// A marked granule has no allocation bit.
    MarkWithoutAlloc {
        /// The granule.
        granule: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ObjectOutOfBounds { obj, end } => {
                write!(f, "object {obj:#x} extends to {end:#x}, past heap end")
            }
            Violation::ZeroSizeObject { obj } => write!(f, "object {obj:#x} has zero size"),
            Violation::Overlap { first, second } => {
                write!(f, "objects {first:#x} and {second:#x} overlap")
            }
            Violation::DanglingRef { obj, slot, target } => {
                write!(
                    f,
                    "object {obj:#x} slot {slot} points out of heap: {target:#x}"
                )
            }
            Violation::UnpublishedRef { obj, slot, target } => write!(
                f,
                "object {obj:#x} slot {slot} targets unpublished granule {target:#x}"
            ),
            Violation::FreeListOverlap { start, len } => {
                write!(f, "free extent [{start:#x}, +{len}) overlaps a live object")
            }
            Violation::MarkWithoutAlloc { granule } => {
                write!(f, "granule {granule:#x} is marked but not allocated")
            }
        }
    }
}

/// Walks the heap and returns every structural violation found.
///
/// Must run while the heap is quiescent (no concurrent mutators) — e.g.,
/// in tests, or at a safepoint with all caches retired. Unpublished
/// references are only reported when `strict_refs` is set, because during
/// a concurrent phase references to still-pending cache allocations are
/// legal (§5.2 defers them).
pub fn verify(heap: &Heap, strict_refs: bool) -> Vec<Violation> {
    let mut violations = Vec::new();
    let granules = heap.granules();
    let alloc = heap.alloc_bits();

    // Pass 1: object walk.
    let mut prev: Option<(u32, usize)> = None;
    let mut cursor = 1;
    while let Some(start) = alloc.next_set(cursor) {
        let obj = ObjectRef::from_granule(start as u32);
        let h = heap.header(obj);
        let size = h.size_granules as usize;
        if size == 0 {
            violations.push(Violation::ZeroSizeObject { obj: start as u32 });
            cursor = start + 1;
            continue;
        }
        let end = start + size;
        if end > granules {
            violations.push(Violation::ObjectOutOfBounds {
                obj: start as u32,
                end,
            });
            cursor = start + 1;
            continue;
        }
        if let Some((pobj, pend)) = prev {
            if start < pend {
                violations.push(Violation::Overlap {
                    first: pobj,
                    second: start as u32,
                });
            }
        }
        for i in 0..h.ref_count {
            if let Some(target) = heap.load_ref(obj, i) {
                if target.index() >= granules {
                    violations.push(Violation::DanglingRef {
                        obj: start as u32,
                        slot: i,
                        target: target.granule(),
                    });
                } else if strict_refs && !alloc.get(target.index()) {
                    violations.push(Violation::UnpublishedRef {
                        obj: start as u32,
                        slot: i,
                        target: target.granule(),
                    });
                }
            }
        }
        prev = Some((start as u32, end));
        cursor = start + 1;
    }

    // Pass 2: free-list extents must not intersect allocated headers.
    heap.with_free_list(|fl| {
        for e in fl.iter() {
            if alloc.count_range(e.start, (e.start + e.len).min(granules)) != 0 {
                violations.push(Violation::FreeListOverlap {
                    start: e.start,
                    len: e.len,
                });
            }
        }
    });

    // Pass 3: marks imply allocation.
    let marks = heap.mark_bits();
    let mut m = 0;
    while let Some(g) = marks.next_set(m) {
        if !alloc.get(g) {
            violations.push(Violation::MarkWithoutAlloc { granule: g });
        }
        m = g + 1;
    }

    violations
}

/// Panics with a readable report if [`verify`] finds violations.
pub fn assert_heap_valid(heap: &Heap, strict_refs: bool) {
    let v = verify(heap, strict_refs);
    if !v.is_empty() {
        let mut msg = format!("heap verification failed with {} violations:\n", v.len());
        for violation in v.iter().take(20) {
            msg.push_str(&format!("  - {violation}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{AllocCache, HeapConfig, ObjectShape};

    fn heap() -> Heap {
        Heap::new(HeapConfig::with_heap_bytes(1 << 20))
    }

    #[test]
    fn clean_heap_verifies() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let a = h
            .alloc_small(&mut cache, ObjectShape::new(1, 1, 0))
            .unwrap();
        let b = h
            .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
            .unwrap();
        h.store_ref_unbarriered(a, 0, Some(b));
        h.retire_cache(&mut cache);
        assert_eq!(verify(&h, true), vec![]);
        assert_heap_valid(&h, true);
    }

    #[test]
    fn pending_refs_only_flagged_in_strict_mode() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let a = h
            .alloc_small(&mut cache, ObjectShape::new(1, 0, 0))
            .unwrap();
        let b = h
            .alloc_small(&mut cache, ObjectShape::new(0, 0, 0))
            .unwrap();
        h.publish_cache(&mut cache);
        let c = h
            .alloc_small(&mut cache, ObjectShape::new(0, 0, 0))
            .unwrap();
        h.store_ref_unbarriered(a, 0, Some(b));
        h.store_ref_unbarriered(a, 0, Some(c)); // c is pending
        assert_eq!(verify(&h, false), vec![]);
        let strict = verify(&h, true);
        assert_eq!(
            strict,
            vec![Violation::UnpublishedRef {
                obj: a.granule(),
                slot: 0,
                target: c.granule()
            }]
        );
    }

    #[test]
    fn detects_mark_without_alloc() {
        let h = heap();
        h.mark_bits().set(500);
        let v = verify(&h, true);
        assert_eq!(v, vec![Violation::MarkWithoutAlloc { granule: 500 }]);
    }

    #[test]
    fn detects_dangling_ref() {
        let h = heap();
        let mut cache = AllocCache::new();
        h.refill_cache(&mut cache, 1);
        let a = h
            .alloc_small(&mut cache, ObjectShape::new(1, 0, 0))
            .unwrap();
        h.publish_cache(&mut cache);
        // Forge an out-of-heap reference.
        h.store_ref_unbarriered(a, 0, Some(ObjectRef::from_granule(u32::MAX)));
        let v = verify(&h, true);
        assert!(matches!(v[0], Violation::DanglingRef { .. }));
    }
}
