//! Heap substrate for the mostly-concurrent collector: a Java-like object
//! heap with the exact geometry the paper's algorithms operate on.
//!
//! * 8-byte granules; objects are a header granule plus reference slots
//!   plus data granules ([`object`]);
//! * an allocation bit vector and a mark bit vector, one bit per granule
//!   ([`bitmap`]);
//! * a 512-byte-card table dirtied by the write barrier ([`cards`]);
//! * a sharded, size-class-binned free-extent substrate ([`shards`]) —
//!   address-interleaved shards over a next-fit wilderness list
//!   ([`freelist`]) — fed by bitwise sweep ([`sweep`]) and consumed
//!   through per-thread allocation caches ([`heap`]);
//! * a segment table ([`segment`]) behind the bitmaps and cards: the
//!   arena is a set of independently reserved segments, grown under
//!   memory pressure and shrunk after troughs;
//! * a structural verifier for tests ([`verify`]).
//!
//! The arena's slot accesses are atomic: mutators and the concurrent
//! tracer race by design, and the §5 fence protocols (routed through
//! [`mcgc_membar`]) make the races benign.
//!
//! # Example
//!
//! ```
//! use mcgc_heap::{AllocCache, Heap, HeapConfig, ObjectShape};
//!
//! let heap = Heap::new(HeapConfig::with_heap_bytes(1 << 20));
//! let mut cache = AllocCache::new();
//! assert!(heap.refill_cache(&mut cache, 4));
//! let list = heap.alloc_small(&mut cache, ObjectShape::new(1, 1, 0)).unwrap();
//! let node = heap.alloc_small(&mut cache, ObjectShape::new(1, 1, 0)).unwrap();
//! heap.store_ref_unbarriered(list, 0, Some(node));
//! assert_eq!(heap.load_ref(list, 0), Some(node));
//! ```

pub mod bitmap;
pub mod cards;
pub mod freelist;
#[allow(clippy::module_inception)]
pub mod heap;
pub mod inspect;
pub mod object;
pub mod segment;
pub mod shards;
pub mod sweep;
pub mod verify;

pub use bitmap::Bitmap;
pub use cards::CardTable;
pub use freelist::{Extent, FreeList};
pub use heap::{
    AllocCache, AllocError, Heap, HeapConfig, ObjectShape, SegmentStats, SweepCounters,
};
pub use inspect::{inspect, HeapInspection};
pub use object::{Header, ObjectRef, CARD_BYTES, GRANULES_PER_CARD, GRANULE_BYTES};
pub use segment::{HeapBitmap, HeapCards, SegmentTable, SEGMENT_ALIGN_GRANULES};
pub use shards::{AllocShardStats, BinOccupancy, ShardedFreeList};
pub use sweep::{
    sweep_parallel, sweep_serial, LazySweep, ParallelSweep, SweepSource, SweepStats,
    DEFAULT_CHUNK_GRANULES,
};
pub use verify::{assert_heap_valid, verify, verify_tricolor, Violation};
