//! Address-ordered extent free list.
//!
//! The IBM JVM allocates from a free list of extents; bitwise sweep (paper
//! §2.2) rebuilds the list from the mark bit vector. We keep the list
//! address-ordered and use first-fit, which the compaction-avoidance work
//! the paper builds on ([12]) found effective.

use std::collections::VecDeque;

/// A contiguous run of free granules.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Hash)]
pub struct Extent {
    /// First granule of the extent.
    pub start: usize,
    /// Length in granules.
    pub len: usize,
}

impl Extent {
    /// One past the last granule.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// An address-ordered free list of extents with first-fit allocation.
///
/// Not internally synchronized: the heap wraps it in a mutex. Allocation
/// caches (paper §2.1) keep the lock off the small-object fast path.
#[derive(Debug, Default)]
pub struct FreeList {
    /// Address-ordered extents. A deque because first-fit for the common
    /// small request usually pops near the front.
    extents: VecDeque<Extent>,
    free_granules: usize,
    /// Next-fit rotor: index where the last allocation succeeded. Scans
    /// start here so a prefix of too-small fragments (common near heap
    /// exhaustion) is not rescanned on every request.
    hint: usize,
}

impl FreeList {
    /// Creates an empty free list.
    pub fn new() -> FreeList {
        FreeList::default()
    }

    /// Creates a free list holding one extent.
    pub fn with_extent(start: usize, len: usize) -> FreeList {
        let mut fl = FreeList::new();
        if len > 0 {
            fl.extents.push_back(Extent { start, len });
            fl.free_granules = len;
        }
        fl
    }

    /// Total free granules on the list.
    #[inline]
    pub fn free_granules(&self) -> usize {
        self.free_granules
    }

    /// Number of extents on the list.
    #[inline]
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Size of the largest extent, in granules.
    pub fn largest_extent(&self) -> usize {
        self.extents.iter().map(|e| e.len).max().unwrap_or(0)
    }

    /// Next-fit allocation of `len` granules (address-ordered list, scan
    /// resumes at the previous success). Returns the start granule.
    pub fn alloc(&mut self, len: usize) -> Option<usize> {
        debug_assert!(len > 0);
        let n = self.extents.len();
        if n == 0 {
            return None;
        }
        let start_at = self.hint.min(n - 1);
        let pos = (0..n)
            .map(|i| (start_at + i) % n)
            .find(|&i| self.extents[i].len >= len)?;
        let e = &mut self.extents[pos];
        let start = e.start;
        if e.len == len {
            self.extents.remove(pos);
            self.hint = if pos == 0 { 0 } else { pos - 1 };
        } else {
            e.start += len;
            e.len -= len;
            self.hint = pos;
        }
        self.free_granules -= len;
        Some(start)
    }

    /// Wilderness-style allocation for large objects (the compaction
    /// avoidance of Dimpsey et al. [12], which the paper's collector
    /// builds on): carves `len` granules from the *end* of the
    /// highest-addressed extent that fits, so large objects cluster away
    /// from the small-object allocation front and fragmentation of the
    /// front does not starve large requests.
    pub fn alloc_from_end(&mut self, len: usize) -> Option<usize> {
        debug_assert!(len > 0);
        let pos = (0..self.extents.len())
            .rev()
            .find(|&i| self.extents[i].len >= len)?;
        let e = &mut self.extents[pos];
        let start = e.end() - len;
        if e.len == len {
            self.extents.remove(pos);
        } else {
            e.len -= len;
        }
        self.free_granules -= len;
        Some(start)
    }

    /// Returns an extent to the list, coalescing with address-adjacent
    /// neighbours.
    pub fn free(&mut self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.free_granules += len;
        // binary search for insertion point by start address
        let idx = self.extents.partition_point(|e| e.start < start);
        // check overlap invariants in debug builds
        debug_assert!(
            idx == 0 || self.extents[idx - 1].end() <= start,
            "freeing overlapping extent"
        );
        debug_assert!(
            idx == self.extents.len() || start + len <= self.extents[idx].start,
            "freeing overlapping extent"
        );
        let merge_prev = idx > 0 && self.extents[idx - 1].end() == start;
        let merge_next = idx < self.extents.len() && start + len == self.extents[idx].start;
        match (merge_prev, merge_next) {
            (true, true) => {
                let next_len = self.extents[idx].len;
                self.extents[idx - 1].len += len + next_len;
                self.extents.remove(idx);
            }
            (true, false) => self.extents[idx - 1].len += len,
            (false, true) => {
                self.extents[idx].start = start;
                self.extents[idx].len += len;
            }
            (false, false) => self.extents.insert(idx, Extent { start, len }),
        }
    }

    /// Replaces the contents with `extents`, which must be address-ordered
    /// and non-overlapping (as produced by sweep). Adjacent extents are
    /// coalesced.
    pub fn rebuild<I: IntoIterator<Item = Extent>>(&mut self, extents: I) {
        self.extents.clear();
        self.free_granules = 0;
        for e in extents {
            if e.len == 0 {
                continue;
            }
            debug_assert!(
                self.extents.back().is_none_or(|p| p.end() <= e.start),
                "rebuild input not address-ordered"
            );
            self.free_granules += e.len;
            if let Some(prev) = self.extents.back_mut() {
                if prev.end() == e.start {
                    prev.len += e.len;
                    continue;
                }
            }
            self.extents.push_back(e);
        }
    }

    /// Iterates the extents in address order.
    pub fn iter(&self) -> impl Iterator<Item = Extent> + '_ {
        self.extents.iter().copied()
    }

    /// Replaces the extents verbatim, with no ordering, overlap, or
    /// length checks. Exists so verifier tests can construct corrupted
    /// lists that [`FreeList::rebuild`]'s debug assertions would reject;
    /// never call it from collector code.
    #[doc(hidden)]
    pub fn set_extents_unchecked(&mut self, extents: Vec<Extent>) {
        self.free_granules = extents.iter().map(|e| e.len).sum();
        self.extents = extents.into();
        self.hint = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_and_split() {
        let mut fl = FreeList::with_extent(8, 100);
        assert_eq!(fl.free_granules(), 100);
        assert_eq!(fl.alloc(10), Some(8));
        assert_eq!(fl.alloc(90), Some(18));
        assert_eq!(fl.alloc(1), None);
        assert_eq!(fl.free_granules(), 0);
    }

    #[test]
    fn skips_small_extents() {
        let mut fl = FreeList::new();
        fl.free(10, 4);
        fl.free(100, 50);
        assert_eq!(fl.alloc(20), Some(100));
        // Next-fit continues from the last success, wrapping to reach the
        // small leading extent when nothing later fits.
        assert_eq!(fl.alloc(40), None);
        assert_eq!(fl.alloc(30), Some(120));
        assert_eq!(fl.alloc(4), Some(10));
        assert_eq!(fl.free_granules(), 0);
    }

    #[test]
    fn next_fit_skips_fragmented_prefix() {
        let mut fl = FreeList::new();
        // 1000 tiny fragments then one big extent.
        for i in 0..1000 {
            fl.free(10 + i * 4, 2);
        }
        fl.free(100_000, 10_000);
        assert_eq!(fl.alloc(100), Some(100_000));
        // Subsequent allocations resume at the big extent, not the
        // fragment prefix.
        assert_eq!(fl.alloc(100), Some(100_100));
        assert_eq!(fl.alloc(2), Some(100_200));
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut fl = FreeList::new();
        fl.free(10, 10);
        fl.free(40, 10);
        assert_eq!(fl.extent_count(), 2);
        fl.free(20, 20); // bridges the gap
        assert_eq!(fl.extent_count(), 1);
        assert_eq!(fl.iter().next(), Some(Extent { start: 10, len: 40 }));
        assert_eq!(fl.free_granules(), 40);
    }

    #[test]
    fn free_coalesces_one_side() {
        let mut fl = FreeList::new();
        fl.free(10, 10);
        fl.free(20, 5); // after
        assert_eq!(fl.extent_count(), 1);
        fl.free(5, 5); // before
        assert_eq!(fl.extent_count(), 1);
        assert_eq!(fl.iter().next(), Some(Extent { start: 5, len: 20 }));
    }

    #[test]
    fn rebuild_coalesces_adjacent() {
        let mut fl = FreeList::new();
        fl.rebuild([
            Extent { start: 0, len: 5 },
            Extent { start: 5, len: 5 },
            Extent { start: 20, len: 1 },
            Extent { start: 30, len: 0 },
        ]);
        assert_eq!(fl.extent_count(), 2);
        assert_eq!(fl.free_granules(), 11);
        assert_eq!(fl.largest_extent(), 10);
    }

    #[test]
    fn alloc_from_end_carves_wilderness() {
        let mut fl = FreeList::new();
        fl.free(10, 100); // [10, 110)
        fl.free(200, 50); // [200, 250)
                          // Large allocation comes from the END of the highest extent.
        assert_eq!(fl.alloc_from_end(20), Some(230));
        assert_eq!(fl.alloc_from_end(30), Some(200));
        // [200,250) exhausted: falls back to the earlier extent's end.
        assert_eq!(fl.alloc_from_end(40), Some(70));
        assert_eq!(fl.free_granules(), 60);
        // Small allocations still come from the front.
        assert_eq!(fl.alloc(10), Some(10));
    }

    #[test]
    fn alloc_from_end_exact_fit_removes_extent() {
        let mut fl = FreeList::new();
        fl.free(10, 10);
        assert_eq!(fl.alloc_from_end(10), Some(10));
        assert_eq!(fl.extent_count(), 0);
        assert_eq!(fl.alloc_from_end(1), None);
    }

    #[test]
    fn ends_meet_in_the_middle() {
        // Front (next-fit) and back (wilderness) allocation share one
        // extent without overlapping.
        let mut fl = FreeList::with_extent(0, 100);
        let mut taken = Vec::new();
        loop {
            match (fl.alloc(7), fl.alloc_from_end(9)) {
                (Some(a), Some(b)) => {
                    taken.push((a, 7));
                    taken.push((b, 9));
                }
                (Some(a), None) => {
                    taken.push((a, 7));
                    break;
                }
                (None, Some(b)) => {
                    taken.push((b, 9));
                    break;
                }
                (None, None) => break,
            }
        }
        taken.sort_unstable();
        for w in taken.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
        let total: usize = taken.iter().map(|&(_, l)| l).sum();
        assert_eq!(total + fl.free_granules(), 100);
    }

    #[test]
    fn alloc_free_roundtrip_preserves_total() {
        let mut fl = FreeList::with_extent(1, 1000);
        let a = fl.alloc(100).unwrap();
        let b = fl.alloc(200).unwrap();
        let c = fl.alloc(300).unwrap();
        fl.free(b, 200);
        fl.free(a, 100);
        fl.free(c, 300);
        assert_eq!(fl.free_granules(), 1000);
        assert_eq!(fl.extent_count(), 1, "full coalescing back to one extent");
    }
}
