//! The heap arena: slot storage, allocation caches, and large-object
//! allocation, with the §5.2 batched allocation-bit publication protocol.
//!
//! Since the memory-pressure work, the arena is a set of independently
//! reserved segments behind [`crate::segment::SegmentTable`]: the heap
//! can grow past its initial size up to [`HeapConfig::max_heap_bytes`]
//! ([`Heap::try_grow`], the escalation ladder's rung before OOM) and
//! return entirely-free segments after a trough (the parallel sweep's
//! finish step calls [`Heap::release_empty_segments`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mcgc_membar::sync::Mutex;
use mcgc_membar::{release_fence, FenceKind};

use crate::freelist::Extent;
use crate::object::{Header, ObjectRef, GRANULE_BYTES, MAX_OBJECT_GRANULES};
use crate::segment::{BitKind, HeapBitmap, HeapCards, SegmentTable, SEGMENT_ALIGN_GRANULES};
use crate::shards::{AllocShardStats, ShardedFreeList};
use crate::sweep::{LazySweep, SweepSource};

/// Heap sizing and allocation parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HeapConfig {
    /// Initial heap size in bytes (rounded up to a segment multiple).
    pub heap_bytes: usize,
    /// Allocation-cache size in bytes (paper §2.1: each thread allocates
    /// small objects from its own cache).
    pub cache_bytes: usize,
    /// Objects at least this many bytes are allocated directly from the
    /// free list and fenced individually.
    pub large_object_bytes: usize,
    /// Free runs shorter than this many granules are left as dark matter
    /// instead of going on the free list.
    pub min_free_extent_granules: usize,
    /// Number of free-list shards mutator refills spread over: `0` picks
    /// one per available core, `1` selects the single-lock baseline
    /// allocator (the pre-sharding design, kept for A/B benchmarking).
    pub alloc_shards: usize,
    /// Segment size in bytes (`0` = auto: roughly an eighth of the
    /// initial heap, clamped to [4 KiB, 8 MiB]). Must be a power-of-two
    /// multiple of 4 KiB when set explicitly.
    pub segment_bytes: usize,
    /// Hard heap limit in bytes: [`Heap::try_grow`] commits segments up
    /// to this ceiling. `0` (the default) means the heap cannot grow
    /// past `heap_bytes` — the pre-segmentation behaviour.
    pub max_heap_bytes: usize,
}

impl Default for HeapConfig {
    fn default() -> HeapConfig {
        HeapConfig {
            heap_bytes: 64 << 20,
            cache_bytes: 32 << 10,
            large_object_bytes: 8 << 10,
            min_free_extent_granules: 2,
            alloc_shards: 0,
            segment_bytes: 0,
            max_heap_bytes: 0,
        }
    }
}

impl HeapConfig {
    /// A config with the given heap size and default allocation knobs.
    pub fn with_heap_bytes(heap_bytes: usize) -> HeapConfig {
        HeapConfig {
            heap_bytes,
            ..HeapConfig::default()
        }
    }

    /// Initial heap size in granules.
    pub fn heap_granules(&self) -> usize {
        self.heap_bytes.div_ceil(GRANULE_BYTES)
    }
}

/// The shape of an object to allocate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ObjectShape {
    /// Number of reference slots.
    pub refs: u32,
    /// Number of data granules.
    pub data: u32,
    /// Workload-defined class tag.
    pub class: u8,
}

impl ObjectShape {
    /// An object with `refs` reference slots and `data` data granules.
    pub fn new(refs: u32, data: u32, class: u8) -> ObjectShape {
        ObjectShape { refs, data, class }
    }

    /// Total size in granules including the header.
    pub fn granules(&self) -> usize {
        1 + self.refs as usize + self.data as usize
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> usize {
        self.granules() * GRANULE_BYTES
    }

    fn header(&self) -> Header {
        Header::new(self.refs, self.data, self.class)
    }
}

/// A per-mutator allocation cache (thread-local heap).
///
/// Small objects bump-allocate from the cache; their allocation bits are
/// *not* set until the cache fills (or is retired), at which point one
/// fence publishes the whole batch (§5.2).
#[derive(Debug, Default)]
pub struct AllocCache {
    start: usize,
    cursor: usize,
    end: usize,
    /// Object start granules awaiting allocation-bit publication.
    pending: Vec<u32>,
    /// Free-list shard the last refill succeeded on; tried first next
    /// time so a steadily churning mutator stays on one uncontended lock.
    home: usize,
    /// Refills since the cache was last retired at a safepoint. Sustained
    /// pressure grows the next refill request (adaptive cache sizing), so
    /// allocation-heavy mutators take the refill lock less often.
    pressure: u32,
}

impl AllocCache {
    /// Creates an empty cache (the first allocation will refill it).
    pub fn new() -> AllocCache {
        AllocCache::default()
    }

    /// Granules still available for bump allocation.
    pub fn remaining_granules(&self) -> usize {
        self.end - self.cursor
    }

    /// Number of allocations not yet published.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// True if the cache currently owns no heap region.
    pub fn is_retired(&self) -> bool {
        self.start == self.end
    }

    /// Refills since the last retire (drives adaptive cache growth).
    pub fn refill_pressure(&self) -> u32 {
        self.pressure
    }
}

/// Consecutive refills before the adaptive cache doubles its request.
const REFILL_PRESSURE_WINDOW: u32 = 4;
/// Cap on adaptive growth: at most `base << MAX_CACHE_BOOST` granules.
const MAX_CACHE_BOOST: u32 = 3;
/// Chunks a single refill miss sweeps before re-probing its home shard
/// during a sweep epoch — bounds the latency any one refill absorbs
/// while keeping per-allocator reclamation proportional to demand.
const REFILL_SWEEP_BATCH: usize = 4;

/// Why an allocation request could not be satisfied.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The free list has no extent large enough; a GC (or more sweeping)
    /// is required.
    OutOfMemory {
        /// Bytes the failing request asked for.
        requested_bytes: u64,
        /// Heap occupancy when the request failed, in permille of
        /// committed granules (see [`Heap::occupancy`]).
        occupancy_permille: u16,
        /// Segments committed when the request failed.
        segments_committed: u16,
        /// Hard-limit segment capacity.
        segments_max: u16,
        /// Bitmask of committed segments (bit `i` = segment `i`; the
        /// first 64 — higher indices are summarized by the counts).
        segment_map: u64,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested_bytes,
                occupancy_permille,
                segments_committed,
                segments_max,
                segment_map,
            } => write!(
                f,
                "heap exhausted: requested {requested_bytes} B with heap {}.{}% occupied \
                 ({segments_committed}/{segments_max} segments committed, map {segment_map:#x})",
                occupancy_permille / 10,
                occupancy_permille % 10
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// A point-in-time snapshot of the segment table (telemetry, OOM
/// reports, the heap inspector).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment size in bytes.
    pub seg_bytes: usize,
    /// Segments currently committed.
    pub committed: usize,
    /// Most segments ever committed at once.
    pub peak: usize,
    /// Segments committed at construction (the floor; never released).
    pub initial: usize,
    /// Hard-limit segment capacity.
    pub max: usize,
    /// Total grow (commit) events.
    pub grows: u64,
    /// Total shrink (release) events.
    pub shrinks: u64,
}

/// Cumulative sweep accounting: how many chunks each claiming path paid
/// for and where reclaimed granules came from, split by whether the
/// reclamation happened on the pause path (eager in-pause sweeps and the
/// pre-pause straggler fence) or entirely off it (refill, background,
/// escalation-ladder sweeping).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepCounters {
    /// Chunks swept by allocation-cache refills (sweep-on-refill).
    pub refill_chunks: u64,
    /// Chunks drained by the background sweeper.
    pub bg_chunks: u64,
    /// Chunks the next cycle's straggler fence had to finish.
    pub straggler_chunks: u64,
    /// Chunks swept by the mutator escalation ladder (and tests).
    pub escalation_chunks: u64,
    /// Granules reclaimed on the pause path (eager sweeps + stragglers).
    pub on_pause_granules: u64,
    /// Granules reclaimed concurrently with the mutators.
    pub off_pause_granules: u64,
}

#[derive(Debug, Default)]
struct SweepTotals {
    refill_chunks: AtomicU64,
    bg_chunks: AtomicU64,
    straggler_chunks: AtomicU64,
    escalation_chunks: AtomicU64,
    on_pause_granules: AtomicU64,
    off_pause_granules: AtomicU64,
}

/// The shared heap: segmented slot arena, bitmaps, card table, and the
/// sharded free-space substrate.
///
/// All slot accesses are atomic (the mutators and the concurrent tracer
/// race by design, exactly the surface the paper's protocols manage);
/// orderings are `Relaxed` except where a §5 protocol requires a fence,
/// which is routed through [`mcgc_membar`] so it is counted.
pub struct Heap {
    config: HeapConfig,
    table: Arc<SegmentTable>,
    alloc_bits: HeapBitmap,
    mark_bits: HeapBitmap,
    cards: HeapCards,
    free: ShardedFreeList,
    bytes_allocated: AtomicU64,
    objects_allocated: AtomicU64,
    /// Granules lost to sub-minimum free runs in the last sweep.
    dark_granules: AtomicU64,
    /// The active sweep epoch, if any: installed by the collector at
    /// pause end, drained off-pause by refills / the background sweeper /
    /// the escalation ladder, and retired once every chunk is done.
    lazy: Mutex<Option<Arc<LazySweep>>>,
    /// Mirrors `lazy.is_some()` so the refill fast path pays one relaxed
    /// load (not a lock) when no epoch is in flight.
    lazy_active: AtomicBool,
    /// Cumulative sweep accounting (see [`SweepCounters`]).
    sweep_totals: SweepTotals,
}

/// Picks the segment size in granules: the explicit knob, or roughly an
/// eighth of the initial heap so small test heaps still exercise several
/// segments, clamped to [4 KiB, 8 MiB].
fn pick_segment_granules(config: &HeapConfig, total_granules: usize) -> usize {
    const MAX_SEG_GRANULES: usize = 1 << 20; // 8 MiB
    if config.segment_bytes > 0 {
        let sg = config.segment_bytes / GRANULE_BYTES;
        assert!(
            sg.is_power_of_two() && sg >= SEGMENT_ALIGN_GRANULES,
            "segment_bytes must be a power of two and at least {} bytes",
            SEGMENT_ALIGN_GRANULES * GRANULE_BYTES
        );
        return sg;
    }
    (total_granules / 8)
        .next_power_of_two()
        .clamp(SEGMENT_ALIGN_GRANULES, MAX_SEG_GRANULES)
}

impl Heap {
    /// Creates a heap of `config.heap_bytes` bytes (rounded up to a
    /// whole number of segments). Granule 0 is reserved (the null
    /// encoding), so usable space starts at granule 1.
    ///
    /// # Panics
    /// Panics if the heap is smaller than one allocation cache or larger
    /// than the 32 GiB the 32-bit granule index addresses.
    pub fn new(config: HeapConfig) -> Heap {
        let requested = config.heap_granules();
        assert!(
            requested > config.cache_bytes / GRANULE_BYTES,
            "heap smaller than one allocation cache"
        );
        let sg = pick_segment_granules(&config, requested);
        let granules = requested.next_multiple_of(sg);
        let max_granules = config
            .max_heap_bytes
            .div_ceil(GRANULE_BYTES)
            .max(granules)
            .next_multiple_of(sg);
        assert!(max_granules <= u32::MAX as usize, "heap exceeds 32 GiB");
        let table = Arc::new(SegmentTable::new(granules / sg, sg, max_granules / sg));
        let shards = match config.alloc_shards {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            n => n,
        };
        // Stripes hold many refills' worth of granules so a mutator's
        // whole retire/refill working set tends to stay inside one stripe
        // — and therefore one shard — keeping its home-shard hit rate
        // high and its lock traffic off the other shards.
        let stripe = 64 * (config.cache_bytes / GRANULE_BYTES).max(1);
        let free = ShardedFreeList::new(shards, stripe);
        free.rebuild([Extent {
            start: 1,
            len: granules - 1,
        }]);
        Heap {
            alloc_bits: HeapBitmap::new(Arc::clone(&table), BitKind::Alloc),
            mark_bits: HeapBitmap::new(Arc::clone(&table), BitKind::Mark),
            cards: HeapCards::new(Arc::clone(&table)),
            table,
            free,
            config,
            bytes_allocated: AtomicU64::new(0),
            objects_allocated: AtomicU64::new(0),
            dark_granules: AtomicU64::new(0),
            lazy: Mutex::new(None),
            lazy_active: AtomicBool::new(false),
            sweep_totals: SweepTotals::default(),
        }
    }

    /// The heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Granule-space extent: one past the highest committed segment's
    /// last granule (including reserved granule 0 and any holes left by
    /// shrinking). Monotone — it never decreases, so bitmap and card
    /// walks sized off it stay in bounds across a shrink.
    pub fn granules(&self) -> usize {
        self.table.frontier_granules()
    }

    /// Committed heap size in bytes (holes excluded).
    pub fn total_bytes(&self) -> usize {
        self.table.committed_granules() * GRANULE_BYTES
    }

    /// Segment size in granules.
    pub fn segment_granules(&self) -> usize {
        self.table.seg_granules()
    }

    /// A snapshot of the segment table's counters.
    pub fn segment_stats(&self) -> SegmentStats {
        SegmentStats {
            seg_bytes: self.table.seg_granules() * GRANULE_BYTES,
            committed: self.table.segments_committed(),
            peak: self.table.segments_peak(),
            initial: self.table.initial_segments(),
            max: self.table.max_segments(),
            grows: self.table.grow_count(),
            shrinks: self.table.shrink_count(),
        }
    }

    /// Bitmask of committed segments (bit `i` = segment `i`).
    pub fn segment_map(&self) -> u64 {
        self.table.segment_map()
    }

    /// True if granule range `[start, start + len)` lies entirely in
    /// committed segments.
    pub fn is_range_mapped(&self, start: usize, len: usize) -> bool {
        self.table.is_range_mapped(start, len)
    }

    /// The maximal committed subranges of granule range `[start, end)`,
    /// in address order (sweep iterates these so free extents never span
    /// a hole).
    pub fn mapped_ranges(&self, start: usize, end: usize) -> Vec<(usize, usize)> {
        self.table.mapped_ranges(start, end)
    }

    /// Free bytes currently on the free list (excludes space inside live
    /// allocation caches and dark matter). Reads the substrate's relaxed
    /// atomic counter — no lock, so the pacer may poll it on every
    /// allocation slow path without contending with refills.
    pub fn free_bytes(&self) -> usize {
        self.free.free_granules() * GRANULE_BYTES
    }

    /// Number of extents on the free list (diagnostics; takes each shard
    /// lock once).
    pub fn free_extent_count(&self) -> usize {
        self.free.extent_count()
    }

    /// Largest free extent, in bytes.
    pub fn largest_free_bytes(&self) -> usize {
        self.free.largest_extent() * GRANULE_BYTES
    }

    /// Cumulative shard contention / refill-steal statistics.
    pub fn alloc_stats(&self) -> AllocShardStats {
        self.free.stats()
    }

    /// Granules lost to dark matter in the last sweep.
    pub fn dark_bytes(&self) -> usize {
        self.dark_granules.load(Ordering::Relaxed) as usize * GRANULE_BYTES
    }

    pub(crate) fn set_dark_granules(&self, g: u64) {
        self.dark_granules.store(g, Ordering::Relaxed);
    }

    /// Total bytes ever allocated.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Total objects ever allocated.
    pub fn objects_allocated(&self) -> u64 {
        self.objects_allocated.load(Ordering::Relaxed)
    }

    /// The allocation bit vector (one bit per granule; set = object
    /// header, published per §5.2).
    pub fn alloc_bits(&self) -> &HeapBitmap {
        &self.alloc_bits
    }

    /// The mark bit vector.
    pub fn mark_bits(&self) -> &HeapBitmap {
        &self.mark_bits
    }

    /// The card table.
    pub fn cards(&self) -> &HeapCards {
        &self.cards
    }

    /// The sharded free-space substrate (sweep rebuild, lazy-sweep frees,
    /// verification, diagnostics).
    pub fn free_list(&self) -> &ShardedFreeList {
        &self.free
    }

    // ------------------------------------------------------------------
    // sweep epochs
    // ------------------------------------------------------------------

    /// Publishes `plan` as the active sweep epoch. Called by the
    /// collector at pause end (instead of sweeping in the pause); from
    /// here on, refills that miss the free list claim and sweep chunks
    /// for themselves ([`Heap::refill_cache`]).
    pub fn install_lazy_plan(&self, plan: Arc<LazySweep>) {
        *self.lazy.lock() = Some(plan);
        self.lazy_active.store(true, Ordering::Release);
    }

    /// The active sweep epoch, if any. One relaxed-ish flag check on the
    /// miss-free path; the lock is only taken while an epoch is live.
    pub fn lazy_plan(&self) -> Option<Arc<LazySweep>> {
        if !self.lazy_active.load(Ordering::Acquire) {
            return None;
        }
        self.lazy.lock().clone()
    }

    /// True while a sweep epoch is in flight.
    pub fn lazy_plan_active(&self) -> bool {
        self.lazy_active.load(Ordering::Acquire)
    }

    /// Retires the active epoch if every chunk has completed, returning
    /// the retired plan (so the collector can clear mark bits and log the
    /// retirement exactly once — the take is atomic under the slot lock).
    pub fn take_lazy_plan_if_done(&self) -> Option<Arc<LazySweep>> {
        let mut g = self.lazy.lock();
        if g.as_ref().is_some_and(|p| p.is_done()) {
            self.lazy_active.store(false, Ordering::Release);
            g.take()
        } else {
            None
        }
    }

    /// Cumulative sweep accounting across all epochs and eager sweeps.
    pub fn sweep_counters(&self) -> SweepCounters {
        let t = &self.sweep_totals;
        SweepCounters {
            refill_chunks: t.refill_chunks.load(Ordering::Relaxed),
            bg_chunks: t.bg_chunks.load(Ordering::Relaxed),
            straggler_chunks: t.straggler_chunks.load(Ordering::Relaxed),
            escalation_chunks: t.escalation_chunks.load(Ordering::Relaxed),
            on_pause_granules: t.on_pause_granules.load(Ordering::Relaxed),
            off_pause_granules: t.off_pause_granules.load(Ordering::Relaxed),
        }
    }

    /// Charges one lazily swept chunk (and its reclaimed granules) to
    /// the claiming path's counters.
    pub(crate) fn note_lazy_chunk(&self, source: SweepSource, freed_granules: u64) {
        let t = &self.sweep_totals;
        let (chunks, granules) = match source {
            SweepSource::Refill => (&t.refill_chunks, &t.off_pause_granules),
            SweepSource::Background => (&t.bg_chunks, &t.off_pause_granules),
            SweepSource::Straggler => (&t.straggler_chunks, &t.on_pause_granules),
            SweepSource::Escalation => (&t.escalation_chunks, &t.off_pause_granules),
        };
        chunks.fetch_add(1, Ordering::Relaxed);
        granules.fetch_add(freed_granules, Ordering::Relaxed);
    }

    /// Charges an eager (in-pause) sweep's reclaimed granules.
    pub(crate) fn note_eager_sweep_granules(&self, freed_granules: u64) {
        self.sweep_totals
            .on_pause_granules
            .fetch_add(freed_granules, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // growth and shrink
    // ------------------------------------------------------------------

    /// Commits one more segment and puts its granules on the free list.
    /// This is the escalation ladder's grow rung: fallible by design —
    /// the hard limit ([`HeapConfig::max_heap_bytes`]) or an injected
    /// `heap.segment_reserve` fault (the `mmap`-failure analogue) makes
    /// it return `false`, and the caller escalates toward typed OOM.
    pub fn try_grow(&self) -> bool {
        if self.table.segments_committed() >= self.table.max_segments() {
            return false; // hard limit reached
        }
        if mcgc_fault::point!("heap.segment_reserve") {
            return false; // injected reservation failure
        }
        let Some(si) = self.table.commit_one() else {
            return false;
        };
        // The whole fresh segment is free space. (Granule 0 lives in
        // segment 0, which is initial — grown segments reserve nothing.)
        let sg = self.table.seg_granules();
        self.free.free(si * sg, sg);
        true
    }

    /// Releases every non-initial segment whose granules are entirely
    /// covered by `extents` (the address-ordered free-extent list a
    /// sweep is about to install), removing the released ranges from
    /// `extents`. Returns the number of segments released.
    ///
    /// Must run under stop-the-world, after every allocation cache has
    /// been retired — the only context where "entirely free" is stable.
    /// The release itself is fallible (`heap.segment_release`, the
    /// `munmap`-failure analogue): a failed release keeps the segment
    /// and its free extents.
    ///
    /// Epoch-aware: a segment is only "empty" once the active sweep
    /// epoch (if any) has swept every chunk overlapping it. Until then
    /// its dead granules are invisible to the free list, so an
    /// apparently fully-covered segment could still gain extents — and a
    /// release now would have those extents later freed into a hole.
    /// Segments outside the epoch's mapped snapshot (grown after the
    /// pause) are vacuously swept and remain releasable.
    pub(crate) fn release_empty_segments(&self, extents: &mut Vec<Extent>) -> usize {
        let sg = self.table.seg_granules();
        let plan = self.lazy_plan();
        let mut released = 0;
        for si in self.table.initial_segments()..self.table.frontier() {
            if self.table.seg(si).is_none() {
                continue;
            }
            let base = si * sg;
            if covered_granules(extents, base, base + sg) < sg {
                continue;
            }
            if let Some(p) = &plan {
                if !p.range_fully_swept(base, base + sg) {
                    continue; // unswept in the previous epoch: not empty yet
                }
            }
            if mcgc_fault::point!("heap.segment_release") {
                continue; // injected release failure: segment stays
            }
            subtract_range(extents, base, base + sg);
            self.table.release(si);
            released += 1;
        }
        released
    }

    /// Releases every non-initial segment whose granules sit entirely on
    /// the free list right now. The eager sweep paths release inline
    /// while rebuilding the free list; this is the stop-the-world
    /// release point for the lazy path, where freed extents accumulate
    /// incrementally and the next pause is the first moment "entirely
    /// free" is stable. Same contract as
    /// [`Heap::release_empty_segments`]: world stopped, caches retired.
    /// An in-flight sweep epoch is tolerated — segments it has not fully
    /// swept are skipped (they are not provably empty yet), and its
    /// mapped-range snapshot stays consistent because only fully swept
    /// or never-snapshotted segments can be released.
    pub fn release_empty_free_segments(&self) -> usize {
        let mut extents = self.free.extents_sorted();
        let released = self.release_empty_segments(&mut extents);
        if released > 0 {
            self.free.rebuild(extents);
        }
        released
    }

    // ------------------------------------------------------------------
    // slot access
    // ------------------------------------------------------------------

    /// The slot holding global granule `idx`.
    ///
    /// # Panics
    /// Panics if `idx` lies in an unmapped segment (a dangling granule
    /// index — no live object can exist in a hole).
    #[inline]
    fn slot(&self, idx: usize) -> &AtomicU64 {
        let (s, off) = self
            .table
            .seg_of_granule(idx)
            .expect("slot access in unmapped segment");
        s.slot(off)
    }

    /// Reads the header of `obj`.
    #[inline]
    pub fn header(&self, obj: ObjectRef) -> Header {
        Header::decode(self.slot(obj.index()).load(Ordering::Relaxed))
    }

    /// Loads reference slot `slot` of `obj`.
    ///
    /// # Panics
    /// Debug-asserts `slot` is within the object's reference slots.
    #[inline]
    pub fn load_ref(&self, obj: ObjectRef, slot: u32) -> Option<ObjectRef> {
        debug_assert!(slot < self.header(obj).ref_count, "ref slot out of range");
        ObjectRef::decode(
            self.slot(obj.index() + 1 + slot as usize)
                .load(Ordering::Relaxed),
        )
    }

    /// Stores into reference slot `slot` of `obj` **without a write
    /// barrier**. The collector's write barrier (in `mcgc-core`) wraps
    /// this; workloads must go through the barrier during concurrent
    /// collection.
    #[inline]
    pub fn store_ref_unbarriered(&self, obj: ObjectRef, slot: u32, value: Option<ObjectRef>) {
        debug_assert!(slot < self.header(obj).ref_count, "ref slot out of range");
        self.slot(obj.index() + 1 + slot as usize)
            .store(ObjectRef::encode(value), Ordering::Relaxed);
    }

    /// Loads data granule `idx` of `obj`.
    #[inline]
    pub fn load_data(&self, obj: ObjectRef, idx: u32) -> u64 {
        let h = self.header(obj);
        debug_assert!(idx < h.data_count(), "data slot out of range");
        self.slot(obj.index() + 1 + h.ref_count as usize + idx as usize)
            .load(Ordering::Relaxed)
    }

    /// Stores data granule `idx` of `obj` (no barrier needed: data slots
    /// hold no references).
    #[inline]
    pub fn store_data(&self, obj: ObjectRef, idx: u32, value: u64) {
        let h = self.header(obj);
        debug_assert!(idx < h.data_count(), "data slot out of range");
        self.slot(obj.index() + 1 + h.ref_count as usize + idx as usize)
            .store(value, Ordering::Relaxed);
    }

    /// Calls `f` for each non-null reference in `obj`'s reference slots,
    /// returning the number of slots scanned.
    #[inline]
    pub fn scan_refs(&self, obj: ObjectRef, mut f: impl FnMut(ObjectRef)) -> u32 {
        let h = self.header(obj);
        let base = obj.index() + 1;
        for i in 0..h.ref_count as usize {
            if let Some(r) = ObjectRef::decode(self.slot(base + i).load(Ordering::Relaxed)) {
                f(r);
            }
        }
        h.ref_count
    }

    // ------------------------------------------------------------------
    // marking
    // ------------------------------------------------------------------

    /// Atomically marks `obj`; returns `true` if this call won (the object
    /// was previously unmarked).
    #[inline]
    pub fn mark(&self, obj: ObjectRef) -> bool {
        self.mark_bits.set(obj.index())
    }

    /// True if `obj` is marked.
    #[inline]
    pub fn is_marked(&self, obj: ObjectRef) -> bool {
        self.mark_bits.get(obj.index())
    }

    /// True if `obj`'s allocation bit has been published (§5.2 "safe").
    #[inline]
    pub fn is_published(&self, obj: ObjectRef) -> bool {
        self.alloc_bits.get(obj.index())
    }

    // ------------------------------------------------------------------
    // allocation
    // ------------------------------------------------------------------

    /// Allocates a small object from `cache`, bump-style. Returns `None`
    /// if the cache has insufficient space (caller refills via
    /// [`Heap::refill_cache`]) — large objects must use
    /// [`Heap::alloc_large`].
    ///
    /// The new object's granules are zeroed and its header written; its
    /// allocation bit is *pending* until the batch is published.
    pub fn alloc_small(&self, cache: &mut AllocCache, shape: ObjectShape) -> Option<ObjectRef> {
        let need = shape.granules();
        debug_assert!(need <= MAX_OBJECT_GRANULES);
        if cache.end - cache.cursor < need {
            return None;
        }
        let start = cache.cursor;
        cache.cursor += need;
        self.format_object(start, shape);
        cache.pending.push(start as u32);
        self.bytes_allocated
            .fetch_add(shape.bytes() as u64, Ordering::Relaxed);
        self.objects_allocated.fetch_add(1, Ordering::Relaxed);
        Some(ObjectRef::from_granule(start as u32))
    }

    /// Publishes `cache`'s pending allocations: one release fence, then
    /// the allocation bits (§5.2 mutator steps 2–3).
    pub fn publish_cache(&self, cache: &mut AllocCache) {
        if cache.pending.is_empty() {
            return;
        }
        release_fence(FenceKind::AllocBatch);
        for &g in &cache.pending {
            self.alloc_bits.set(g as usize);
        }
        cache.pending.clear();
    }

    /// Publishes pending allocations, then replaces `cache`'s region with
    /// a fresh extent from the free-list substrate (home shard first,
    /// stealing round-robin, wilderness last). The unused tail of the old
    /// region is returned first. Returns `false` if no shard can supply a
    /// new cache (time to collect).
    ///
    /// `min_granules` is the size of the allocation that prompted the
    /// refill; the new cache is at least that big even if the configured
    /// cache size is unavailable. Sustained refill pressure (no retire
    /// since several refills) grows the request up to 8x the configured
    /// cache size, so allocation-heavy mutators visit the substrate less
    /// often.
    pub fn refill_cache(&self, cache: &mut AllocCache, min_granules: usize) -> bool {
        if mcgc_fault::point!("heap.refill") {
            // Injected refill failure: report the free list exhausted
            // without touching the cache, driving the caller onto the
            // allocation-failure escalation ladder.
            return false;
        }
        self.release_cache_region(cache);
        cache.pressure = cache.pressure.saturating_add(1);
        let base = (self.config.cache_bytes / GRANULE_BYTES).max(1);
        let boost = (cache.pressure / REFILL_PRESSURE_WINDOW).min(MAX_CACHE_BOOST);
        let want = (base << boost).max(min_granules);
        // During a sweep epoch the refill path self-serves: a miss claims
        // and sweeps unswept chunks (whose extents are routed back across
        // the shards by address) before raiding other shards, so
        // reclamation cost lands on the allocators that need the memory.
        // The plan is fetched once; `None` keeps the pre-epoch fast path.
        let plan = self.lazy_plan();
        // Prefer a full-size cache; fall back to halves so a fragmented
        // heap still yields a usable cache before we give up.
        let mut size = want;
        loop {
            if let Some(start) = self.free.alloc_local(size, cache.home) {
                cache.start = start;
                cache.cursor = start;
                cache.end = start + size;
                return true;
            }
            // Home shard empty: pay for a bounded batch of sweeping
            // before stealing, then retry the home bins (the swept
            // extents land there in proportion to the stripe layout).
            if let Some(p) = &plan {
                let mut swept = false;
                for _ in 0..REFILL_SWEEP_BATCH {
                    if p.sweep_one_from(self, SweepSource::Refill).is_none() {
                        break;
                    }
                    swept = true;
                }
                if swept {
                    continue;
                }
            }
            if let Some(start) = self.free.alloc(size, &mut cache.home) {
                cache.start = start;
                cache.cursor = start;
                cache.end = start + size;
                return true;
            }
            if size == min_granules {
                return false;
            }
            size = (size / 2).max(min_granules);
        }
    }

    /// Publishes pending allocations and returns the cache's unused tail
    /// to the free list, leaving the cache empty. Mutators retire their
    /// caches at safepoints so sweep sees a consistent heap; retiring also
    /// resets the adaptive-sizing pressure, so cache growth reflects
    /// refill rate *between* safepoints.
    pub fn retire_cache(&self, cache: &mut AllocCache) {
        self.release_cache_region(cache);
        cache.pressure = 0;
    }

    /// Publishes and gives back the cache's region without resetting the
    /// refill-pressure counter (refills call this; only a real safepoint
    /// retire resets pressure).
    fn release_cache_region(&self, cache: &mut AllocCache) {
        self.publish_cache(cache);
        if cache.cursor < cache.end {
            self.free.free(cache.cursor, cache.end - cache.cursor);
        }
        cache.start = 0;
        cache.cursor = 0;
        cache.end = 0;
    }

    /// Allocates a large object directly from the wilderness bin,
    /// publishing its allocation bit immediately with an individual
    /// fence. Large objects carve from the high end of the heap
    /// (wilderness preservation, per the compaction-avoidance design [12]
    /// the collector builds on) so the small-object allocation front
    /// cannot starve them through fragmentation.
    ///
    /// # Errors
    /// Returns [`AllocError::OutOfMemory`] if no extent is large enough.
    pub fn alloc_large(&self, shape: ObjectShape) -> Result<ObjectRef, AllocError> {
        let need = shape.granules();
        if mcgc_fault::point!("heap.alloc_large") {
            return Err(self.oom_error(shape.bytes() as u64));
        }
        let start = match self.free.alloc_from_end(need) {
            Some(start) => start,
            // Self-serve from an in-flight sweep epoch, exactly like
            // `refill_cache`: a large allocation that fails mid-epoch must
            // drain unswept chunks before reporting OOM, or the ladder
            // escalates to a stop-the-world cycle while most of the heap's
            // free space is still invisible in unswept chunks.
            None => loop {
                let Some(plan) = self.lazy_plan() else {
                    return Err(self.oom_error(shape.bytes() as u64));
                };
                let mut swept = false;
                for _ in 0..REFILL_SWEEP_BATCH {
                    if plan.sweep_one_from(self, SweepSource::Refill).is_none() {
                        break;
                    }
                    swept = true;
                }
                if let Some(start) = self.free.alloc_from_end(need) {
                    break start;
                }
                if !swept {
                    return Err(self.oom_error(shape.bytes() as u64));
                }
            },
        };
        self.format_object(start, shape);
        release_fence(FenceKind::LargeAlloc);
        self.alloc_bits.set(start);
        self.bytes_allocated
            .fetch_add(shape.bytes() as u64, Ordering::Relaxed);
        self.objects_allocated.fetch_add(1, Ordering::Relaxed);
        Ok(ObjectRef::from_granule(start as u32))
    }

    /// True if an object of `shape` takes the large-object path.
    pub fn is_large(&self, shape: ObjectShape) -> bool {
        shape.bytes() >= self.config.large_object_bytes
    }

    fn format_object(&self, start: usize, shape: ObjectShape) {
        let n = shape.granules();
        debug_assert!(start > 0 && start + n <= self.granules());
        if let Some((seg, off)) = self.table.seg_of_granule(start) {
            if off + n <= self.table.seg_granules() {
                // Fast path: the object lies inside one segment.
                seg.slot(off)
                    .store(shape.header().encode(), Ordering::Relaxed);
                for i in 1..n {
                    seg.slot(off + i).store(0, Ordering::Relaxed);
                }
                return;
            }
        }
        // The object spans adjacent committed segments (free extents can
        // cross segment boundaries, holes never sit inside one).
        self.slot(start)
            .store(shape.header().encode(), Ordering::Relaxed);
        for i in 1..n {
            self.slot(start + i).store(0, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // cycle bookkeeping
    // ------------------------------------------------------------------

    /// Clears mark bits and the card table for a new collection cycle.
    /// Must run at a safepoint (collector initialization, §2.1).
    pub fn begin_cycle(&self) {
        self.mark_bits.clear_all();
        self.cards.clear_all();
    }

    /// Approximate heap occupancy in `[0, 1]`: allocated fraction of the
    /// *committed* granules (free-list space and dark matter excluded
    /// from the numerator; holes excluded from the denominator).
    /// Lock-free: reads the substrate's relaxed free-granule counter.
    pub fn occupancy(&self) -> f64 {
        let total = self.table.committed_granules() as f64;
        let free = self.free.free_granules() as f64;
        (total - free) / total
    }

    /// Builds the contextful out-of-memory error for a failed request of
    /// `requested_bytes`, capturing current occupancy and the segment
    /// map. Reads only atomic counters: the allocator is already in a
    /// failure path, and OOM reporting must not contend on the very
    /// locks whose exhaustion it is describing.
    pub fn oom_error(&self, requested_bytes: u64) -> AllocError {
        AllocError::OutOfMemory {
            requested_bytes,
            occupancy_permille: (self.occupancy() * 1000.0).round().clamp(0.0, 1000.0) as u16,
            segments_committed: self.table.segments_committed().min(u16::MAX as usize) as u16,
            segments_max: self.table.max_segments().min(u16::MAX as usize) as u16,
            segment_map: self.table.segment_map(),
        }
    }
}

/// Granules of `[start, end)` covered by the address-ordered `extents`.
fn covered_granules(extents: &[Extent], start: usize, end: usize) -> usize {
    let mut n = 0;
    for e in extents {
        if e.start >= end {
            break;
        }
        let s = e.start.max(start);
        let t = (e.start + e.len).min(end);
        if t > s {
            n += t - s;
        }
    }
    n
}

/// Removes granule range `[start, end)` from the address-ordered
/// `extents`, splitting extents that straddle a boundary.
fn subtract_range(extents: &mut Vec<Extent>, start: usize, end: usize) {
    let mut out = Vec::with_capacity(extents.len() + 1);
    for e in extents.drain(..) {
        let e_end = e.start + e.len;
        if e_end <= start || e.start >= end {
            out.push(e);
            continue;
        }
        if e.start < start {
            out.push(Extent {
                start: e.start,
                len: start - e.start,
            });
        }
        if e_end > end {
            out.push(Extent {
                start: end,
                len: e_end - end,
            });
        }
    }
    *extents = out;
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("granules", &self.granules())
            .field("segments", &self.table.segments_committed())
            .field("free_bytes", &self.free_bytes())
            .field("bytes_allocated", &self.bytes_allocated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_heap() -> Heap {
        Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            cache_bytes: 4 << 10,
            large_object_bytes: 1 << 10,
            min_free_extent_granules: 2,
            alloc_shards: 4,
            segment_bytes: 0,
            max_heap_bytes: 0,
        })
    }

    fn growable_heap() -> Heap {
        Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            max_heap_bytes: 2 << 20,
            cache_bytes: 4 << 10,
            large_object_bytes: 1 << 10,
            min_free_extent_granules: 2,
            alloc_shards: 4,
            segment_bytes: 0,
        })
    }

    #[test]
    fn alloc_small_through_cache() {
        let heap = small_heap();
        let mut cache = AllocCache::new();
        let shape = ObjectShape::new(2, 3, 9);
        assert!(heap.alloc_small(&mut cache, shape).is_none(), "empty cache");
        assert!(heap.refill_cache(&mut cache, shape.granules()));
        let obj = heap.alloc_small(&mut cache, shape).unwrap();
        let h = heap.header(obj);
        assert_eq!(h.ref_count, 2);
        assert_eq!(h.data_count(), 3);
        assert_eq!(h.class_id, 9);
        assert_eq!(heap.load_ref(obj, 0), None);
        assert_eq!(heap.load_data(obj, 2), 0);
        assert!(!heap.is_published(obj), "bit pending until publish");
        heap.publish_cache(&mut cache);
        assert!(heap.is_published(obj));
    }

    #[test]
    fn cache_refill_consumes_free_list() {
        let heap = small_heap();
        let mut cache = AllocCache::new();
        let before = heap.free_bytes();
        assert!(heap.refill_cache(&mut cache, 1));
        assert_eq!(heap.free_bytes(), before - (4 << 10));
        assert_eq!(cache.remaining_granules(), (4 << 10) / GRANULE_BYTES);
    }

    #[test]
    fn retire_returns_tail() {
        let heap = small_heap();
        let mut cache = AllocCache::new();
        assert!(heap.refill_cache(&mut cache, 1));
        let shape = ObjectShape::new(0, 7, 0); // 8 granules
        let obj = heap.alloc_small(&mut cache, shape).unwrap();
        let free_before = heap.free_bytes();
        heap.retire_cache(&mut cache);
        assert_eq!(
            heap.free_bytes(),
            free_before + (4 << 10) - shape.bytes(),
            "tail returned, allocated object kept"
        );
        assert!(cache.is_retired());
        assert!(heap.is_published(obj), "retire publishes pending bits");
    }

    #[test]
    fn alloc_large_publishes_immediately() {
        let heap = small_heap();
        let shape = ObjectShape::new(1, 200, 3); // 1616 bytes >= large threshold
        assert!(heap.is_large(shape));
        let obj = heap.alloc_large(shape).unwrap();
        assert!(heap.is_published(obj));
        assert_eq!(heap.header(obj).data_count(), 200);
    }

    #[test]
    fn alloc_large_oom() {
        let heap = small_heap();
        let too_big = ObjectShape::new(0, (heap.granules() + 10) as u32, 0);
        let err = heap.alloc_large(too_big).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        let msg = err.to_string();
        assert!(msg.contains("requested"), "{msg}");
        assert!(msg.contains("segments committed"), "{msg}");
    }

    #[test]
    fn refs_store_and_load() {
        let heap = small_heap();
        let mut cache = AllocCache::new();
        heap.refill_cache(&mut cache, 1);
        let a = heap
            .alloc_small(&mut cache, ObjectShape::new(2, 0, 0))
            .unwrap();
        let b = heap
            .alloc_small(&mut cache, ObjectShape::new(0, 1, 0))
            .unwrap();
        heap.store_ref_unbarriered(a, 0, Some(b));
        assert_eq!(heap.load_ref(a, 0), Some(b));
        assert_eq!(heap.load_ref(a, 1), None);
        let mut seen = Vec::new();
        heap.scan_refs(a, |r| seen.push(r));
        assert_eq!(seen, vec![b]);
        heap.store_ref_unbarriered(a, 0, None);
        assert_eq!(heap.load_ref(a, 0), None);
    }

    #[test]
    fn marking_is_idempotent_and_raced() {
        let heap = small_heap();
        let mut cache = AllocCache::new();
        heap.refill_cache(&mut cache, 1);
        let a = heap
            .alloc_small(&mut cache, ObjectShape::new(0, 0, 0))
            .unwrap();
        assert!(!heap.is_marked(a));
        assert!(heap.mark(a));
        assert!(!heap.mark(a));
        assert!(heap.is_marked(a));
        heap.begin_cycle();
        assert!(!heap.is_marked(a));
    }

    #[test]
    fn counters_accumulate() {
        let heap = small_heap();
        let mut cache = AllocCache::new();
        heap.refill_cache(&mut cache, 1);
        let shape = ObjectShape::new(1, 1, 0);
        for _ in 0..10 {
            heap.alloc_small(&mut cache, shape).unwrap();
        }
        assert_eq!(heap.objects_allocated(), 10);
        assert_eq!(heap.bytes_allocated(), 10 * shape.bytes() as u64);
    }

    #[test]
    fn zeroes_recycled_memory() {
        let heap = small_heap();
        let mut cache = AllocCache::new();
        heap.refill_cache(&mut cache, 1);
        let a = heap
            .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
            .unwrap();
        heap.store_data(a, 0, 0xDEAD);
        heap.retire_cache(&mut cache);
        // Reallocate over the same region.
        heap.free_list().rebuild([crate::freelist::Extent {
            start: 1,
            len: heap.granules() - 1,
        }]);
        heap.refill_cache(&mut cache, 1);
        let b = heap
            .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
            .unwrap();
        assert_eq!(b, a, "bump allocation reuses the region");
        assert_eq!(heap.load_data(b, 0), 0, "granules zeroed at allocation");
    }

    #[test]
    fn is_large_boundary() {
        let heap = small_heap(); // large threshold 1 KiB = 128 granules
        let small = ObjectShape::new(0, 126, 0); // 127 granules = 1016 B
        let large = ObjectShape::new(0, 127, 0); // 128 granules = 1024 B
        assert!(!heap.is_large(small));
        assert!(heap.is_large(large));
    }

    #[test]
    fn occupancy_tracks_allocation() {
        let heap = small_heap();
        let initial = heap.occupancy();
        assert!(initial < 0.01, "fresh heap nearly empty: {initial}");
        let mut cache = AllocCache::new();
        // Consume ~half the heap through caches.
        let shape = ObjectShape::new(0, 62, 0);
        let mut allocated = 0;
        while allocated < heap.total_bytes() / 2 {
            match heap.alloc_small(&mut cache, shape) {
                Some(_) => allocated += shape.bytes(),
                None => assert!(heap.refill_cache(&mut cache, shape.granules())),
            }
        }
        assert!(heap.occupancy() > 0.45, "{}", heap.occupancy());
    }

    #[test]
    fn wilderness_keeps_large_allocs_at_heap_end() {
        let heap = small_heap();
        let small = ObjectShape::new(0, 10, 0);
        let large = ObjectShape::new(0, 200, 0);
        let mut cache = AllocCache::new();
        heap.refill_cache(&mut cache, small.granules());
        let s = heap.alloc_small(&mut cache, small).unwrap();
        let l = heap.alloc_large(large).unwrap();
        assert!(
            l.index() > s.index(),
            "large object above the allocation front"
        );
        assert_eq!(
            l.index() + large.granules(),
            heap.granules(),
            "large object flush against the heap end"
        );
    }

    #[test]
    fn refill_falls_back_to_smaller_extents() {
        let heap = small_heap();
        // Fragment the free list into extents smaller than a cache.
        heap.free_list()
            .rebuild((0..16).map(|i| crate::freelist::Extent {
                start: 1 + i * 128,
                len: 64,
            }));
        let mut cache = AllocCache::new();
        assert!(
            heap.refill_cache(&mut cache, 8),
            "halving finds a 64-granule run"
        );
        assert!(cache.remaining_granules() >= 8);
    }

    #[test]
    fn fixed_heap_cannot_grow() {
        let heap = small_heap();
        let stats = heap.segment_stats();
        assert_eq!(stats.committed, stats.max, "max_heap_bytes 0 = no room");
        assert!(!heap.try_grow());
        assert_eq!(heap.segment_stats().grows, 0);
    }

    #[test]
    fn grow_commits_a_segment_and_frees_it() {
        let heap = growable_heap();
        let before = heap.segment_stats();
        let free_before = heap.free_bytes();
        let total_before = heap.total_bytes();
        assert!(heap.try_grow());
        let after = heap.segment_stats();
        assert_eq!(after.committed, before.committed + 1);
        assert_eq!(after.grows, 1);
        assert_eq!(after.peak, after.committed);
        assert_eq!(heap.total_bytes(), total_before + after.seg_bytes);
        assert_eq!(heap.free_bytes(), free_before + after.seg_bytes);
        // Growth stops at the hard limit.
        while heap.try_grow() {}
        assert_eq!(heap.segment_stats().committed, after.max);
    }

    #[test]
    fn grown_segment_is_allocatable() {
        let heap = growable_heap();
        assert!(heap.try_grow());
        let seg_granules = heap.segment_granules();
        // Drain the initial heap so the next refill must come from the
        // grown segment.
        let initial_granules = seg_granules * heap.segment_stats().initial;
        heap.free_list().rebuild([Extent {
            start: initial_granules,
            len: seg_granules,
        }]);
        let mut cache = AllocCache::new();
        assert!(heap.refill_cache(&mut cache, 1));
        let obj = heap
            .alloc_small(&mut cache, ObjectShape::new(1, 1, 0))
            .unwrap();
        assert!(obj.index() >= initial_granules, "object in grown segment");
        heap.store_data(obj, 0, 77);
        assert_eq!(heap.load_data(obj, 0), 77);
        heap.publish_cache(&mut cache);
        assert!(heap.is_published(obj));
    }

    #[test]
    fn release_returns_whole_free_segments() {
        let heap = growable_heap();
        assert!(heap.try_grow());
        assert!(heap.try_grow());
        let sg = heap.segment_granules();
        let initial = heap.segment_stats().initial;
        let committed_before = heap.segment_stats().committed;
        // An extent list covering the whole heap: both grown segments are
        // entirely free and must be released; the initial ones stay.
        let mut extents = vec![Extent {
            start: 1,
            len: heap.granules() - 1,
        }];
        let released = heap.release_empty_segments(&mut extents);
        assert_eq!(released, 2);
        let stats = heap.segment_stats();
        assert_eq!(stats.committed, committed_before - 2);
        assert_eq!(stats.shrinks, 2);
        assert_eq!(stats.peak, committed_before, "peak remembers the burst");
        // The released ranges left the extent list.
        let total: usize = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, initial * sg - 1);
        assert!(extents.iter().all(|e| e.start + e.len <= initial * sg));
        // Partially-occupied segments are kept: cover only half a segment.
        assert!(heap.try_grow());
        let base = initial * sg;
        let mut partial = vec![Extent {
            start: base,
            len: sg / 2,
        }];
        assert_eq!(heap.release_empty_segments(&mut partial), 0);
    }

    #[test]
    fn oom_error_carries_segment_map() {
        let heap = growable_heap();
        heap.try_grow();
        let err = heap.oom_error(4096);
        let AllocError::OutOfMemory {
            requested_bytes,
            segments_committed,
            segments_max,
            segment_map,
            ..
        } = err;
        assert_eq!(requested_bytes, 4096);
        let stats = heap.segment_stats();
        assert_eq!(segments_committed as usize, stats.committed);
        assert_eq!(segments_max as usize, stats.max);
        assert_eq!(segment_map.count_ones() as usize, stats.committed);
    }

    #[test]
    fn explicit_segment_bytes_is_honoured() {
        let heap = Heap::new(HeapConfig {
            heap_bytes: 1 << 20,
            segment_bytes: 64 << 10,
            ..HeapConfig::default()
        });
        assert_eq!(heap.segment_granules() * GRANULE_BYTES, 64 << 10);
        assert_eq!(heap.segment_stats().initial, 16);
    }
}
