//! The segment table: the heap as a set of independently reserved
//! arenas behind an address-range lookup.
//!
//! The global granule index space is unchanged — [`crate::ObjectRef`] is
//! still a `u32` granule index — but the backing storage is split into
//! fixed-size, power-of-two-aligned **segments**, each carrying its own
//! slot arena, allocation/mark bitmaps, and card table. Segments are
//! committed (grown) and released (shrunk) at runtime:
//!
//! * **Grow** publishes a fully constructed [`Segment`] into its table
//!   slot with a release CAS; readers acquire-load the slot, so a
//!   non-null pointer always refers to a completely initialized segment.
//! * **Release** happens only under stop-the-world (the parallel sweep's
//!   finish step), and only for segments whose granules are entirely
//!   free. The segment is *parked*, not deallocated: a concurrent
//!   telemetry reader that acquired the pointer just before the swap may
//!   still be walking the (empty) bitmaps, so the backing allocation
//!   stays alive until the table is dropped — the committed-granule
//!   accounting, free list, and telemetry all observe the shrink
//!   immediately, and a later grow of the same slot scrubs and reuses
//!   the parked arena instead of reserving a fresh one. This models
//!   `munmap`/`mmap` without a reclamation epoch.
//!
//! Segment size is a power of two and a multiple of 512 granules, so a
//! segment boundary is simultaneously a bitmap-word boundary (64
//! granules), a card boundary (64 granules), and a card-table-word
//! boundary (8 cards): every word-granular operation on the facades
//! ([`HeapBitmap`], [`HeapCards`]) stays inside one segment.
//!
//! A table slot that was released (or never committed) is a **hole**.
//! The facades give holes absorbing semantics — reads see empty
//! (unmarked, unallocated, clean), bulk clears skip them — while
//! single-bit publication into a hole panics: no live object can exist
//! there, so a write means the caller holds a dangling granule index.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::cards::CardTable;
use crate::object::GRANULES_PER_CARD;

/// Granule alignment every segment honours: one card-table word (8 cards
/// of 64 granules) and 8 mark/alloc bitmap words.
pub const SEGMENT_ALIGN_GRANULES: usize = 512;

/// One independently reserved arena: slots plus its own side metadata.
pub struct Segment {
    /// First global granule this segment covers.
    base: usize,
    /// Granules in this segment (the table's uniform segment size).
    granules: usize,
    /// Slot storage (one `AtomicU64` per granule).
    slots: Box<[AtomicU64]>,
    /// Allocation bits, indexed by segment-local granule.
    alloc: Bitmap,
    /// Mark bits, indexed by segment-local granule.
    marks: Bitmap,
    /// Card table covering this segment's granules.
    cards: CardTable,
}

impl Segment {
    fn new(base: usize, granules: usize) -> Segment {
        Segment {
            base,
            granules,
            slots: (0..granules).map(|_| AtomicU64::new(0)).collect(),
            alloc: Bitmap::new(granules),
            marks: Bitmap::new(granules),
            cards: CardTable::new(granules),
        }
    }

    /// First global granule of this segment.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Resets a parked segment for recommitment: side metadata cleared
    /// (slot contents are irrelevant — allocation zeroes object granules
    /// at format time).
    fn scrub(&self) {
        self.alloc.clear_all();
        self.marks.clear_all();
        self.cards.clear_all();
    }

    #[inline]
    pub(crate) fn slot(&self, offset: usize) -> &AtomicU64 {
        &self.slots[offset]
    }
}

/// Which bitmap a [`HeapBitmap`] facade addresses.
#[derive(Copy, Clone, Debug)]
pub(crate) enum BitKind {
    Alloc,
    Mark,
}

/// The address-range lookup: `max_segments` slots, each holding either a
/// committed [`Segment`] or null (a hole).
pub struct SegmentTable {
    /// Granules per segment (power of two, multiple of
    /// [`SEGMENT_ALIGN_GRANULES`]).
    seg_granules: usize,
    /// `seg_granules == 1 << shift`.
    shift: u32,
    /// Segments committed at construction; these are never released, so
    /// the original heap floor is always mapped.
    initial: usize,
    /// Committed segments by index; null = hole.
    slots: Box<[AtomicPtr<Segment>]>,
    /// Released segments parked for reuse (see module docs); one slot per
    /// index, only ever populated for indices `>= initial`.
    parked: Box<[AtomicPtr<Segment>]>,
    /// Segment-count high-water mark *by index*: every committed segment
    /// has index < frontier. Monotone, so address-space-derived sizes
    /// (bitmap word counts, card counts, sweep chunk counts) never
    /// shrink mid-operation.
    frontier: AtomicUsize,
    /// Granules currently committed.
    committed_granules: AtomicUsize,
    /// Segments currently committed.
    committed_segs: AtomicUsize,
    /// Most segments ever committed at once.
    peak_segs: AtomicUsize,
    /// Total grow (commit) events.
    grows: AtomicU64,
    /// Total shrink (release) events.
    shrinks: AtomicU64,
}

impl SegmentTable {
    /// Creates a table with `initial` committed segments of
    /// `seg_granules` granules each, growable to `max_segments`.
    pub fn new(initial: usize, seg_granules: usize, max_segments: usize) -> SegmentTable {
        assert!(seg_granules.is_power_of_two() && seg_granules >= SEGMENT_ALIGN_GRANULES);
        assert!(initial >= 1 && initial <= max_segments);
        let slots: Box<[AtomicPtr<Segment>]> = (0..max_segments)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        for (i, slot) in slots.iter().enumerate().take(initial) {
            let seg = Box::into_raw(Box::new(Segment::new(i * seg_granules, seg_granules)));
            slot.store(seg, Ordering::Release);
        }
        SegmentTable {
            seg_granules,
            shift: seg_granules.trailing_zeros(),
            initial,
            slots,
            parked: (0..max_segments)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            frontier: AtomicUsize::new(initial),
            committed_granules: AtomicUsize::new(initial * seg_granules),
            committed_segs: AtomicUsize::new(initial),
            peak_segs: AtomicUsize::new(initial),
            grows: AtomicU64::new(0),
            shrinks: AtomicU64::new(0),
        }
    }

    /// Granules per segment.
    #[inline]
    pub fn seg_granules(&self) -> usize {
        self.seg_granules
    }

    /// Segments committed at construction (never released).
    pub fn initial_segments(&self) -> usize {
        self.initial
    }

    /// Hard-limit segment capacity.
    pub fn max_segments(&self) -> usize {
        self.slots.len()
    }

    /// Segments currently committed.
    pub fn segments_committed(&self) -> usize {
        self.committed_segs.load(Ordering::Relaxed)
    }

    /// Most segments ever committed at once.
    pub fn segments_peak(&self) -> usize {
        self.peak_segs.load(Ordering::Relaxed)
    }

    /// Granules currently committed.
    pub fn committed_granules(&self) -> usize {
        self.committed_granules.load(Ordering::Relaxed)
    }

    /// Total grow (commit) events since construction.
    pub fn grow_count(&self) -> u64 {
        self.grows.load(Ordering::Relaxed)
    }

    /// Total shrink (release) events since construction.
    pub fn shrink_count(&self) -> u64 {
        self.shrinks.load(Ordering::Relaxed)
    }

    /// One-past-the-last committed segment index (monotone).
    #[inline]
    pub fn frontier(&self) -> usize {
        self.frontier.load(Ordering::Relaxed)
    }

    /// Granule-space extent: `frontier * seg_granules`. Holes below the
    /// frontier are *inside* this range; the facades skip them.
    #[inline]
    pub fn frontier_granules(&self) -> usize {
        self.frontier() << self.shift
    }

    /// Bitmask of committed segments (bit `i` = segment `i`; segments
    /// past 63 are not representable and are summarized by the committed
    /// count alongside).
    pub fn segment_map(&self) -> u64 {
        let mut map = 0u64;
        for si in 0..self.frontier().min(64) {
            if self.seg(si).is_some() {
                map |= 1 << si;
            }
        }
        map
    }

    /// The committed segment with index `si`, or `None` for a hole or an
    /// out-of-range index.
    #[inline]
    pub(crate) fn seg(&self, si: usize) -> Option<&Segment> {
        let p = self.slots.get(si)?.load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: non-null slot pointers come from `Box::into_raw` of
            // a fully constructed `Segment`, published with release
            // ordering (store/CAS) and acquire-loaded here. Released
            // segments are parked, never deallocated, until the table
            // itself drops — so the pointee outlives every borrow derived
            // from `&self`.
            Some(unsafe { &*p })
        }
    }

    /// The segment containing global granule `g` plus the segment-local
    /// offset, or `None` when `g` falls in a hole or past the frontier.
    #[inline]
    pub(crate) fn seg_of_granule(&self, g: usize) -> Option<(&Segment, usize)> {
        let seg = self.seg(g >> self.shift)?;
        Some((seg, g & (self.seg_granules - 1)))
    }

    /// True if global granule `g` lies in a committed segment.
    #[inline]
    pub fn is_mapped(&self, g: usize) -> bool {
        self.seg(g >> self.shift).is_some()
    }

    /// True if the whole granule range `[start, start + len)` lies in
    /// committed segments.
    pub fn is_range_mapped(&self, start: usize, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        let mut si = start >> self.shift;
        let last = (start + len - 1) >> self.shift;
        while si <= last {
            if self.seg(si).is_none() {
                return false;
            }
            si += 1;
        }
        true
    }

    /// The maximal committed subranges of `[start, end)`, in address
    /// order. Adjacent committed segments coalesce into one range.
    pub fn mapped_ranges(&self, start: usize, end: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let end = end.min(self.frontier_granules());
        let mut g = start;
        while g < end {
            let si = g >> self.shift;
            let seg_end = (si + 1) << self.shift;
            if self.seg(si).is_some() {
                match out.last_mut() {
                    Some((_, e)) if *e == g => *e = seg_end.min(end),
                    _ => out.push((g, seg_end.min(end))),
                }
            }
            g = seg_end;
        }
        out
    }

    /// Commits one segment: the first hole below `max_segments` gains a
    /// (reused or fresh) arena. Returns the new segment's index, or
    /// `None` at the hard limit. Concurrent committers race on the CAS
    /// and retry on later slots, so two growers get two distinct
    /// segments.
    pub fn commit_one(&self) -> Option<usize> {
        for si in 0..self.slots.len() {
            if !self.slots[si].load(Ordering::Relaxed).is_null() {
                continue;
            }
            // Reuse the parked arena for this index if a release left
            // one, else reserve fresh.
            let parked = self.parked[si].swap(std::ptr::null_mut(), Ordering::AcqRel);
            let seg = if parked.is_null() {
                Box::into_raw(Box::new(Segment::new(si << self.shift, self.seg_granules)))
            } else {
                // SAFETY: `parked` slots hold `Box::into_raw` pointers
                // stored by `release`; the swap above transferred sole
                // ownership of this one to us.
                unsafe { (*parked).scrub() };
                parked
            };
            match self.slots[si].compare_exchange(
                std::ptr::null_mut(),
                seg,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.frontier.fetch_max(si + 1, Ordering::Relaxed);
                    self.committed_granules
                        .fetch_add(self.seg_granules, Ordering::Relaxed);
                    let now = self.committed_segs.fetch_add(1, Ordering::Relaxed) + 1;
                    self.peak_segs.fetch_max(now, Ordering::Relaxed);
                    self.grows.fetch_add(1, Ordering::Relaxed);
                    return Some(si);
                }
                Err(_) => {
                    // Lost the race for this slot; park the arena back
                    // and try the next hole.
                    self.parked[si].store(seg, Ordering::Release);
                }
            }
        }
        None
    }

    /// Releases segment `si` (parks its arena for reuse). Caller must
    /// guarantee a stop-the-world context and that the segment's
    /// granules are entirely free (off every allocation path).
    ///
    /// # Panics
    /// Panics if `si` is an initial segment or already a hole.
    pub fn release(&self, si: usize) {
        assert!(si >= self.initial, "initial segments are never released");
        let p = self.slots[si].swap(std::ptr::null_mut(), Ordering::AcqRel);
        assert!(!p.is_null(), "segment {si} already released");
        self.parked[si].store(p, Ordering::Release);
        self.committed_granules
            .fetch_sub(self.seg_granules, Ordering::Relaxed);
        self.committed_segs.fetch_sub(1, Ordering::Relaxed);
        self.shrinks.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for SegmentTable {
    fn drop(&mut self) {
        for slot in self.slots.iter().chain(self.parked.iter()) {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: every non-null slot/parked pointer came from
                // `Box::into_raw` and is owned exclusively by the table;
                // `&mut self` means no reader can hold a borrow.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl std::fmt::Debug for SegmentTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentTable")
            .field("seg_granules", &self.seg_granules)
            .field("committed", &self.segments_committed())
            .field("frontier", &self.frontier())
            .field("max", &self.max_segments())
            .finish()
    }
}

/// A heap-wide bitmap view over the per-segment bitmaps. Mirrors the
/// [`Bitmap`] API; granule indices are global. Holes read as all-clear
/// and absorb bulk clears; publishing a single bit into a hole panics.
pub struct HeapBitmap {
    table: Arc<SegmentTable>,
    kind: BitKind,
}

impl HeapBitmap {
    pub(crate) fn new(table: Arc<SegmentTable>, kind: BitKind) -> HeapBitmap {
        HeapBitmap { table, kind }
    }

    #[inline]
    fn bm<'a>(&self, seg: &'a Segment) -> &'a Bitmap {
        match self.kind {
            BitKind::Alloc => &seg.alloc,
            BitKind::Mark => &seg.marks,
        }
    }

    /// Bits addressable (the granule frontier; holes included).
    #[inline]
    pub fn len(&self) -> usize {
        self.table.frontier_granules()
    }

    /// True if the heap has no granules (never in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads bit `i`; unmapped granules read clear.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self.table.seg_of_granule(i) {
            Some((s, off)) => self.bm(s).get(off),
            None => false,
        }
    }

    /// Atomically sets bit `i`; returns true if this call won.
    ///
    /// # Panics
    /// Panics if `i` lies in an unmapped segment: no object can live in
    /// a hole, so the caller's granule index is dangling.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        let (s, off) = self
            .table
            .seg_of_granule(i)
            .expect("bit set in unmapped segment");
        self.bm(s).set(off)
    }

    /// Atomically clears bit `i`; returns true if it was set. Unmapped
    /// granules were already clear.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        match self.table.seg_of_granule(i) {
            Some((s, off)) => self.bm(s).clear(off),
            None => false,
        }
    }

    /// Clears every bit (skipping holes, which hold none).
    pub fn clear_all(&self) {
        for si in 0..self.table.frontier() {
            if let Some(s) = self.table.seg(si) {
                self.bm(s).clear_all();
            }
        }
    }

    /// Clears bits in `[start, end)` across segments.
    pub fn clear_range(&self, start: usize, end: usize) {
        for (rs, re) in self.table.mapped_ranges(start, end) {
            let (s, off) = self.table.seg_of_granule(rs).expect("mapped range");
            // A mapped range may span several adjacent segments; clear
            // segment by segment.
            let mut g = rs;
            let mut off = off;
            let mut seg = s;
            loop {
                let seg_end = g - off + seg.granules;
                let stop = re.min(seg_end);
                self.bm(seg).clear_range(off, off + (stop - g));
                if stop >= re {
                    break;
                }
                g = stop;
                let (s2, o2) = self.table.seg_of_granule(g).expect("mapped range");
                seg = s2;
                off = o2;
            }
        }
    }

    /// Number of 64-bit words covering the frontier.
    pub fn word_len(&self) -> usize {
        self.len() / 64
    }

    /// Loads word `w`; words over holes read zero.
    #[inline]
    pub fn load_word(&self, w: usize) -> u64 {
        let wps = self.table.seg_granules() / 64;
        match self.table.seg(w / wps) {
            Some(s) => self.bm(s).load_word(w & (wps - 1)),
            None => 0,
        }
    }

    /// Clears words `[start, end)`, skipping holes.
    pub fn clear_words(&self, start: usize, end: usize) {
        let wps = self.table.seg_granules() / 64;
        let mut w = start;
        while w < end {
            let si = w / wps;
            let base = si * wps;
            let seg_end = base + wps;
            if let Some(s) = self.table.seg(si) {
                self.bm(s).clear_words(w - base, end.min(seg_end) - base);
            }
            w = seg_end;
        }
    }

    /// Index of the first set bit at or after `from`, skipping holes.
    pub fn next_set(&self, from: usize) -> Option<usize> {
        self.next_set_before(from, self.len())
    }

    /// First set bit in `[from, end)`, skipping holes.
    pub fn next_set_before(&self, from: usize, end: usize) -> Option<usize> {
        let end = end.min(self.len());
        let mut g = from;
        while g < end {
            let si = g >> self.table.shift;
            let base = si << self.table.shift;
            let seg_end = base + self.table.seg_granules();
            if let Some(s) = self.table.seg(si) {
                let local_end = end.min(seg_end) - base;
                if let Some(off) = self.bm(s).next_set_before(g - base, local_end) {
                    return Some(base + off);
                }
            }
            g = seg_end;
        }
        None
    }

    /// Greatest set bit strictly below `before`, skipping holes.
    pub fn prev_set(&self, before: usize) -> Option<usize> {
        let mut b = before.min(self.len());
        while b > 0 {
            let si = (b - 1) >> self.table.shift;
            let base = si << self.table.shift;
            if let Some(s) = self.table.seg(si) {
                if let Some(off) = self.bm(s).prev_set(b - base) {
                    return Some(base + off);
                }
            }
            b = base;
        }
        None
    }

    /// Number of set bits in `[start, end)` (holes contribute zero).
    pub fn count_range(&self, start: usize, end: usize) -> usize {
        let mut n = 0;
        for (rs, re) in self.table.mapped_ranges(start, end) {
            let mut g = rs;
            while g < re {
                let (s, off) = self.table.seg_of_granule(g).expect("mapped range");
                let seg_end = g - off + s.granules;
                let stop = re.min(seg_end);
                n += self.bm(s).count_range(off, off + (stop - g));
                g = stop;
            }
        }
        n
    }

    /// Total set bits.
    pub fn count(&self) -> usize {
        self.count_range(0, self.len())
    }
}

impl std::fmt::Debug for HeapBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapBitmap")
            .field("kind", &self.kind)
            .field("len", &self.len())
            .field("count", &self.count())
            .finish()
    }
}

/// A heap-wide card-table view over the per-segment card tables. Card
/// indices are global (granule / [`GRANULES_PER_CARD`]). Cards over
/// holes read clean; dirtying one panics (the write barrier only runs
/// against live objects, which never sit in a hole).
pub struct HeapCards {
    table: Arc<SegmentTable>,
}

impl HeapCards {
    pub(crate) fn new(table: Arc<SegmentTable>) -> HeapCards {
        HeapCards { table }
    }

    #[inline]
    fn cards_per_seg(&self) -> usize {
        self.table.seg_granules() / GRANULES_PER_CARD
    }

    /// Cards covering the granule frontier (holes included).
    #[inline]
    pub fn len(&self) -> usize {
        self.table.frontier() * self.cards_per_seg()
    }

    /// True if the table covers zero cards.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dirties `card` (the write-barrier store).
    ///
    /// # Panics
    /// Panics if the card lies in an unmapped segment.
    #[inline]
    pub fn dirty(&self, card: usize) {
        let cps = self.cards_per_seg();
        let s = self
            .table
            .seg(card / cps)
            .expect("card dirtied in unmapped segment");
        s.cards.dirty(card & (cps - 1));
    }

    /// Reads whether `card` is dirty; cards over holes read clean.
    #[inline]
    pub fn is_dirty(&self, card: usize) -> bool {
        let cps = self.cards_per_seg();
        match self.table.seg(card / cps) {
            Some(s) => s.cards.is_dirty(card & (cps - 1)),
            None => false,
        }
    }

    /// Clears `card`'s dirty indicator (no-op over a hole).
    #[inline]
    pub fn clear(&self, card: usize) {
        let cps = self.cards_per_seg();
        if let Some(s) = self.table.seg(card / cps) {
            s.cards.clear(card & (cps - 1));
        }
    }

    /// Clears the whole table, skipping holes.
    pub fn clear_all(&self) {
        for si in 0..self.table.frontier() {
            if let Some(s) = self.table.seg(si) {
                s.cards.clear_all();
            }
        }
    }

    /// §5.3 register-and-clear over global card range `[start, end)`:
    /// pushes the global indices of dirty cards onto `out` and clears
    /// their indicators, segment by segment.
    pub fn snapshot_dirty(&self, start: usize, end: usize, out: &mut Vec<usize>) {
        let cps = self.cards_per_seg();
        let end = end.min(self.len());
        let mut c = start;
        while c < end {
            let si = c / cps;
            let base = si * cps;
            let seg_end = base + cps;
            if let Some(s) = self.table.seg(si) {
                let n0 = out.len();
                s.cards
                    .snapshot_dirty(c - base, end.min(seg_end) - base, out);
                // The per-segment table pushes local indices; rebase.
                for v in &mut out[n0..] {
                    *v += base;
                }
            }
            c = seg_end;
        }
    }

    /// Counts dirty cards across committed segments.
    pub fn count_dirty(&self) -> usize {
        let mut n = 0;
        for si in 0..self.table.frontier() {
            if let Some(s) = self.table.seg(si) {
                n += s.cards.count_dirty();
            }
        }
        n
    }

    /// Total write-barrier dirty stores across committed segments (a
    /// released segment's stores leave the total — the counter tracks
    /// live arenas, matching what a scan could still encounter).
    pub fn dirty_store_count(&self) -> u64 {
        let mut n = 0;
        for si in 0..self.table.frontier() {
            if let Some(s) = self.table.seg(si) {
                n += s.cards.dirty_store_count();
            }
        }
        n
    }
}

impl std::fmt::Debug for HeapCards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapCards")
            .field("cards", &self.len())
            .field("dirty", &self.count_dirty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(initial: usize, max: usize) -> Arc<SegmentTable> {
        Arc::new(SegmentTable::new(initial, SEGMENT_ALIGN_GRANULES, max))
    }

    #[test]
    fn commit_and_release_roundtrip() {
        let t = table(2, 4);
        assert_eq!(t.segments_committed(), 2);
        assert_eq!(t.frontier_granules(), 2 * 512);
        assert_eq!(t.segment_map(), 0b11);

        let si = t.commit_one().unwrap();
        assert_eq!(si, 2);
        assert_eq!(t.segments_committed(), 3);
        assert_eq!(t.committed_granules(), 3 * 512);
        assert_eq!(t.grow_count(), 1);
        assert_eq!(t.segment_map(), 0b111);

        t.release(2);
        assert_eq!(t.segments_committed(), 2);
        assert_eq!(t.shrink_count(), 1);
        assert!(!t.is_mapped(2 * 512));
        // Frontier is monotone: the hole stays inside the address range.
        assert_eq!(t.frontier_granules(), 3 * 512);
        assert_eq!(t.segment_map(), 0b011);

        // Recommit reuses the parked arena.
        assert_eq!(t.commit_one(), Some(2));
        assert_eq!(t.segments_peak(), 3);
        assert_eq!(t.grow_count(), 2);
    }

    #[test]
    fn commit_stops_at_hard_limit() {
        let t = table(1, 2);
        assert_eq!(t.commit_one(), Some(1));
        assert_eq!(t.commit_one(), None);
        assert_eq!(t.segments_committed(), 2);
    }

    #[test]
    #[should_panic(expected = "never released")]
    fn initial_segments_cannot_be_released() {
        table(2, 4).release(1);
    }

    #[test]
    fn bitmap_facade_skips_holes() {
        let t = table(1, 4);
        t.commit_one();
        t.commit_one();
        t.commit_one();
        let bm = HeapBitmap::new(Arc::clone(&t), BitKind::Mark);
        assert_eq!(bm.len(), 4 * 512);
        bm.set(100);
        bm.set(512 + 7);
        bm.set(3 * 512 + 5);
        t.release(1); // hole over the middle bit
        assert!(!bm.get(512 + 7), "hole reads clear");
        assert_eq!(bm.next_set(101), Some(3 * 512 + 5), "walk skips the hole");
        assert_eq!(bm.prev_set(3 * 512 + 5), Some(100));
        assert_eq!(bm.count(), 2);
        assert_eq!(bm.count_range(0, 2 * 512), 1);
        assert_eq!(bm.load_word(512 / 64), 0, "word over a hole reads zero");
        bm.clear_range(0, 4 * 512); // must not touch the hole
        assert_eq!(bm.count(), 0);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn bitmap_set_in_hole_panics() {
        let t = table(1, 4);
        t.commit_one();
        t.release(1);
        HeapBitmap::new(t, BitKind::Alloc).set(512 + 3);
    }

    #[test]
    fn bitmap_word_ops_cross_segments() {
        let t = table(2, 2);
        let bm = HeapBitmap::new(Arc::clone(&t), BitKind::Alloc);
        assert_eq!(bm.word_len(), 2 * 512 / 64);
        bm.set(63);
        bm.set(512);
        assert_eq!(bm.load_word(0), 1 << 63);
        assert_eq!(bm.load_word(512 / 64), 1);
        bm.clear_words(0, bm.word_len());
        assert_eq!(bm.count(), 0);
    }

    #[test]
    fn cards_facade_rebases_snapshot_indices() {
        let t = table(1, 3);
        t.commit_one();
        t.commit_one();
        let cards = HeapCards::new(Arc::clone(&t));
        let cps = 512 / GRANULES_PER_CARD;
        assert_eq!(cards.len(), 3 * cps);
        cards.dirty(1);
        cards.dirty(cps + 2); // second segment
        cards.dirty(2 * cps + 3); // third segment
        assert!(cards.is_dirty(cps + 2));
        assert_eq!(cards.count_dirty(), 3);
        t.release(1);
        assert!(!cards.is_dirty(cps + 2), "hole reads clean");
        let mut snap = Vec::new();
        cards.snapshot_dirty(0, cards.len(), &mut snap);
        assert_eq!(snap, vec![1, 2 * cps + 3], "global indices, hole skipped");
        assert_eq!(cards.count_dirty(), 0);
    }

    #[test]
    fn mapped_ranges_coalesce_and_clip() {
        let t = table(1, 4);
        t.commit_one();
        t.commit_one();
        t.commit_one();
        t.release(2);
        assert_eq!(
            t.mapped_ranges(0, 4 * 512),
            vec![(0, 2 * 512), (3 * 512, 4 * 512)]
        );
        assert_eq!(t.mapped_ranges(100, 600), vec![(100, 600)]);
        assert_eq!(t.mapped_ranges(2 * 512, 3 * 512), vec![]);
        assert!(t.is_range_mapped(0, 1024));
        assert!(!t.is_range_mapped(1024, 1024));
    }
}
