//! Weak-ordering support: counted memory fences and a store-buffer
//! weak-memory simulator (paper §5).
//!
//! The paper's third contribution is keeping the number of expensive
//! multi-cycle fence instructions low on weakly-ordered hardware:
//! one fence per allocation cache of small objects (§5.2), one fence per
//! work packet of marked objects (§5.1), and **no fence in the write
//! barrier** (§5.3, replaced by a card-table snapshot plus a mutator fence
//! handshake).
//!
//! This crate provides:
//!
//! * [`fence`] — issue a real fence, attributed to a [`FenceKind`] so the
//!   benchmark harness can reproduce the paper's fence-reduction claims
//!   ([`FenceStats`] snapshots the counters);
//! * [`weaksim`] — an operational store-buffer memory model used to show
//!   that the §5.2/§5.3 anomalies occur without the protocols and cannot
//!   occur with them (see [`litmus`]).

pub mod litmus;
pub mod sync;
pub mod weaksim;

use std::sync::atomic::{AtomicU64, Ordering};

/// What a heavy fence was issued for; used to attribute fence counts.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Hash)]
pub enum FenceKind {
    /// Publishing a batch of small-object allocations: one fence per
    /// allocation cache before setting allocation bits (§5.2 mutator side).
    AllocBatch,
    /// Publishing a large-object allocation (individually fenced).
    LargeAlloc,
    /// Tracer-side fence after testing a packet's allocation bits and
    /// before tracing the "safe" objects (§5.2 tracer side).
    TraceBatch,
    /// Publishing a full output work packet to the shared pool: one fence
    /// per packet of marked objects (§5.1).
    PacketPublish,
    /// A mutator fence executed as part of the card-cleaning handshake
    /// (§5.3 step 2).
    CardHandshake,
    /// Any other attributed fence.
    Other,
}

const KINDS: usize = 6;

fn slot(kind: FenceKind) -> usize {
    match kind {
        FenceKind::AllocBatch => 0,
        FenceKind::LargeAlloc => 1,
        FenceKind::TraceBatch => 2,
        FenceKind::PacketPublish => 3,
        FenceKind::CardHandshake => 4,
        FenceKind::Other => 5,
    }
}

static COUNTS: [AtomicU64; KINDS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Issues a real fence with the given ordering, attributed to `kind`.
///
/// On the host this lowers to the corresponding hardware barrier (or
/// nothing beyond a compiler barrier on TSO for `Release`/`Acquire`); the
/// count is the datum of interest for reproducing §5's claims.
#[inline]
pub fn fence(kind: FenceKind, order: Ordering) {
    COUNTS[slot(kind)].fetch_add(1, Ordering::Relaxed);
    std::sync::atomic::fence(order);
}

/// Issues a release fence attributed to `kind` (publication side).
#[inline]
pub fn release_fence(kind: FenceKind) {
    fence(kind, Ordering::Release);
}

/// Issues an acquire fence attributed to `kind` (consumption side).
#[inline]
pub fn acquire_fence(kind: FenceKind) {
    fence(kind, Ordering::Acquire);
}

/// Issues a sequentially-consistent fence attributed to `kind`.
#[inline]
pub fn full_fence(kind: FenceKind) {
    fence(kind, Ordering::SeqCst);
}

/// The writer-side fence of the telemetry seqlock rings: orders a
/// slot's odd ("open") sequence store before the payload stores that
/// follow it, so a reader can never observe fresh payload under a stale
/// even sequence number.
///
/// Deliberately **uncounted**, unlike [`fence`]: these are
/// telemetry-internal fences on the always-on span/event recording hot
/// path, not part of the paper's §5 protocol whose fence counts the
/// benchmark harness reproduces — counting them would both pollute
/// those numbers and put a contended `fetch_add` into every record.
/// On TSO hosts this lowers to a compiler barrier only. Lives here so
/// the lint's fence-confinement rule (`std::sync::atomic::fence` only
/// inside `crates/membar`) keeps a single audit point for every fence
/// in the tree.
///
/// MODEL: seqlock_model (crates/check) — deleting this fence is
/// `SeqlockMutation::SkipBeginFence`, caught as a torn read.
#[inline]
pub fn seqlock_write_fence() {
    std::sync::atomic::fence(Ordering::Release);
}

/// The reader-side fence of the telemetry seqlock rings: orders the
/// speculative payload loads before the revalidating sequence load
/// (Boehm's seqlock recipe — the revalidating load alone only
/// synchronizes with the store it happens to read, so without this
/// fence an overwriter's payload could be visible while its odd
/// sequence store is not). Uncounted for the same reasons as
/// [`seqlock_write_fence`].
///
/// MODEL: seqlock_model (crates/check) — see `SkipSecondCheck` for the
/// validation this fence makes trustworthy.
#[inline]
pub fn seqlock_read_fence() {
    std::sync::atomic::fence(Ordering::Acquire);
}

/// A snapshot of the process-wide fence counters.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default, Hash)]
pub struct FenceStats {
    /// Fences publishing allocation-cache batches.
    pub alloc_batch: u64,
    /// Fences publishing large objects.
    pub large_alloc: u64,
    /// Tracer-side batch fences.
    pub trace_batch: u64,
    /// Fences publishing output work packets.
    pub packet_publish: u64,
    /// Mutator fences for card-cleaning handshakes.
    pub card_handshake: u64,
    /// Other fences.
    pub other: u64,
}

impl FenceStats {
    /// Reads the current counter values.
    pub fn snapshot() -> FenceStats {
        FenceStats {
            alloc_batch: COUNTS[0].load(Ordering::Relaxed),
            large_alloc: COUNTS[1].load(Ordering::Relaxed),
            trace_batch: COUNTS[2].load(Ordering::Relaxed),
            packet_publish: COUNTS[3].load(Ordering::Relaxed),
            card_handshake: COUNTS[4].load(Ordering::Relaxed),
            other: COUNTS[5].load(Ordering::Relaxed),
        }
    }

    /// Total fences across all kinds.
    pub fn total(&self) -> u64 {
        self.alloc_batch
            + self.large_alloc
            + self.trace_batch
            + self.packet_publish
            + self.card_handshake
            + self.other
    }

    /// Counter-wise difference `self - earlier` (for measuring a window).
    pub fn since(&self, earlier: &FenceStats) -> FenceStats {
        FenceStats {
            alloc_batch: self.alloc_batch - earlier.alloc_batch,
            large_alloc: self.large_alloc - earlier.large_alloc,
            trace_batch: self.trace_batch - earlier.trace_batch,
            packet_publish: self.packet_publish - earlier.packet_publish,
            card_handshake: self.card_handshake - earlier.card_handshake,
            other: self.other - earlier.other,
        }
    }
}

impl std::fmt::Display for FenceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "alloc_batch={} large_alloc={} trace_batch={} packet_publish={} card_handshake={} other={}",
            self.alloc_batch,
            self.large_alloc,
            self.trace_batch,
            self.packet_publish,
            self.card_handshake,
            self.other
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_attribute_by_kind() {
        let before = FenceStats::snapshot();
        release_fence(FenceKind::AllocBatch);
        release_fence(FenceKind::AllocBatch);
        acquire_fence(FenceKind::TraceBatch);
        full_fence(FenceKind::CardHandshake);
        let delta = FenceStats::snapshot().since(&before);
        assert_eq!(delta.alloc_batch, 2);
        assert_eq!(delta.trace_batch, 1);
        assert_eq!(delta.card_handshake, 1);
        assert_eq!(delta.packet_publish, 0);
        assert_eq!(delta.total(), 4);
    }
}
