//! An operational store-buffer weak-memory simulator.
//!
//! The anomalies of paper §5 are all *store–store reorderings*: a writer's
//! two stores become visible to another processor in the opposite order.
//! We model each thread with a buffer of pending stores that may flush to
//! shared memory in any order that preserves per-location (coherence)
//! order; a [`Op::Fence`] cannot execute until the thread's own buffer has
//! drained. Loads are satisfied from the thread's own buffer (store
//! forwarding) or from memory, in program order.
//!
//! This is strictly weaker than TSO (stores to *different* locations may
//! reorder, as on PowerPC/IA-64) and strong enough to exhibit every §5
//! anomaly. Reader-side load–load reordering is not modelled; the paper's
//! protocols issue the reader-side fences anyway and [`crate::FenceStats`]
//! counts them — the simulator's job is to show the writer-side protocol
//! is what makes the anomaly unobservable.
//!
//! [`explore`] exhaustively enumerates every interleaving of operation
//! issue and buffer flush, returning the set of reachable final states.
//! Litmus programs stay small (≤ a dozen ops), so plain DFS with a visited
//! set suffices.

use std::collections::HashSet;

/// One instruction of a litmus thread.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Hash)]
pub enum Op {
    /// Buffer a store of `val` to memory location `loc`.
    Store {
        /// Target memory location.
        loc: usize,
        /// Value stored.
        val: u64,
    },
    /// Load location `loc` into this thread's register `reg`.
    Load {
        /// Source memory location.
        loc: usize,
        /// Destination register index.
        reg: usize,
    },
    /// Memory fence: cannot execute until this thread's store buffer is
    /// empty.
    Fence,
    /// Force every *other* thread's store buffer to drain before this op
    /// completes. Models the §5.3 card-cleaning handshake ("force all
    /// mutators to execute a fence, e.g., stop each one individually").
    DrainOthers,
}

/// A multi-threaded litmus program over a small shared memory.
#[derive(Clone, Debug)]
pub struct Program {
    /// Per-thread instruction sequences.
    pub threads: Vec<Vec<Op>>,
    /// Number of shared memory locations (all initially zero).
    pub locations: usize,
    /// Number of registers per thread (all initially zero).
    pub registers: usize,
}

/// A reachable final state of a [`Program`].
#[derive(Clone, Eq, PartialEq, Debug, Hash, PartialOrd, Ord)]
pub struct FinalState {
    /// Final shared memory contents.
    pub memory: Vec<u64>,
    /// Final register files, one per thread.
    pub regs: Vec<Vec<u64>>,
}

#[derive(Clone, Eq, PartialEq, Hash)]
struct State {
    pcs: Vec<usize>,
    buffers: Vec<Vec<(usize, u64)>>,
    memory: Vec<u64>,
    regs: Vec<Vec<u64>>,
}

impl State {
    fn initial(p: &Program) -> State {
        State {
            pcs: vec![0; p.threads.len()],
            buffers: vec![Vec::new(); p.threads.len()],
            memory: vec![0; p.locations],
            regs: vec![vec![0; p.registers]; p.threads.len()],
        }
    }

    fn done(&self, p: &Program) -> bool {
        self.pcs
            .iter()
            .zip(&p.threads)
            .all(|(&pc, ops)| pc == ops.len())
            && self.buffers.iter().all(|b| b.is_empty())
    }
}

/// Indices in a buffer whose store may flush next: the oldest pending
/// store for each location (coherence order).
fn flushable(buffer: &[(usize, u64)]) -> Vec<usize> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (i, &(loc, _)) in buffer.iter().enumerate() {
        if seen.insert(loc) {
            out.push(i);
        }
    }
    out
}

/// Exhaustively explores every execution of `program`, returning the set
/// of reachable final states.
///
/// # Panics
/// Panics if an op references a location or register out of range.
pub fn explore(program: &Program) -> HashSet<FinalState> {
    let mut finals = HashSet::new();
    let mut visited = HashSet::new();
    let mut stack = vec![State::initial(program)];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if state.done(program) {
            finals.insert(FinalState {
                memory: state.memory.clone(),
                regs: state.regs.clone(),
            });
            continue;
        }
        for t in 0..program.threads.len() {
            // Action 1: flush one pending store of thread t.
            for idx in flushable(&state.buffers[t]) {
                let mut next = state.clone();
                let (loc, val) = next.buffers[t].remove(idx);
                next.memory[loc] = val;
                stack.push(next);
            }
            // Action 2: issue thread t's next instruction.
            let pc = state.pcs[t];
            if pc >= program.threads[t].len() {
                continue;
            }
            match program.threads[t][pc] {
                Op::Store { loc, val } => {
                    assert!(loc < program.locations, "store loc out of range");
                    let mut next = state.clone();
                    next.buffers[t].push((loc, val));
                    next.pcs[t] = pc + 1;
                    stack.push(next);
                }
                Op::Load { loc, reg } => {
                    assert!(loc < program.locations, "load loc out of range");
                    assert!(reg < program.registers, "register out of range");
                    let mut next = state.clone();
                    // store forwarding: newest pending store to loc wins
                    let val = state.buffers[t]
                        .iter()
                        .rev()
                        .find(|&&(l, _)| l == loc)
                        .map(|&(_, v)| v)
                        .unwrap_or(state.memory[loc]);
                    next.regs[t][reg] = val;
                    next.pcs[t] = pc + 1;
                    stack.push(next);
                }
                Op::Fence => {
                    if state.buffers[t].is_empty() {
                        let mut next = state.clone();
                        next.pcs[t] = pc + 1;
                        stack.push(next);
                    }
                    // otherwise the fence waits; flush actions make progress
                }
                Op::DrainOthers => {
                    if (0..program.threads.len()).all(|u| u == t || state.buffers[u].is_empty()) {
                        let mut next = state.clone();
                        next.pcs[t] = pc + 1;
                        stack.push(next);
                    }
                }
            }
        }
    }
    finals
}

/// Convenience: true if any final state satisfies `pred`.
pub fn reachable<F: Fn(&FinalState) -> bool>(program: &Program, pred: F) -> bool {
    explore(program).iter().any(pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_writes_two_reads(with_writer_fence: bool) -> Program {
        // Thread 0: X = 1; [fence]; Y = 1
        // Thread 1: r0 = Y; r1 = X
        let mut w = vec![Op::Store { loc: 0, val: 1 }];
        if with_writer_fence {
            w.push(Op::Fence);
        }
        w.push(Op::Store { loc: 1, val: 1 });
        Program {
            threads: vec![
                w,
                vec![Op::Load { loc: 1, reg: 0 }, Op::Load { loc: 0, reg: 1 }],
            ],
            locations: 2,
            registers: 2,
        }
    }

    #[test]
    fn message_passing_anomaly_without_fence() {
        // The §5 introduction example: B sees y1 but x0.
        let p = two_writes_two_reads(false);
        assert!(reachable(&p, |s| s.regs[1][0] == 1 && s.regs[1][1] == 0));
    }

    #[test]
    fn message_passing_fixed_with_fence() {
        let p = two_writes_two_reads(true);
        assert!(!reachable(&p, |s| s.regs[1][0] == 1 && s.regs[1][1] == 0));
        // and the sane outcomes remain reachable
        assert!(reachable(&p, |s| s.regs[1][0] == 1 && s.regs[1][1] == 1));
        assert!(reachable(&p, |s| s.regs[1][0] == 0));
    }

    #[test]
    fn store_forwarding_sees_own_stores() {
        let p = Program {
            threads: vec![vec![
                Op::Store { loc: 0, val: 7 },
                Op::Load { loc: 0, reg: 0 },
            ]],
            locations: 1,
            registers: 1,
        };
        let finals = explore(&p);
        assert!(finals.iter().all(|s| s.regs[0][0] == 7 && s.memory[0] == 7));
    }

    #[test]
    fn coherence_same_location_stores_ordered() {
        // Two stores to the same location must hit memory in order.
        let p = Program {
            threads: vec![vec![
                Op::Store { loc: 0, val: 1 },
                Op::Store { loc: 0, val: 2 },
            ]],
            locations: 1,
            registers: 0,
        };
        let finals = explore(&p);
        assert!(finals.iter().all(|s| s.memory[0] == 2));
    }

    #[test]
    fn drain_others_acts_as_remote_fence() {
        // Thread 0: X = 1; Y = 1 (no fence)
        // Thread 1: r0 = Y; drain-others; r1 = X
        // DrainOthers after observing Y=1 forces X=1 visible: once Y=1 has
        // been flushed and then thread 0's buffer drains fully, X=1 is in
        // memory. But r0 = Y may read Y before X flushes; drain happens
        // after, so if r0 == 1 then X must already be flushed... X may
        // flush *after* Y. The drain ensures it flushed by the time r1
        // loads.
        let p = Program {
            threads: vec![
                vec![Op::Store { loc: 0, val: 1 }, Op::Store { loc: 1, val: 1 }],
                vec![
                    Op::Load { loc: 1, reg: 0 },
                    Op::DrainOthers,
                    Op::Load { loc: 0, reg: 1 },
                ],
            ],
            locations: 2,
            registers: 2,
        };
        assert!(!reachable(&p, |s| s.regs[1][0] == 1 && s.regs[1][1] == 0));
    }

    #[test]
    fn final_states_have_drained_buffers() {
        let p = two_writes_two_reads(false);
        for s in explore(&p) {
            assert_eq!(s.memory, vec![1, 1]);
        }
    }

    #[test]
    fn reader_fence_alone_insufficient_in_this_model() {
        // With only a reader-side fence (drain own empty buffer = no-op),
        // the writer's reordering still produces the anomaly — matching
        // the §5 text that *both* sides matter on real hardware (the
        // writer side is what this store-buffer model captures).
        let p = Program {
            threads: vec![
                vec![Op::Store { loc: 0, val: 1 }, Op::Store { loc: 1, val: 1 }],
                vec![
                    Op::Load { loc: 1, reg: 0 },
                    Op::Fence,
                    Op::Load { loc: 0, reg: 1 },
                ],
            ],
            locations: 2,
            registers: 2,
        };
        assert!(reachable(&p, |s| s.regs[1][0] == 1 && s.regs[1][1] == 0));
    }

    #[test]
    fn three_thread_independent_writes_explore_fully() {
        // Three writers to distinct locations: every subset of writes can
        // be visible to a reader in any combination.
        let p = Program {
            threads: vec![
                vec![Op::Store { loc: 0, val: 1 }],
                vec![Op::Store { loc: 1, val: 1 }],
                vec![Op::Load { loc: 0, reg: 0 }, Op::Load { loc: 1, reg: 1 }],
            ],
            locations: 2,
            registers: 2,
        };
        let finals = explore(&p);
        let reader_views: std::collections::HashSet<(u64, u64)> = finals
            .iter()
            .map(|s| (s.regs[2][0], s.regs[2][1]))
            .collect();
        assert_eq!(reader_views.len(), 4, "all four visibility combinations");
    }

    #[test]
    fn fence_blocks_until_buffer_drains() {
        // A fence between two stores forces the first store into memory
        // before the second issues: no final state can have the second
        // value without the first.
        let p = Program {
            threads: vec![vec![
                Op::Store { loc: 0, val: 1 },
                Op::Fence,
                Op::Store { loc: 1, val: 1 },
                Op::Load { loc: 0, reg: 0 },
            ]],
            locations: 2,
            registers: 1,
        };
        for s in explore(&p) {
            assert_eq!(s.regs[0][0], 1);
            assert_eq!(s.memory, vec![1, 1]);
        }
    }
}
