//! Litmus programs for the three weak-ordering problems of paper §5,
//! expressed in the [`weaksim`](crate::weaksim) model.
//!
//! Each scenario comes in a `naive` variant (no protocol — the anomaly is
//! reachable) and a `protected` variant (the paper's batched-fence
//! protocol — the anomaly is unreachable). The test suite and the
//! `fence_counts` bench exercise both; downstream code can use these to
//! regression-test any change to the ordering protocols.

use crate::weaksim::{FinalState, Op, Program};

/// §5.1 — communicating work between tracers through the shared pool.
///
/// Producer fills a work packet (entry slot) and then publishes the packet
/// by storing the pool-head pointer. Consumer loads the head pointer and
/// then reads the entry through it (a data dependency, so the consumer
/// needs no fence). Locations: `0` = packet entry, `1` = pool head.
pub mod packet_publish {
    use super::*;

    /// Entry value the producer writes.
    pub const ENTRY: u64 = 42;
    /// Non-zero "pointer" value that publishes the packet.
    pub const PUBLISHED: u64 = 1;

    fn program(with_fence: bool) -> Program {
        let mut producer = vec![Op::Store { loc: 0, val: ENTRY }];
        if with_fence {
            // §5.1: "the collector performs a fence before returning an
            // output work packet to a pool"
            producer.push(Op::Fence);
        }
        producer.push(Op::Store {
            loc: 1,
            val: PUBLISHED,
        });
        let consumer = vec![
            Op::Load { loc: 1, reg: 0 }, // load pool head
            Op::Load { loc: 0, reg: 1 }, // data-dependent read of entry
        ];
        Program {
            threads: vec![producer, consumer],
            locations: 2,
            registers: 2,
        }
    }

    /// Producer with no publication fence.
    pub fn naive() -> Program {
        program(false)
    }

    /// Producer fencing once per packet before publication.
    pub fn protected() -> Program {
        program(true)
    }

    /// The anomaly: consumer obtained the packet but reads a stale entry.
    pub fn violated(s: &FinalState) -> bool {
        s.regs[1][0] == PUBLISHED && s.regs[1][1] != ENTRY
    }
}

/// §5.2 — a tracer must never see an uninitialized object.
///
/// Mutator initializes object `O2`, stores a reference to it into `O1`'s
/// slot, and (per the allocation-batch protocol) fences once before
/// setting `O2`'s allocation bit. The tracer reads the slot, tests the
/// allocation bit, fences, and traces only "safe" objects. Locations:
/// `0` = O2 contents (0 = uninitialized), `1` = O1 reference slot,
/// `2` = O2's allocation bit.
pub mod alloc_publish {
    use super::*;

    /// Value representing initialized contents of O2.
    pub const INIT: u64 = 7;
    /// Encoded reference to O2 stored into O1's slot.
    pub const REF_O2: u64 = 1;

    fn program(with_protocol: bool) -> Program {
        let mut mutator = vec![
            Op::Store { loc: 0, val: INIT }, // create + initialize O2
            Op::Store {
                loc: 1,
                val: REF_O2,
            }, // store ref into O1
        ];
        if with_protocol {
            mutator.push(Op::Fence); // one fence per allocation cache
        }
        mutator.push(Op::Store { loc: 2, val: 1 }); // set allocation bit
        let mut tracer = vec![
            Op::Load { loc: 1, reg: 0 }, // find ref to O2 (via O1)
            Op::Load { loc: 2, reg: 1 }, // test allocation bit
        ];
        if with_protocol {
            tracer.push(Op::Fence); // one fence per packet of objects
        }
        tracer.push(Op::Load { loc: 0, reg: 2 }); // trace into O2
        Program {
            threads: vec![mutator, tracer],
            locations: 3,
            registers: 3,
        }
    }

    /// No protocol: the tracer traces any reference it finds. The
    /// allocation bit is still set (without a preceding fence) so the
    /// violation predicate can be shared.
    pub fn naive() -> Program {
        program(false)
    }

    /// The §5.2 batch protocol.
    pub fn protected() -> Program {
        program(true)
    }

    /// The anomaly: the tracer found the reference, would trace it, and
    /// saw uninitialized memory.
    ///
    /// In the naive variant the tracer traces whenever it sees the
    /// reference (`r0 == REF_O2 && r2 != INIT`); in the protected variant
    /// it traces only when the allocation bit test succeeded, so the
    /// violation additionally requires `r1 == 1` — objects whose bit is
    /// unset are *deferred*, not traced (the Deferred Pool).
    pub fn violated_naive(s: &FinalState) -> bool {
        s.regs[1][0] == REF_O2 && s.regs[1][2] != INIT
    }

    /// See [`violated_naive`]; the protected tracer only traces safe
    /// objects.
    pub fn violated_protected(s: &FinalState) -> bool {
        s.regs[1][0] == REF_O2 && s.regs[1][1] == 1 && s.regs[1][2] != INIT
    }

    /// The benign deferral outcome: reference visible but allocation bit
    /// not yet set; the tracer defers the object (§5.2 step 4).
    pub fn deferred(s: &FinalState) -> bool {
        s.regs[1][0] == REF_O2 && s.regs[1][1] == 0
    }
}

/// §5.3 — cleaning a dirty card must not miss an updated slot.
///
/// Mutator updates a slot of marked object `O1` to reference unmarked
/// `O2`, then dirties `O1`'s card (write barrier, **no fence**). The
/// collector snapshots the card table (load + clear), performs the
/// handshake forcing all mutators to fence, and only then scans the card.
/// Locations: `0` = O1's slot (0 = old value), `1` = card byte.
pub mod card_clean {
    use super::*;

    /// Encoded reference to O2.
    pub const REF_O2: u64 = 2;
    /// Dirty card indicator.
    pub const DIRTY: u64 = 1;

    fn program(with_handshake: bool) -> Program {
        let mutator = vec![
            Op::Store {
                loc: 0,
                val: REF_O2,
            }, // update O1.slot := O2
            Op::Store { loc: 1, val: DIRTY }, // write barrier: dirty card
        ];
        let mut collector = vec![
            Op::Load { loc: 1, reg: 0 },  // register dirty card
            Op::Store { loc: 1, val: 0 }, // clear the indicator
        ];
        if with_handshake {
            collector.push(Op::DrainOthers); // force mutators to fence
        }
        collector.push(Op::Load { loc: 0, reg: 1 }); // clean: rescan slot
        Program {
            threads: vec![mutator, collector],
            locations: 2,
            registers: 2,
        }
    }

    /// Snapshot-free cleaning with no handshake.
    pub fn naive() -> Program {
        program(false)
    }

    /// The §5.3 snapshot + handshake protocol.
    pub fn protected() -> Program {
        program(true)
    }

    /// The anomaly: the collector consumed the dirty indicator, missed the
    /// new reference, and the card ended clean — O2 would never be
    /// retraced this cycle and could be incorrectly collected.
    ///
    /// If the mutator's dirty store lands *after* the collector's clear,
    /// the card ends dirty and will be rescanned — benign, excluded by the
    /// final-memory condition.
    pub fn violated(s: &FinalState) -> bool {
        s.regs[1][0] == DIRTY && s.regs[1][1] != REF_O2 && s.memory[1] == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weaksim::reachable;

    #[test]
    fn packet_publish_anomaly_only_without_fence() {
        assert!(
            reachable(&packet_publish::naive(), packet_publish::violated),
            "naive packet publication must exhibit the stale-entry anomaly"
        );
        assert!(
            !reachable(&packet_publish::protected(), packet_publish::violated),
            "one fence per published packet removes the anomaly"
        );
    }

    #[test]
    fn alloc_publish_anomaly_only_without_protocol() {
        assert!(
            reachable(&alloc_publish::naive(), alloc_publish::violated_naive),
            "without the protocol a tracer can see uninitialized memory"
        );
        assert!(
            !reachable(
                &alloc_publish::protected(),
                alloc_publish::violated_protected
            ),
            "the allocation-bit batch protocol removes the anomaly"
        );
    }

    #[test]
    fn alloc_publish_deferral_is_reachable() {
        // The protocol works by sometimes deferring objects; check the
        // deferral path actually occurs.
        assert!(reachable(
            &alloc_publish::protected(),
            alloc_publish::deferred
        ));
    }

    #[test]
    fn alloc_publish_safe_trace_is_reachable() {
        // And the common case — bit set, contents visible — works too.
        assert!(reachable(&alloc_publish::protected(), |s| {
            s.regs[1][1] == 1 && s.regs[1][2] == alloc_publish::INIT
        }));
    }

    #[test]
    fn card_clean_anomaly_only_without_handshake() {
        assert!(
            reachable(&card_clean::naive(), card_clean::violated),
            "without the handshake a cleaned card can hide an update"
        );
        assert!(
            !reachable(&card_clean::protected(), card_clean::violated),
            "snapshot + mutator fence handshake removes the anomaly"
        );
    }

    #[test]
    fn card_clean_redirty_is_benign_and_reachable() {
        // The race where the mutator's dirty store lands after the clear
        // leaves the card dirty for a later pass: must remain possible.
        assert!(reachable(&card_clean::naive(), |s| {
            s.memory[1] == card_clean::DIRTY
        }));
    }
}
