//! Minimal `parking_lot`-style wrappers over [`std::sync`] primitives.
//!
//! The collector wants the ergonomic `parking_lot` API — `lock()` without
//! a poison `Result`, `Condvar::wait(&mut guard)` — but the workspace must
//! build hermetically with no crates.io dependencies, so this module
//! provides the same surface over the standard library. Poisoning is
//! ignored (a panicking thread does not corrupt the plain-data state these
//! locks guard; `parking_lot` has no poisoning either).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with the `parking_lot` calling convention:
/// [`Mutex::lock`] returns the guard directly and ignores poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T
    where
        T: Sized,
    {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The guard internally holds an `Option` so [`Condvar::wait`] can take
/// the underlying std guard by value and put the reacquired one back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable with the `parking_lot` calling convention:
/// [`Condvar::wait`] takes the guard by mutable reference.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the lock and waits for a notification; the
    /// lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`], with a timeout. Returns true if the wait
    /// timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let g = guard.inner.take().expect("guard present");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        result.timed_out()
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, std::time::Duration::from_millis(10)));
    }
}
