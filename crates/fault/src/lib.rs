//! Deterministic, seeded fault injection for chaos testing.
//!
//! The collector's degraded paths — refill failure, packet-pool
//! exhaustion and overflow (§4.3), starved background tracers (§3),
//! slow card-handshake acks (§5.3) — are exactly the paths ordinary
//! workloads almost never reach. This crate makes them reachable *on
//! demand and replayably*: production code marks each degraded branch
//! with a named [`point!`] site, and a test installs a [`FaultPlan`]
//! that decides, deterministically from a seed and per-site hit
//! counters, which hits of which sites fire.
//!
//! Design rules:
//!
//! - **Zero cost when off.** [`point!`] expands under the *consuming*
//!   crate's `fault-inject` feature; without it the site is the literal
//!   `false` and the branch folds away entirely.
//! - **Deterministic.** Triggers depend only on the plan seed, the site
//!   name, and that site's hit index — never on wall-clock time or an
//!   ambient RNG. The same plan over the same schedule fires the same
//!   way; probability triggers are a pure hash of (seed, site, hit).
//! - **One plan at a time.** [`FaultPlan::install`] holds a global
//!   session lock for the life of the returned [`FaultGuard`], so
//!   concurrently-run chaos tests serialize instead of corrupting each
//!   other's counters. With no plan installed, an armed-flag fast path
//!   keeps `should_fire` to a single atomic load.
//! - **No dead sites.** Every call-site name must appear in
//!   [`site::ALL`]; `mcgc-lint` rejects `point!` literals that do not,
//!   and [`FaultPlan::install`] panics on unknown names, so a typo can
//!   not silently produce a site no plan can ever reach.

use std::sync::atomic::{AtomicBool, Ordering};

use mcgc_membar::sync::{Mutex, MutexGuard};

/// The registered injection-site catalog. Call sites must use these
/// names as string literals (the lint checks literals, not consts).
pub mod site {
    /// `Heap::refill_cache` reports the free list empty before trying.
    pub const HEAP_REFILL: &str = "heap.refill";
    /// `Heap::alloc_large` fails before consulting the free list.
    pub const HEAP_ALLOC_LARGE: &str = "heap.alloc_large";
    /// `PacketPool::get_output` / `get_empty` report the pool empty,
    /// forcing the §4.3 overflow (mark-and-dirty-card) fallback.
    pub const POOL_EXHAUSTED: &str = "pool.exhausted";
    /// Sub-pool head CAS loops spin one extra iteration, simulating
    /// heavy contention on the tagged-head lists.
    pub const POOL_CAS_STORM: &str = "pool.cas_storm";
    /// A scheduler worker on concurrent-tracing duty checks out an input
    /// packet and stalls on it (payload = milliseconds), simulating
    /// priority starvation.
    pub const BG_STALL: &str = "bg.stall";
    /// A scheduler worker abandons its concurrent-tracing duty entirely.
    pub const BG_DEATH: &str = "bg.death";
    /// A mutator skips acknowledging the §5.3 card-snapshot handshake
    /// at a safepoint poll, exercising the cleaner's timeout fallback.
    pub const HANDSHAKE_DELAY: &str = "handshake.delay";
    /// A mutator increment dirties a spread of cards (payload = card
    /// count), flooding the cleaning and redirty loops with work.
    pub const CARD_FLOOD: &str = "cards.flood";
    /// A scheduler worker stalls after claiming an open bucket (payload
    /// = milliseconds), leaving the pause leader to absorb its share of
    /// the bucket's work.
    pub const SCHED_STALL: &str = "sched.stall";
    /// `Heap::try_grow` fails to reserve a new segment — the `mmap`
    /// failure analogue on the escalation ladder's grow rung.
    pub const HEAP_SEGMENT_RESERVE: &str = "heap.segment_reserve";
    /// A stop-the-world sweep fails to release an entirely-free segment
    /// (`munmap` failure analogue); the segment stays committed.
    pub const HEAP_SEGMENT_RELEASE: &str = "heap.segment_release";
    /// The background sweeper stalls before draining a batch (payload =
    /// milliseconds), leaving the current sweep epoch to the mutators'
    /// sweep-on-refill path and the next cycle's straggler fence.
    pub const SWEEP_BG_STALL: &str = "sweep.bg_stall";

    /// Every registered site. `mcgc-lint` requires each `point!`
    /// literal in the tree to appear here.
    pub const ALL: &[&str] = &[
        HEAP_REFILL,
        HEAP_ALLOC_LARGE,
        POOL_EXHAUSTED,
        POOL_CAS_STORM,
        BG_STALL,
        BG_DEATH,
        HANDSHAKE_DELAY,
        CARD_FLOOD,
        SCHED_STALL,
        HEAP_SEGMENT_RESERVE,
        HEAP_SEGMENT_RELEASE,
        SWEEP_BG_STALL,
    ];
}

/// Marks a degraded-mode branch: `if mcgc_fault::point!("site.name") {
/// /* inject */ }`. Evaluates to whether the installed plan fires this
/// hit; compiles to the literal `false` unless the *calling* crate's
/// `fault-inject` feature is on.
#[macro_export]
macro_rules! point {
    ($name:expr) => {{
        #[cfg(feature = "fault-inject")]
        {
            $crate::should_fire($name)
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }};
}

/// When a site fires, relative to that site's own 1-based hit count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire exactly on the `n`-th hit.
    Nth(u64),
    /// Fire on every `k`-th hit (hits `k`, `2k`, `3k`, ...).
    EveryK(u64),
    /// Fire on every hit from the `n`-th onward.
    From(u64),
    /// Fire with the given per-mille probability, hashed
    /// deterministically from (plan seed, site name, hit index).
    ProbabilityPermille(u64),
}

struct SiteState {
    name: &'static str,
    trigger: FaultTrigger,
    payload: u64,
    hits: u64,
    fires: u64,
}

struct PlanState {
    seed: u64,
    sites: Vec<SiteState>,
}

// Fast path: a single load decides whether any plan is installed at
// all, so un-armed test binaries pay one atomic read per site hit.
static ARMED: AtomicBool = AtomicBool::new(false);
// Serializes whole chaos scenarios (held by the FaultGuard), not
// individual site hits; `cargo test`'s default parallelism would
// otherwise interleave plans.
static SESSION: Mutex<()> = Mutex::new(());
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

/// A replayable injection plan: a seed plus per-site triggers and
/// payloads. Build with the chained setters, then [`install`].
///
/// [`install`]: FaultPlan::install
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<(&'static str, FaultTrigger, u64)>,
}

impl FaultPlan {
    /// Starts an empty plan. The seed only matters for
    /// [`FaultTrigger::ProbabilityPermille`] sites, but logging it with
    /// every chaos scenario keeps all of them replayable.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: Vec::new(),
        }
    }

    fn with(mut self, name: &'static str, trigger: FaultTrigger) -> FaultPlan {
        self.sites.push((name, trigger, 0));
        self
    }

    /// Fire `site` exactly on its `n`-th hit (1-based).
    pub fn nth(self, site: &'static str, n: u64) -> FaultPlan {
        self.with(site, FaultTrigger::Nth(n.max(1)))
    }

    /// Fire `site` on every `k`-th hit.
    pub fn every_k(self, site: &'static str, k: u64) -> FaultPlan {
        self.with(site, FaultTrigger::EveryK(k.max(1)))
    }

    /// Fire `site` on every hit from the `n`-th onward.
    pub fn from(self, site: &'static str, n: u64) -> FaultPlan {
        self.with(site, FaultTrigger::From(n.max(1)))
    }

    /// Fire `site` with probability `permille`/1000 per hit, derived
    /// deterministically from the plan seed.
    pub fn probability_permille(self, site: &'static str, permille: u64) -> FaultPlan {
        self.with(site, FaultTrigger::ProbabilityPermille(permille.min(1000)))
    }

    /// Attaches a payload (site-specific meaning, e.g. stall duration
    /// in ms) to the most recently added site.
    ///
    /// # Panics
    /// If no site has been added yet.
    pub fn payload(mut self, value: u64) -> FaultPlan {
        self.sites
            .last_mut()
            .expect("payload() must follow a site trigger")
            .2 = value;
        self
    }

    /// Installs the plan globally, returning a guard that uninstalls it
    /// on drop. Blocks until any previously installed plan's guard is
    /// dropped (chaos scenarios serialize).
    ///
    /// # Panics
    /// If the plan names a site not registered in [`site::ALL`].
    pub fn install(self) -> FaultGuard {
        for (name, _, _) in &self.sites {
            assert!(
                site::ALL.contains(name),
                "fault plan targets unregistered site {name:?}; add it to mcgc_fault::site::ALL"
            );
        }
        let session = SESSION.lock();
        *STATE.lock() = Some(PlanState {
            seed: self.seed,
            sites: self
                .sites
                .into_iter()
                .map(|(name, trigger, payload)| SiteState {
                    name,
                    trigger,
                    payload,
                    hits: 0,
                    fires: 0,
                })
                .collect(),
        });
        ARMED.store(true, Ordering::Release);
        FaultGuard { _session: session }
    }
}

/// Keeps a [`FaultPlan`] installed; dropping it disarms every site and
/// releases the global session lock. Read [`hits`]/[`fires`] *before*
/// dropping the guard.
///
/// [`hits`]: hits
/// [`fires`]: fires
pub struct FaultGuard {
    _session: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *STATE.lock() = None;
    }
}

/// SplitMix64 finalizer over (seed, site, hit): the whole source of
/// randomness for probability triggers, so runs replay from the seed.
fn mix(seed: u64, site: &str, hit: u64) -> u64 {
    // FNV-1a folds the site name in, so distinct sites sharing a seed
    // see independent streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    let mut z = seed ^ h ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Records a hit on `site` and reports whether the installed plan fires
/// it. Call through [`point!`], not directly, so the site disappears
/// when `fault-inject` is off.
pub fn should_fire(site: &str) -> bool {
    if !ARMED.load(Ordering::Acquire) {
        return false;
    }
    let mut state = STATE.lock();
    let Some(plan) = state.as_mut() else {
        return false;
    };
    let seed = plan.seed;
    let Some(s) = plan.sites.iter_mut().find(|s| s.name == site) else {
        return false;
    };
    s.hits += 1;
    let hit = s.hits; // 1-based
    let fire = match s.trigger {
        FaultTrigger::Nth(n) => hit == n,
        FaultTrigger::EveryK(k) => hit % k == 0,
        FaultTrigger::From(n) => hit >= n,
        FaultTrigger::ProbabilityPermille(p) => mix(seed, site, hit) % 1000 < p,
    };
    if fire {
        s.fires += 1;
    }
    fire
}

fn read_site<R>(site: &str, f: impl FnOnce(&SiteState) -> R, default: R) -> R {
    if !ARMED.load(Ordering::Acquire) {
        return default;
    }
    let state = STATE.lock();
    state
        .as_ref()
        .and_then(|p| p.sites.iter().find(|s| s.name == site))
        .map_or(default, f)
}

/// The installed plan's payload for `site` (0 when absent). Injection
/// code reads this for magnitudes: stall milliseconds, flood widths.
pub fn payload(site: &str) -> u64 {
    read_site(site, |s| s.payload, 0)
}

/// How many times `site` has been hit under the installed plan.
pub fn hits(site: &str) -> u64 {
    read_site(site, |s| s.hits, 0)
}

/// How many times `site` has fired under the installed plan.
pub fn fires(site: &str) -> u64 {
    read_site(site, |s| s.fires, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire() {
        assert!(!should_fire(site::HEAP_REFILL));
        assert_eq!(hits(site::HEAP_REFILL), 0);
        assert_eq!(payload(site::BG_STALL), 0);
    }

    #[test]
    fn nth_every_k_and_from_triggers() {
        let _g = FaultPlan::new(1)
            .nth(site::HEAP_REFILL, 3)
            .every_k(site::POOL_EXHAUSTED, 2)
            .from(site::BG_STALL, 4)
            .install();
        let pattern: Vec<bool> = (0..6).map(|_| should_fire(site::HEAP_REFILL)).collect();
        assert_eq!(pattern, [false, false, true, false, false, false]);
        let pattern: Vec<bool> = (0..6).map(|_| should_fire(site::POOL_EXHAUSTED)).collect();
        assert_eq!(pattern, [false, true, false, true, false, true]);
        let pattern: Vec<bool> = (0..6).map(|_| should_fire(site::BG_STALL)).collect();
        assert_eq!(pattern, [false, false, false, true, true, true]);
        assert_eq!(hits(site::HEAP_REFILL), 6);
        assert_eq!(fires(site::HEAP_REFILL), 1);
        assert_eq!(fires(site::POOL_EXHAUSTED), 3);
        // A site with no trigger in the plan never fires.
        assert!(!should_fire(site::BG_DEATH));
    }

    #[test]
    fn probability_replays_from_seed_and_tracks_rate() {
        let run = |seed: u64| -> Vec<bool> {
            let _g = FaultPlan::new(seed)
                .probability_permille(site::HANDSHAKE_DELAY, 300)
                .install();
            (0..512)
                .map(|_| should_fire(site::HANDSHAKE_DELAY))
                .collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed replays bit-for-bit");
        assert_ne!(a, c, "different seed differs");
        let rate = a.iter().filter(|f| **f).count();
        assert!((80..230).contains(&rate), "~30% of 512, got {rate}");
    }

    #[test]
    fn payload_rides_with_its_site() {
        let _g = FaultPlan::new(7)
            .from(site::BG_STALL, 1)
            .payload(2500)
            .nth(site::CARD_FLOOD, 1)
            .payload(128)
            .install();
        assert_eq!(payload(site::BG_STALL), 2500);
        assert_eq!(payload(site::CARD_FLOOD), 128);
        assert_eq!(payload(site::BG_DEATH), 0);
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _g = FaultPlan::new(9).from(site::HEAP_REFILL, 1).install();
            assert!(should_fire(site::HEAP_REFILL));
        }
        assert!(!should_fire(site::HEAP_REFILL));
    }

    #[test]
    #[should_panic(expected = "unregistered site")]
    fn unknown_site_rejected_at_install() {
        let _ = FaultPlan::new(0).nth("heap.typo", 1).install();
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn point_macro_resolves_under_feature() {
        let _g = FaultPlan::new(0).nth(site::HEAP_REFILL, 1).install();
        assert!(point!("heap.refill"));
        assert!(!point!("heap.refill"));
    }
}
