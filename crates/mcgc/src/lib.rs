//! `mcgc` — a parallel, incremental, mostly concurrent garbage collector
//! for servers, reproducing Ossia, Ben-Yitzhak, Goft, Kolodner,
//! Leikehman & Owshanko, *"A Parallel, Incremental and Concurrent GC for
//! Servers"*, PLDI 2002.
//!
//! This facade re-exports the whole system:
//!
//! * [`core`](mcgc_core) — the collector (CGC) and the stop-the-world
//!   baseline: kickoff/progress pacing (§3), concurrent + stop-the-world
//!   phases (§2), write barrier and card cleaning (§2.1, §5.3);
//! * [`packets`](mcgc_packets) — the work packet load-balancing
//!   mechanism (§4);
//! * [`heap`](mcgc_heap) — the heap substrate (granule arena, allocation
//!   and mark bit vectors, card table, free list, bitwise sweep);
//! * [`membar`](mcgc_membar) — counted fences and the weak-memory litmus
//!   simulator (§5);
//! * [`telemetry`](mcgc_telemetry) — live observability: the phase-event
//!   ring buffer, pause/increment histograms, and the metrics registry;
//! * [`workloads`](mcgc_workloads) — SPECjbb/pBOB/javac-like synthetic
//!   workloads (§6).
//!
//! # Quickstart
//!
//! ```
//! use mcgc::{Gc, GcConfig, ObjectShape};
//!
//! let gc = Gc::new(GcConfig::with_heap_bytes(8 << 20));
//! let mut mutator = gc.register_mutator();
//! let pair = ObjectShape::new(2, 0, 0);
//! let a = mutator.alloc(pair)?;
//! mutator.root_push(Some(a));
//! let b = mutator.alloc(pair)?;
//! mutator.write_ref(a, 0, Some(b));
//! mutator.collect();
//! assert_eq!(mutator.read_ref(a, 0), Some(b));
//! drop(mutator);
//! gc.shutdown();
//! # Ok::<(), mcgc::GcError>(())
//! ```

pub use mcgc_core::{
    CollectorMode, CostModel, CycleStats, Gc, GcConfig, GcError, GcLog, HeapConfig, Mutator,
    ObjectRef, ObjectShape, Pacer, Phase, PoolConfig, PoolStats, SweepMode, Trigger,
};

/// The heap substrate.
pub mod heap {
    pub use mcgc_heap::*;
}

/// The work packet mechanism (§4).
pub mod packets {
    pub use mcgc_packets::*;
}

/// Fence accounting and the weak-memory simulator (§5).
pub mod membar {
    pub use mcgc_membar::*;
}

/// Live telemetry: event ring, histograms, metrics registry.
pub mod telemetry {
    pub use mcgc_telemetry::*;
}

/// Synthetic workloads (§6).
pub mod workloads {
    pub use mcgc_workloads::*;
}

/// Deterministic fault injection (chaos testing). The sites only fire
/// when the `fault-inject` cargo feature is enabled AND a seeded
/// [`fault::FaultPlan`] is installed; otherwise they compile to `false`.
pub mod fault {
    pub use mcgc_fault::*;
}
