//! A SPECjbb2000-like synthetic workload (paper §6): warehouse threads
//! running order-entry transactions against a stable live set, producing
//! steady allocation, mutation (write-barrier traffic), and
//! medium-lifetime garbage.
//!
//! SPECjbb emulates the middle tier of a 3-tier system and is throughput
//! oriented; what the collector sees — and what this synthetic preserves
//! — is its heap shape: a per-warehouse live set (district/stock data)
//! plus a churn of order objects that stay reachable for a bounded number
//! of transactions (the history ring) and then die.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcgc_core::{Gc, GcError, Mutator, ObjectRef, ObjectShape};

use crate::rng::SmallRng;

use crate::framework::{run_threads, RunReport};
use crate::graphs::{build_ring, build_tree, class, sample_tree};

/// Parameters of a jbb-style run.
#[derive(Clone, Debug)]
pub struct JbbOptions {
    /// Number of warehouses. SPECjbb runs one thread per warehouse.
    pub warehouses: usize,
    /// Terminals (threads) per warehouse: 1 for SPECjbb; 25 for the
    /// paper's pBOB runs.
    pub terminals_per_warehouse: usize,
    /// Think time between transactions (None for SPECjbb; pBOB's
    /// autoserver mode adds think time to simulate idle processors).
    pub think_time: Option<Duration>,
    /// Measurement window.
    pub duration: Duration,
    /// Live bytes per warehouse (the stock tree).
    pub live_bytes_per_warehouse: usize,
    /// Slots in each terminal's order-history ring (orders stay live for
    /// this many transactions).
    pub history_slots: u32,
    /// RNG seed (runs are seeded deterministically per thread).
    pub seed: u64,
}

impl JbbOptions {
    /// SPECjbb-style options sized so the stable live set reaches
    /// `residency` (e.g. 0.6 = the paper's 60%) of `heap_bytes`.
    pub fn sized_for(heap_bytes: usize, warehouses: usize, residency: f64) -> JbbOptions {
        let live_total = (heap_bytes as f64 * residency) as usize;
        JbbOptions {
            warehouses,
            terminals_per_warehouse: 1,
            think_time: None,
            duration: Duration::from_millis(1000),
            live_bytes_per_warehouse: live_total / warehouses.max(1),
            history_slots: 64,
            seed: 0x5EED,
        }
    }

    /// pBOB-style options: `terminals` threads per warehouse with think
    /// time (§6: 25 terminals per warehouse, autoserver mode).
    pub fn pbob(heap_bytes: usize, warehouses: usize, residency: f64) -> JbbOptions {
        let mut o = JbbOptions::sized_for(heap_bytes, warehouses, residency);
        o.terminals_per_warehouse = 25;
        o.think_time = Some(Duration::from_millis(2));
        o
    }

    /// Total worker threads.
    pub fn threads(&self) -> usize {
        self.warehouses * self.terminals_per_warehouse
    }
}

/// One terminal's working state.
struct Terminal {
    mutator: Mutator,
    rng: SmallRng,
    /// Cross-reference targets inside the warehouse's stock tree.
    stock_samples: Vec<ObjectRef>,
    /// The order-history ring (rooted on the shadow stack).
    ring: ObjectRef,
    ring_slots: u32,
    cursor: u32,
}

impl Terminal {
    fn new(gc: &Arc<Gc>, opts: &JbbOptions, thread_index: usize) -> Result<Terminal, GcError> {
        let mut mutator = gc.register_mutator();
        let live = opts.live_bytes_per_warehouse / opts.terminals_per_warehouse.max(1);
        let stock = build_tree(&mut mutator, class::STOCK, live.max(72))?;
        mutator.root_push(Some(stock));
        let ring = build_ring(&mut mutator, opts.history_slots)?;
        mutator.root_push(Some(ring));
        let stock_samples = sample_tree(&mutator, stock, 64);
        Ok(Terminal {
            mutator,
            rng: SmallRng::seed_from_u64(opts.seed ^ (thread_index as u64).wrapping_mul(0x9E37)),
            stock_samples,
            ring,
            ring_slots: opts.history_slots,
            cursor: 0,
        })
    }

    /// One order-entry transaction: allocate an order with a handful of
    /// line items, link it to stock, and publish it in the history ring
    /// (retiring the order it displaces).
    fn transaction(&mut self) -> Result<(), GcError> {
        let items = self.rng.gen_range_u32(3, 9);
        let order = self
            .mutator
            .alloc(ObjectShape::new(items + 1, 2, class::ORDER))?;
        let order_root = self.mutator.root_push(Some(order));
        // Cross-reference into the stable stock data.
        let stock = self.stock_samples[self.rng.gen_range_usize(0, self.stock_samples.len())];
        self.mutator.write_ref(order, 0, Some(stock));
        for i in 0..items {
            let payload = self.rng.gen_range_u32(4, 40);
            let line = self.mutator.alloc_into(
                order,
                i + 1,
                ObjectShape::new(0, payload, class::ORDER_LINE),
            )?;
            self.mutator.write_data(line, 0, u64::from(payload));
        }
        self.mutator.write_data(order, 0, u64::from(self.cursor));
        // Publish in the ring; the displaced order becomes garbage after
        // `history_slots` transactions.
        self.mutator.write_ref(self.ring, self.cursor, Some(order));
        self.cursor = (self.cursor + 1) % self.ring_slots;
        // Occasionally a large object (a report buffer), short-lived.
        if self.rng.gen_ratio(1, 128) {
            let big = self.mutator.alloc(ObjectShape::new(0, 1500, class::DATA))?;
            self.mutator.write_data(big, 0, 1);
        }
        self.mutator.root_truncate(order_root);
        Ok(())
    }
}

/// Runs the workload and returns the report. OOM aborts the run's thread
/// (the report still covers completed work); sizing per
/// [`JbbOptions::sized_for`] leaves ample headroom.
pub fn run(gc: &Arc<Gc>, opts: &JbbOptions) -> RunReport {
    run_threads(gc, opts.threads(), opts.duration, |i, stop| {
        let mut terminal = match Terminal::new(gc, opts, i) {
            Ok(t) => t,
            Err(_) => return 0,
        };
        let mut n = 0u64;
        while !stop.load(Ordering::Relaxed) {
            if terminal.transaction().is_err() {
                break; // OOM: stop this terminal
            }
            n += 1;
            if let Some(think) = opts.think_time {
                terminal.mutator.think(think);
            }
            if !stop.load(Ordering::Relaxed) {
                terminal.mutator.safepoint();
            }
        }
        n
    })
}

/// Convenience: construct a collector, run jbb, shut down, and return the
/// report.
pub fn run_standalone(config: mcgc_core::GcConfig, opts: &JbbOptions) -> RunReport {
    let gc = Gc::new(config);
    let report = run(&gc, opts);
    gc.shutdown();
    report
}

/// Re-exported stop-flag type for custom drivers.
pub type StopFlag = AtomicBool;

#[cfg(test)]
mod tests {
    use super::*;
    use mcgc_core::GcConfig;

    #[test]
    fn jbb_runs_and_collects() {
        let heap = 12 << 20;
        let mut cfg = GcConfig::with_heap_bytes(heap);
        cfg.background_threads = 1;
        cfg.stw_workers = 2;
        let mut opts = JbbOptions::sized_for(heap, 2, 0.5);
        opts.duration = Duration::from_millis(400);
        let report = run_standalone(cfg, &opts);
        assert!(report.transactions > 50, "{}", report.transactions);
        assert!(
            !report.log.cycles.is_empty(),
            "expected at least one GC cycle"
        );
    }

    #[test]
    fn pbob_think_time_runs() {
        let heap = 12 << 20;
        let mut cfg = GcConfig::with_heap_bytes(heap);
        cfg.background_threads = 1;
        cfg.stw_workers = 2;
        let mut opts = JbbOptions::pbob(heap, 1, 0.4);
        opts.terminals_per_warehouse = 4;
        opts.duration = Duration::from_millis(300);
        let report = run_standalone(cfg, &opts);
        assert_eq!(report.threads, 4);
        assert!(report.transactions > 0);
    }
}
