//! Workload driver: spawns mutator threads, runs them to a deadline, and
//! gathers the run-level report the benches print.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcgc_core::{Gc, GcLog};
use mcgc_membar::FenceStats;
use mcgc_telemetry::trace_export::worst_pause_postmortem;

/// Run-level results of a workload execution.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Completed transactions across all threads.
    pub transactions: u64,
    /// Wall-clock duration of the measurement window.
    pub wall: Duration,
    /// Bytes allocated during the window.
    pub allocated_bytes: u64,
    /// The collector's per-cycle log (cycles completed by the end of the
    /// window).
    pub log: GcLog,
    /// Fence counters accumulated during the window.
    pub fences: FenceStats,
    /// Packet-pool statistics at the end of the window.
    pub pool: mcgc_core::PoolStats,
    /// Number of worker threads the workload ran.
    pub threads: usize,
    /// Registry snapshot at the end of the window. Counters are totals
    /// since collector construction, not window deltas — with the usual
    /// one-collector-per-run setup (`run_standalone`) the two coincide.
    pub metrics: BTreeMap<String, f64>,
    /// Rendered flight-recorder postmortem of the worst pause the
    /// recorder still holds: per-phase wall shares and per-worker
    /// busy/idle splits. `None` when no pause was recorded (or telemetry
    /// is disabled).
    pub worst_pause_postmortem: Option<String>,
}

impl RunReport {
    /// Transactions per second.
    pub fn throughput(&self) -> f64 {
        self.transactions as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Allocation rate in KB/ms over the window.
    pub fn alloc_rate_kb_per_ms(&self) -> f64 {
        self.allocated_bytes as f64 / 1024.0 / (self.wall.as_millis().max(1) as f64)
    }

    /// A metric from the end-of-window registry snapshot (0.0 when
    /// absent).
    pub fn metric(&self, name: &str) -> f64 {
        self.metrics.get(name).copied().unwrap_or(0.0)
    }
}

/// Runs `threads` worker bodies until `duration` elapses, then joins
/// them. Each body receives `(thread_index, &stop_flag)` and returns its
/// transaction count; bodies must poll the stop flag frequently.
///
/// The report covers exactly the measurement window: cycle logs and fence
/// counters are deltas from the window start.
pub fn run_threads(
    gc: &Arc<Gc>,
    threads: usize,
    duration: Duration,
    body: impl Fn(usize, &AtomicBool) -> u64 + Send + Sync,
) -> RunReport {
    let stop = AtomicBool::new(false);
    let fences_before = FenceStats::snapshot();
    let cycles_before = gc.log().cycles.len();
    let alloc_before = gc.heap().bytes_allocated();
    let start = Instant::now();
    let transactions: u64 = std::thread::scope(|s| {
        let stop = &stop;
        let body = &body;
        let handles: Vec<_> = (0..threads)
            .map(|i| s.spawn(move || body(i, stop)))
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::SeqCst);
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    let wall = start.elapsed();
    let mut log = gc.log();
    log.cycles.drain(..cycles_before.min(log.cycles.len()));
    gc.telemetry_sample();
    RunReport {
        transactions,
        wall,
        allocated_bytes: gc.heap().bytes_allocated() - alloc_before,
        log,
        fences: FenceStats::snapshot().since(&fences_before),
        pool: gc.pool_stats(),
        threads,
        metrics: gc.telemetry().registry().sample().into_iter().collect(),
        worst_pause_postmortem: worst_pause_postmortem(gc.telemetry().spans())
            .map(|pm| pm.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgc_core::{GcConfig, ObjectShape};

    #[test]
    fn driver_runs_and_reports() {
        let gc = mcgc_core::Gc::new(GcConfig::with_heap_bytes(8 << 20));
        let report = run_threads(&gc, 2, Duration::from_millis(120), |_, stop| {
            let mut m = gc.register_mutator();
            let mut n = 0;
            while !stop.load(Ordering::Relaxed) {
                m.alloc(ObjectShape::new(0, 8, 0)).unwrap();
                n += 1;
            }
            n
        });
        assert!(report.transactions > 0);
        assert!(report.allocated_bytes > 0);
        assert!(report.throughput() > 0.0);
        assert_eq!(report.threads, 2);
        gc.shutdown();
    }
}
