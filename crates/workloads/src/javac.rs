//! A javac-like synthetic workload (paper §6): a single-threaded compiler
//! building and discarding large ASTs over a persistent symbol table —
//! the paper's window into small-application behaviour (25 MB heap, 70%
//! residency, uniprocessor, one background thread).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mcgc_core::{Gc, GcError, Mutator, ObjectRef, ObjectShape};

use crate::rng::SmallRng;

use crate::framework::{run_threads, RunReport};
use crate::graphs::{build_tree, class};

/// Parameters of a javac-style run.
#[derive(Clone, Debug)]
pub struct JavacOptions {
    /// Measurement window.
    pub duration: Duration,
    /// Persistent symbol-table bytes (the long-lived fraction).
    pub symbol_table_bytes: usize,
    /// Bytes of AST built (and then discarded) per compilation unit.
    pub ast_bytes_per_unit: usize,
    /// RNG seed.
    pub seed: u64,
}

impl JavacOptions {
    /// Sized for `heap_bytes` at the paper's 70% residency: most of the
    /// residency comes from the per-unit AST (transient but large), with
    /// a persistent symbol table underneath.
    pub fn sized_for(heap_bytes: usize) -> JavacOptions {
        JavacOptions {
            duration: Duration::from_millis(1000),
            symbol_table_bytes: (heap_bytes as f64 * 0.35) as usize,
            ast_bytes_per_unit: (heap_bytes as f64 * 0.35) as usize,
            seed: 0xC0FFEE,
        }
    }
}

/// Builds one compilation unit's AST (a ragged tree with leaf payloads),
/// "type-checks" it (a traversal storing symbol links), and returns the
/// node count.
fn compile_unit(
    m: &mut Mutator,
    rng: &mut SmallRng,
    symbols: &[ObjectRef],
    budget: usize,
) -> Result<u64, GcError> {
    let node = ObjectShape::new(3, 4, class::AST); // 2 children + 1 symbol link
    let node_bytes = node.bytes();
    let count = (budget / node_bytes).max(1);
    let root = m.alloc(node)?;
    let base = m.root_push(Some(root));
    let mut frontier = vec![root];
    let mut built = 1u64;
    'grow: while (built as usize) < count {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for &parent in &frontier {
            let fanout = rng.gen_range_u32(1, 3);
            for slot in 0..fanout {
                if built as usize >= count {
                    break 'grow;
                }
                let child = m.alloc_into(parent, slot, node)?;
                // "Resolve" a name: link the AST node to a symbol.
                let sym = symbols[rng.gen_range_usize(0, symbols.len())];
                m.write_ref(child, 2, Some(sym));
                next.push(child);
                built += 1;
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    // Traverse (constant folding pass): read-only walk.
    let mut visited = 0u64;
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        visited += 1;
        m.write_data(n, 0, visited);
        for slot in 0..2 {
            if let Some(c) = m.read_ref(n, slot) {
                stack.push(c);
            }
        }
    }
    // Drop the AST: truncating the shadow stack makes it garbage.
    m.root_truncate(base);
    Ok(visited)
}

/// Runs the single-threaded javac workload; each "transaction" is one
/// compilation unit.
pub fn run(gc: &Arc<Gc>, opts: &JavacOptions) -> RunReport {
    run_threads(gc, 1, opts.duration, |_, stop| {
        let mut m = gc.register_mutator();
        let Ok(symtab) = build_tree(&mut m, class::SYMBOL, opts.symbol_table_bytes) else {
            return 0;
        };
        m.root_push(Some(symtab));
        let symbols = crate::graphs::sample_tree(&m, symtab, 256);
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let mut units = 0u64;
        while !stop.load(Ordering::Relaxed) {
            match compile_unit(&mut m, &mut rng, &symbols, opts.ast_bytes_per_unit) {
                Ok(_) => units += 1,
                Err(_) => break,
            }
        }
        units
    })
}

/// Convenience: construct, run, shut down.
pub fn run_standalone(config: mcgc_core::GcConfig, opts: &JavacOptions) -> RunReport {
    let gc = Gc::new(config);
    let report = run(&gc, opts);
    gc.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgc_core::GcConfig;

    #[test]
    fn javac_compiles_units_and_collects() {
        let heap = 8 << 20;
        let mut cfg = GcConfig::with_heap_bytes(heap);
        cfg.background_threads = 1;
        cfg.stw_workers = 1;
        let mut opts = JavacOptions::sized_for(heap);
        opts.duration = Duration::from_millis(400);
        let report = run_standalone(cfg, &opts);
        assert!(report.transactions > 0, "compiled at least one unit");
        assert!(!report.log.cycles.is_empty(), "GC cycles occurred");
    }
}
