//! Object-graph builders shared by the synthetic workloads.

use mcgc_core::{GcError, Mutator, ObjectRef, ObjectShape};

/// Class tags used by the workloads (purely diagnostic).
pub mod class {
    /// Warehouse root object.
    pub const WAREHOUSE: u8 = 1;
    /// Stock-tree node.
    pub const STOCK: u8 = 2;
    /// Order-history ring.
    pub const RING: u8 = 3;
    /// Order header.
    pub const ORDER: u8 = 4;
    /// Order line item.
    pub const ORDER_LINE: u8 = 5;
    /// AST node (javac workload).
    pub const AST: u8 = 6;
    /// Symbol-table node (javac workload).
    pub const SYMBOL: u8 = 7;
    /// Generic payload.
    pub const DATA: u8 = 8;
}

/// A binary tree node: 2 reference slots + 6 data granules (72 bytes).
pub fn tree_node_shape(class: u8) -> ObjectShape {
    ObjectShape::new(2, 6, class)
}

/// Builds a binary tree of roughly `budget_bytes` and returns its root.
/// The tree is rooted in the caller's shadow stack before growing so a
/// collection mid-build cannot reclaim it.
///
/// # Errors
/// Propagates allocation failure.
pub fn build_tree(m: &mut Mutator, class: u8, budget_bytes: usize) -> Result<ObjectRef, GcError> {
    let shape = tree_node_shape(class);
    let node_bytes = shape.bytes();
    let count = (budget_bytes / node_bytes).max(1);
    let root = m.alloc(shape)?;
    let slot = m.root_push(Some(root));
    // Grow breadth-first so depth stays logarithmic.
    let mut frontier = vec![root];
    let mut built = 1;
    'grow: while built < count {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for &parent in &frontier {
            for child_slot in 0..2 {
                if built >= count {
                    break 'grow;
                }
                let child = m.alloc_into(parent, child_slot, shape)?;
                next.push(child);
                built += 1;
            }
        }
        frontier = next;
    }
    m.root_truncate(slot);
    Ok(root)
}

/// Counts the nodes of a tree built by [`build_tree`].
pub fn count_tree(m: &Mutator, root: ObjectRef) -> usize {
    let mut count = 0;
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        count += 1;
        for slot in 0..2 {
            if let Some(child) = m.read_ref(node, slot) {
                stack.push(child);
            }
        }
    }
    count
}

/// Samples `n` nodes of a tree (for cross-references from transactions).
pub fn sample_tree(m: &Mutator, root: ObjectRef, n: usize) -> Vec<ObjectRef> {
    let mut out = Vec::with_capacity(n);
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if out.len() >= n {
            break;
        }
        out.push(node);
        for slot in 0..2 {
            if let Some(child) = m.read_ref(node, slot) {
                stack.push(child);
            }
        }
    }
    out
}

/// Allocates an order-history ring with `slots` reference slots.
///
/// # Errors
/// Propagates allocation failure.
pub fn build_ring(m: &mut Mutator, slots: u32) -> Result<ObjectRef, GcError> {
    m.alloc(ObjectShape::new(slots, 1, class::RING))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgc_core::{Gc, GcConfig};

    #[test]
    fn tree_has_requested_size() {
        let gc = Gc::new(GcConfig::with_heap_bytes(8 << 20));
        let mut m = gc.register_mutator();
        let root = build_tree(&mut m, class::STOCK, 72 * 1000).unwrap();
        assert_eq!(count_tree(&m, root), 1000);
        let sample = sample_tree(&m, root, 32);
        assert_eq!(sample.len(), 32);
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn tree_survives_collection() {
        let gc = Gc::new(GcConfig::with_heap_bytes(8 << 20));
        let mut m = gc.register_mutator();
        let root = build_tree(&mut m, class::STOCK, 72 * 5000).unwrap();
        m.root_push(Some(root));
        m.collect();
        assert_eq!(count_tree(&m, root), 5000);
        drop(m);
        gc.shutdown();
    }
}
