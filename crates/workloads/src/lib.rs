//! Synthetic workloads reproducing the heap behaviour of the paper's
//! benchmarks (§6): `jbb` (SPECjbb2000-like order-entry transactions,
//! throughput oriented), `pbob` (the same engine with many terminals per
//! warehouse and think time, reaching thousands of threads with CPU idle
//! time), and `javac` (a single-threaded compiler building and dropping
//! large ASTs).
//!
//! What matters to the collector is the heap *shape* each benchmark
//! induces — live-set residency, allocation rate, mutation rate, object
//! lifetimes, thread count, idle time — and each synthetic makes those
//! first-class knobs, so the benches can reproduce the paper's setups
//! (60% residency at 8 warehouses, 25 terminals/warehouse, 70% residency
//! javac) at any heap scale.
//!
//! ```no_run
//! use mcgc_core::GcConfig;
//! use mcgc_workloads::jbb::{run_standalone, JbbOptions};
//!
//! let heap = 64 << 20;
//! let opts = JbbOptions::sized_for(heap, 8, 0.6);
//! let report = run_standalone(GcConfig::with_heap_bytes(heap), &opts);
//! println!("throughput: {:.0} tx/s", report.throughput());
//! println!("avg pause:  {:.1} ms", report.log.avg_pause_ms());
//! ```

pub mod framework;
pub mod graphs;
pub mod javac;
pub mod jbb;
pub mod rng;

/// pBOB is the jbb engine with terminals and think time; re-exported for
/// discoverability.
pub mod pbob {
    pub use crate::jbb::JbbOptions;
    pub use crate::jbb::{run, run_standalone};

    /// pBOB-style options (25 terminals per warehouse, think time).
    pub fn options(heap_bytes: usize, warehouses: usize, residency: f64) -> JbbOptions {
        JbbOptions::pbob(heap_bytes, warehouses, residency)
    }
}

pub use framework::{run_threads, RunReport};
