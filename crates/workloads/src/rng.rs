//! A tiny deterministic PRNG (SplitMix64) so the workloads and the
//! randomized property tests need no external `rand` crate — the
//! workspace builds hermetically.
//!
//! SplitMix64 (Steele, Lea & Flood 2014) passes BigCrush for the
//! statistical quality a synthetic workload needs, seeds from a single
//! `u64`, and is four instructions per draw — the point here is cheap,
//! reproducible variety, not cryptography.

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (same seed, same stream).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`. Uses the widening-multiply range
    /// reduction; the modulo bias is negligible for workload purposes.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform `u32` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// True with probability `num / denom`.
    ///
    /// # Panics
    /// Panics if `denom` is zero.
    #[inline]
    pub fn gen_ratio(&mut self, num: u32, denom: u32) -> bool {
        self.gen_range_u64(0, denom as u64) < num as u64
    }

    /// A random `bool` (probability 1/2).
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range_u32(3, 9);
            assert!((3..9).contains(&v));
            let u = r.gen_range_usize(0, 5);
            assert!(u < 5);
        }
    }

    #[test]
    fn ratio_roughly_calibrated() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
