//! Shared harness utilities for the paper-reproduction benches.
//!
//! Every table and figure in the paper's §6 has a `[[bench]]` target
//! (`harness = false`) in this crate that prints the same rows or series
//! the paper reports. Scale knobs:
//!
//! * `MCGC_SCALE` — multiplies heap sizes and run durations (default 1.0;
//!   the defaults keep the full suite to minutes on one CPU).
//! * `MCGC_SECONDS` — measurement window per configuration point.
//!
//! Pause columns are work-model milliseconds (deterministic, calibrated
//! to the paper's 4-way testbed; see `CostModel`); wall-clock is also
//! recorded in the logs for reference.

use std::time::Duration;

use mcgc_core::{CollectorMode, GcConfig};
use mcgc_workloads::jbb::JbbOptions;

/// Global scale factor from `MCGC_SCALE`.
pub fn scale() -> f64 {
    std::env::var("MCGC_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Measurement window per configuration point, from `MCGC_SECONDS`.
pub fn seconds(default: f64) -> Duration {
    let s = std::env::var("MCGC_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    Duration::from_secs_f64(s * scale())
}

/// Scaled heap size in bytes.
pub fn heap_bytes(default_mb: usize) -> usize {
    (((default_mb as f64 * scale()) as usize).max(8)) << 20
}

/// A jbb configuration point matching the paper's SPECjbb setup (60%
/// residency).
pub fn jbb_opts(heap: usize, warehouses: usize, secs: Duration) -> JbbOptions {
    let mut opts = JbbOptions::sized_for(heap, warehouses, 0.6);
    opts.duration = secs;
    opts
}

/// Collector config for the given mode and heap (paper-default knobs).
pub fn gc_config(mode: CollectorMode, heap: usize) -> GcConfig {
    let mut cfg = GcConfig::with_heap_bytes(heap);
    cfg.mode = mode;
    cfg
}

/// Drops warm-up cycles from a log (SPECjbb-style ramp-up exclusion):
/// the first cycles run before the pacer's `L`/`M` estimates converge.
pub fn steady(log: &mcgc_core::GcLog) -> mcgc_core::GcLog {
    let skip = (log.cycles.len() / 4).min(2);
    mcgc_core::GcLog {
        cycles: log.cycles[skip..].to_vec(),
    }
}

/// Usable host parallelism (1 when the platform can't say).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The host/mode metadata fragment every `BENCH_*.json` embeds: how much
/// real parallelism the run had and which mode axis the points cover.
/// Scaling ratios from a 1-CPU host — where the scheduler's pause
/// workers time-slice and "speedups" sit near 0.9x — must never be
/// misread as a real-parallelism regression, so the parallelism travels
/// with the numbers.
pub fn host_meta_json(modes: &str) -> String {
    format!(
        "  \"available_parallelism\": {},\n  \"modes\": \"{modes}\",\n",
        available_parallelism()
    )
}

/// Prints the standard bench header naming the reproduced result.
pub fn banner(what: &str, paper: &str) {
    println!("==============================================================");
    println!("{what}");
    println!("paper: {paper}");
    println!("scale: {} (MCGC_SCALE), pauses are work-model ms", scale());
    println!("==============================================================");
}

/// Formats a float with fixed precision, or "-" for NaN.
pub fn fnum(v: f64, prec: usize) -> String {
    if v.is_nan() {
        "-".into()
    } else {
        format!("{v:.prec$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        if std::env::var("MCGC_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
            assert_eq!(heap_bytes(32), 32 << 20);
        }
    }

    #[test]
    fn jbb_opts_sized() {
        let o = jbb_opts(64 << 20, 8, Duration::from_secs(1));
        assert_eq!(o.warehouses, 8);
        assert_eq!(o.terminals_per_warehouse, 1);
        assert!(o.live_bytes_per_warehouse > 0);
    }
}
