//! §5: fence reduction on weak-ordering hardware. A straightforward
//! implementation needs a fence on every object allocation, in every
//! write barrier, and for every object marked; the paper's batching needs
//! one per allocation cache, none in the write barrier, and one per work
//! packet. This bench measures the batched counts during a jbb run and
//! compares them with the naive counts computed from the same run's
//! object/write/mark volumes.

use mcgc_bench::{banner, gc_config, heap_bytes, jbb_opts, seconds};
use mcgc_core::CollectorMode;
use mcgc_membar::FenceStats;
use mcgc_workloads::jbb;

fn main() {
    banner(
        "Fence counts (§5): batched protocols vs naive per-operation fences",
        "one fence per alloc cache; none in write barrier; one per packet",
    );
    let heap = heap_bytes(48);
    let secs = seconds(2.5);
    let opts = jbb_opts(heap, 4, secs);
    let cfg = gc_config(CollectorMode::Concurrent, heap);

    let gc = mcgc_core::Gc::new(cfg);
    let before = FenceStats::snapshot();
    let objects_before = gc.heap().objects_allocated();
    let barrier_before = gc.heap().cards().dirty_store_count();
    let report = jbb::run(&gc, &opts);
    let fences = FenceStats::snapshot().since(&before);
    let objects = gc.heap().objects_allocated() - objects_before;
    let barriers = gc.heap().cards().dirty_store_count() - barrier_before;
    let marked: u64 = report.log.cycles.iter().map(|c| c.live_after_objects).sum();
    let handshakes: u64 = report.log.cycles.iter().map(|c| c.handshakes).sum();
    let mutators = report.threads as u64;
    gc.shutdown();

    println!("batched (measured):");
    println!(
        "  alloc-cache publication fences : {:>12}",
        fences.alloc_batch
    );
    println!(
        "  large-object fences            : {:>12}",
        fences.large_alloc
    );
    println!(
        "  tracer batch fences            : {:>12}",
        fences.trace_batch
    );
    println!(
        "  packet publication fences      : {:>12}",
        fences.packet_publish
    );
    println!(
        "  card handshake fences          : {:>12}  ({} batches x {} mutators = {} on real HW)",
        fences.card_handshake,
        handshakes,
        mutators,
        handshakes * mutators
    );
    let batched_total = fences.total() + handshakes * mutators.saturating_sub(1);
    println!("  total (with per-mutator HW handshakes): {batched_total}");

    println!("\nnaive (computed from the same run):");
    println!("  one per object allocated       : {objects:>12}");
    println!("  one per write barrier          : {barriers:>12}");
    println!("  one per object marked          : {marked:>12}");
    let naive_total = objects + barriers + marked;
    println!("  total                          : {naive_total:>12}");

    println!(
        "\nreduction: {:.1}x fewer fences than the naive scheme",
        naive_total as f64 / batched_total.max(1) as f64
    );
    println!("(§5's goal; the litmus tests in mcgc-membar show the batched");
    println!("protocols are still sound under store-buffer weak ordering.)");
}
