//! §6.3 (text): memory needed by the work packet mechanism — the
//! high-water marks of occupied packet slots (lower limit) and packets in
//! use (upper limit), as a fraction of the heap.
//!
//! Paper reference: bounded between 0.11% and 0.25% of the heap; 0.15% is
//! called a realistic estimate.

use mcgc_bench::{banner, gc_config, heap_bytes, jbb_opts, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::jbb;

fn main() {
    banner(
        "Packet memory watermarks (§6.3)",
        "0.11%..0.25% of the heap; ~0.15% realistic",
    );
    let heap = heap_bytes(48);
    let secs = seconds(2.5);
    println!(
        "{:<4} {:>16} {:>16} {:>12} {:>12}",
        "wh", "entries hi-water", "packets hi-water", "lower bound", "upper bound"
    );
    for warehouses in [2usize, 4, 8] {
        let cfg = gc_config(CollectorMode::Concurrent, heap);
        let capacity = cfg.pool.capacity;
        let opts = jbb_opts(heap, warehouses, secs);
        let r = jbb::run_standalone(cfg, &opts);
        let log = steady(&r.log);
        let entries = log
            .cycles
            .iter()
            .map(|c| c.packet_entries_watermark)
            .max()
            .unwrap_or(0);
        let packets = log
            .cycles
            .iter()
            .map(|c| c.packets_in_use_watermark)
            .max()
            .unwrap_or(0);
        // Entry = 8 bytes. Lower limit: occupied slots; upper limit:
        // whole packets in use (as §6.3 defines the two watermarks).
        let lower = entries * 8;
        let upper = packets * capacity * 8;
        println!(
            "{:<4} {:>16} {:>16} {:>11.3}% {:>11.3}%",
            warehouses,
            entries,
            packets,
            lower as f64 / heap as f64 * 100.0,
            upper as f64 / heap as f64 * 100.0,
        );
    }
    println!("\nshape check: both bounds are a fraction of a percent of the heap");
    println!("— the breadth-first flavour of packet tracing does not translate");
    println!("into significant memory requirements (§4.4, §6.3).");
}
