//! Micro-benchmarks of the heap substrate: bitwise sweep throughput
//! (serial vs parallel), mark-bit operations, and the write barrier.
//! Self-timed with `std::time::Instant` (no external harness) so the
//! workspace builds hermetically.

use std::time::Instant;

use mcgc_heap::{sweep_parallel, sweep_serial, AllocCache, Heap, HeapConfig, ObjectShape};

/// Times `iters` runs of `setup` + `f` and prints the mean of `f` alone
/// (setup cost excluded), as ns/iter and MB/s over `bytes`.
fn bench_batched<T>(
    name: &str,
    iters: u64,
    bytes: u64,
    mut setup: impl FnMut() -> T,
    f: impl Fn(T),
) {
    let mut total_ns = 0u128;
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        f(input);
        total_ns += start.elapsed().as_nanos();
    }
    let per_iter = total_ns as f64 / iters as f64;
    if bytes > 0 {
        let mbps = bytes as f64 / (per_iter / 1e9) / (1 << 20) as f64;
        println!("{name:<40} {per_iter:>14.0} ns/iter  {mbps:>9.0} MB/s");
    } else {
        println!("{name:<40} {per_iter:>14.1} ns/iter");
    }
}

/// Times a cheap operation in a tight loop (with warmup).
fn bench_op(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<40} {per_iter:>14.2} ns/iter");
}

fn build_heap(heap_bytes: usize, live_every: u32) -> Heap {
    let heap = Heap::new(HeapConfig::with_heap_bytes(heap_bytes));
    let mut cache = AllocCache::new();
    let shape = ObjectShape::new(2, 4, 1);
    let mut i = 0u32;
    loop {
        match heap.alloc_small(&mut cache, shape) {
            Some(obj) => {
                if i.is_multiple_of(live_every) {
                    heap.mark(obj);
                }
                i += 1;
            }
            None => {
                if !heap.refill_cache(&mut cache, shape.granules()) {
                    break;
                }
            }
        }
    }
    heap.retire_cache(&mut cache);
    heap
}

fn sweep_throughput() {
    let heap_bytes = 16 << 20;
    for (name, live_every) in [("60pct_live", 2u32), ("sparse_live", 16)] {
        bench_batched(
            &format!("sweep/serial/{name}"),
            6,
            heap_bytes as u64,
            || build_heap(heap_bytes, live_every),
            |heap| {
                std::hint::black_box(sweep_serial(&heap, 16 << 10));
            },
        );
        bench_batched(
            &format!("sweep/parallel2/{name}"),
            6,
            heap_bytes as u64,
            || build_heap(heap_bytes, live_every),
            |heap| {
                std::hint::black_box(sweep_parallel(&heap, 16 << 10, 2));
            },
        );
    }
}

fn mark_bit_ops() {
    let heap = Heap::new(HeapConfig::with_heap_bytes(8 << 20));
    let mut cache = AllocCache::new();
    heap.refill_cache(&mut cache, 8);
    let obj = heap
        .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
        .unwrap();
    heap.publish_cache(&mut cache);
    heap.mark(obj);
    bench_op("mark/set_already_marked", 2_000_000, || {
        std::hint::black_box(heap.mark(obj));
    });
    bench_op("mark/is_marked", 2_000_000, || {
        std::hint::black_box(heap.is_marked(obj));
    });
}

fn write_barrier() {
    // The raw store + card dirty (the mutator-side §5.3 sequence).
    let heap = Heap::new(HeapConfig::with_heap_bytes(8 << 20));
    let mut cache = AllocCache::new();
    heap.refill_cache(&mut cache, 16);
    let a = heap
        .alloc_small(&mut cache, ObjectShape::new(2, 0, 0))
        .unwrap();
    let b_obj = heap
        .alloc_small(&mut cache, ObjectShape::new(0, 2, 0))
        .unwrap();
    heap.publish_cache(&mut cache);
    bench_op("write_barrier/store_and_dirty", 2_000_000, || {
        heap.store_ref_unbarriered(a, 0, Some(b_obj));
        heap.cards().dirty(a.card());
    });
}

fn allocation_fast_path() {
    let shape = ObjectShape::new(1, 3, 0);
    let per_batch = 10_000u64;
    bench_batched(
        "alloc/small_bump_10k",
        40,
        0,
        || Heap::new(HeapConfig::with_heap_bytes(16 << 20)),
        |heap| {
            let mut cache = AllocCache::new();
            heap.refill_cache(&mut cache, shape.granules());
            for _ in 0..per_batch {
                match heap.alloc_small(&mut cache, shape) {
                    Some(o) => {
                        std::hint::black_box(o);
                    }
                    None => {
                        heap.refill_cache(&mut cache, shape.granules());
                    }
                }
            }
        },
    );
}

fn main() {
    mcgc_bench::banner(
        "micro: sweep, mark bits, write barrier, allocation",
        "heap substrate costs underlying §6 pause/throughput numbers",
    );
    sweep_throughput();
    mark_bit_ops();
    write_barrier();
    allocation_fast_path();
}
