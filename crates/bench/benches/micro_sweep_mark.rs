//! Criterion micro-benchmarks of the heap substrate: bitwise sweep
//! throughput (serial vs parallel), mark-bit operations, and the write
//! barrier.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mcgc_heap::{
    sweep_parallel, sweep_serial, AllocCache, Heap, HeapConfig, ObjectShape,
};

fn build_heap(heap_bytes: usize, live_every: u32) -> Heap {
    let heap = Heap::new(HeapConfig::with_heap_bytes(heap_bytes));
    let mut cache = AllocCache::new();
    let shape = ObjectShape::new(2, 4, 1);
    let mut i = 0u32;
    loop {
        match heap.alloc_small(&mut cache, shape) {
            Some(obj) => {
                if i % live_every == 0 {
                    heap.mark(obj);
                }
                i += 1;
            }
            None => {
                if !heap.refill_cache(&mut cache, shape.granules()) {
                    break;
                }
            }
        }
    }
    heap.retire_cache(&mut cache);
    heap
}

fn sweep_throughput(c: &mut Criterion) {
    let heap_bytes = 16 << 20;
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(heap_bytes as u64));
    for (name, live_every) in [("60pct_live", 2u32), ("sparse_live", 16)] {
        group.bench_function(format!("serial/{name}"), |b| {
            b.iter_batched(
                || build_heap(heap_bytes, live_every),
                |heap| std::hint::black_box(sweep_serial(&heap, 16 << 10)),
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("parallel2/{name}"), |b| {
            b.iter_batched(
                || build_heap(heap_bytes, live_every),
                |heap| std::hint::black_box(sweep_parallel(&heap, 16 << 10, 2)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn mark_bit_ops(c: &mut Criterion) {
    let heap = Heap::new(HeapConfig::with_heap_bytes(8 << 20));
    let mut cache = AllocCache::new();
    heap.refill_cache(&mut cache, 8);
    let obj = heap
        .alloc_small(&mut cache, ObjectShape::new(0, 4, 0))
        .unwrap();
    heap.publish_cache(&mut cache);
    c.bench_function("mark/set_already_marked", |b| {
        heap.mark(obj);
        b.iter(|| std::hint::black_box(heap.mark(obj)))
    });
    c.bench_function("mark/is_marked", |b| {
        b.iter(|| std::hint::black_box(heap.is_marked(obj)))
    });
}

fn write_barrier(c: &mut Criterion) {
    // The raw store + card dirty (the mutator-side §5.3 sequence).
    let heap = Heap::new(HeapConfig::with_heap_bytes(8 << 20));
    let mut cache = AllocCache::new();
    heap.refill_cache(&mut cache, 16);
    let a = heap.alloc_small(&mut cache, ObjectShape::new(2, 0, 0)).unwrap();
    let b_obj = heap.alloc_small(&mut cache, ObjectShape::new(0, 2, 0)).unwrap();
    heap.publish_cache(&mut cache);
    c.bench_function("write_barrier/store_and_dirty", |bch| {
        bch.iter(|| {
            heap.store_ref_unbarriered(a, 0, Some(b_obj));
            heap.cards().dirty(a.card());
        })
    });
}

fn allocation_fast_path(c: &mut Criterion) {
    let shape = ObjectShape::new(1, 3, 0);
    let per_batch = 10_000usize;
    let mut group = c.benchmark_group("alloc");
    group.throughput(Throughput::Elements(per_batch as u64));
    group.sample_size(20);
    group.bench_function("small_bump_10k", |b| {
        b.iter_batched(
            || Heap::new(HeapConfig::with_heap_bytes(16 << 20)),
            |heap| {
                let mut cache = AllocCache::new();
                heap.refill_cache(&mut cache, shape.granules());
                for _ in 0..per_batch {
                    match heap.alloc_small(&mut cache, shape) {
                        Some(o) => {
                            std::hint::black_box(o);
                        }
                        None => {
                            heap.refill_cache(&mut cache, shape.granules());
                        }
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    sweep_throughput,
    mark_bit_ops,
    write_barrier,
    allocation_fast_path
);
criterion_main!(benches);
