//! Multi-mutator allocation scaling: the sharded, size-class-binned
//! substrate (`ShardedFreeList`) vs the single global next-fit lock it
//! replaced (`alloc_shards = 1` keeps every operation on one wilderness
//! `FreeList`, which is byte-for-byte the old allocator).
//!
//! The heap layout models a server heap mid-lifecycle: a churn zone the
//! mutators refill from and retire into, sitting *between* two fields of
//! small surviving-object holes — old-generation survivors below it,
//! large-object/metadata survivors above it — each hole too small for
//! any refill. Every mutator holds a ring of refilled regions and
//! retires a random one per iteration (mixed object lifetimes).
//!
//! The survivor fields are what the single address-ordered list chokes
//! on: every retire must re-insert its extent *between* the two fields,
//! and keeping one flat deque sorted means shifting at least an entire
//! survivor field's entries on each insert — O(survivors) memmove per
//! retire, paid under the one global lock that every other mutator is
//! queued on. The sharded substrate routes the same retire to its home
//! shard's size-class bin: an O(1) push behind a lock nobody else
//! needs. Refill pops are O(1) in both designs (next-fit's rotor parks
//! where frees cluster; class bins pop directly), so the measured gap
//! is the list-maintenance cost the tentpole deletes.
//!
//! On a multi-core host the same single lock additionally serializes
//! mutators against each other — the contention half of the story that a
//! single-CPU runner cannot exhibit; the structural O(n) half shows at
//! every thread count.
//!
//! Prints one row per (mode, threads) point and writes machine-readable
//! results to `BENCH_alloc.json` (override with `MCGC_BENCH_OUT`); CI's
//! `bench-smoke` job archives that file and appends the speedups to
//! EXPERIMENTS.md.

use std::time::Instant;

use mcgc_heap::{Extent, ShardedFreeList, GRANULE_BYTES};

/// Churn zone the mutators cycle through, in granules.
const CHURN_GRANULES: usize = 448 << 10;
/// Surviving-object holes in each field flanking the churn zone. Each is
/// an 8-granule hole on a 16-granule pitch (half survivors, half holes),
/// so no hole ever straddles a stripe boundary.
const PINS_PER_FIELD: usize = 1024;
const PIN_PITCH: usize = 16;
const PIN_LEN: usize = 8;
/// Shards in sharded mode (the acceptance criterion's 8-mutator point).
const SHARDS: usize = 8;
/// Stripe size in granules. Much larger than one thread's ring footprint
/// so a mutator's retire/refill working set stays in its home shard.
const STRIPE_GRANULES: usize = 1 << 15;
/// Per-thread ring of held regions (mutator caches not yet retired).
const RING: usize = 128;
/// Refill/retire churn iterations per thread.
const ITERS: usize = 20_000;
/// Refill sizes in granules: 2 KiB caches on even threads, 4 KiB on odd.
const SIZES: [usize; 2] = [256, 512];

struct Point {
    mode: &'static str,
    threads: usize,
    bytes: u64,
    secs: f64,
    refill_steals: u64,
    wilderness_refills: u64,
    contended_locks: u64,
}

impl Point {
    fn throughput(&self) -> f64 {
        self.bytes as f64 / self.secs
    }
}

/// Runs the churn at `threads` mutators against a fresh substrate with
/// `shards` shards and returns the measured point.
fn run(mode: &'static str, shards: usize, threads: usize) -> Point {
    let fl = ShardedFreeList::new(shards, STRIPE_GRANULES);
    let low_field = PINS_PER_FIELD * PIN_PITCH;
    let churn_base = (1 + low_field).next_multiple_of(STRIPE_GRANULES);
    let high_base = (churn_base + CHURN_GRANULES).next_multiple_of(STRIPE_GRANULES);
    fl.rebuild(
        (0..PINS_PER_FIELD)
            .map(|i| Extent {
                start: 1 + i * PIN_PITCH,
                len: PIN_LEN,
            })
            .chain(std::iter::once(Extent {
                start: churn_base,
                len: CHURN_GRANULES,
            }))
            .chain((0..PINS_PER_FIELD).map(|i| Extent {
                start: high_base + i * PIN_PITCH,
                len: PIN_LEN,
            })),
    );
    let start = Instant::now();
    let bytes: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fl = &fl;
                s.spawn(move || {
                    let size = SIZES[t % SIZES.len()];
                    let mut home = t;
                    let mut ring: Vec<(usize, usize)> = Vec::with_capacity(RING);
                    let mut carved = 0u64;
                    // Deterministic xorshift32: random retirement order,
                    // reproducible runs.
                    let mut rng = 0x9E37_79B9u32 ^ (t as u32 + 1);
                    for _ in 0..ITERS {
                        if ring.len() == RING {
                            rng ^= rng << 13;
                            rng ^= rng >> 17;
                            rng ^= rng << 5;
                            let victim = rng as usize % ring.len();
                            let (s, l) = ring[victim];
                            fl.free(s, l);
                            match fl.alloc(size, &mut home) {
                                Some(start) => ring[victim] = (start, size),
                                None => {
                                    ring.swap_remove(victim);
                                    continue;
                                }
                            }
                        } else {
                            match fl.alloc(size, &mut home) {
                                Some(start) => ring.push((start, size)),
                                None => continue,
                            }
                        }
                        carved += (size * GRANULE_BYTES) as u64;
                    }
                    carved
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    let stats = fl.stats();
    Point {
        mode,
        threads,
        bytes,
        secs,
        refill_steals: stats.refill_steals,
        wilderness_refills: stats.wilderness_refills,
        contended_locks: stats.contended_locks,
    }
}

fn main() {
    mcgc_bench::banner(
        "alloc scaling: sharded size-class substrate vs single global lock",
        "multi-mutator allocation scalability premise (§1, §2.1)",
    );
    println!(
        "{:<10} {:>7}  {:>10} {:>9}  {:>8} {:>9} {:>9}",
        "mode", "threads", "MB/s", "refill/s", "steals", "wild_ref", "contended"
    );
    let thread_points = [1usize, 2, 4, 8];
    let mut points = Vec::new();
    for &threads in &thread_points {
        for (mode, shards) in [("baseline", 1usize), ("sharded", SHARDS)] {
            let p = run(mode, shards, threads);
            println!(
                "{:<10} {:>7}  {:>10.1} {:>9.0}  {:>8} {:>9} {:>9}",
                p.mode,
                p.threads,
                p.throughput() / (1 << 20) as f64,
                p.bytes as f64 / (SIZES[0] * GRANULE_BYTES) as f64 / p.secs,
                p.refill_steals,
                p.wilderness_refills,
                p.contended_locks,
            );
            points.push(p);
        }
    }

    let tp = |mode: &str, threads: usize| {
        points
            .iter()
            .find(|p| p.mode == mode && p.threads == threads)
            .map(|p| p.throughput())
            .unwrap_or(f64::NAN)
    };
    let speedup_8t = tp("sharded", 8) / tp("baseline", 8);
    let ratio_1t = tp("sharded", 1) / tp("baseline", 1);
    println!();
    println!("speedup at 8 threads (sharded / baseline): {speedup_8t:.2}x");
    println!("1-thread ratio (sharded / baseline):       {ratio_1t:.2}x");

    let mut json = String::from("{\n  \"bench\": \"alloc_scaling\",\n");
    json.push_str(&mcgc_bench::host_meta_json("baseline|sharded"));
    json.push_str(&format!(
        "  \"churn_granules\": {CHURN_GRANULES},\n  \"survivor_holes_per_field\": {PINS_PER_FIELD},\n  \"shards\": {SHARDS},\n  \"ring\": {RING},\n  \"iters_per_thread\": {ITERS},\n"
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"bytes\": {}, \"secs\": {:.6}, \
             \"bytes_per_sec\": {:.0}, \"refill_steals\": {}, \"wilderness_refills\": {}, \
             \"contended_locks\": {}}}{}\n",
            p.mode,
            p.threads,
            p.bytes,
            p.secs,
            p.throughput(),
            p.refill_steals,
            p.wilderness_refills,
            p.contended_locks,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_8_threads\": {speedup_8t:.3},\n  \"ratio_1_thread\": {ratio_1t:.3}\n}}\n"
    ));
    let out = std::env::var("MCGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_alloc.json".into());
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
