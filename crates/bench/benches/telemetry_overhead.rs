//! Always-on telemetry overhead: jbb throughput with the telemetry
//! pipeline enabled vs disabled (`Telemetry::set_enabled`). The event
//! ring, histograms, and MMU tracker are on by default; this bench
//! verifies the A/B delta stays in the noise (<2% in release builds).
//!
//! Runs interleaved A/B pairs so drift (thermal, page cache) hits both
//! arms equally.

use mcgc_core::{CollectorMode, Gc};
use mcgc_workloads::jbb;

fn run_once(enabled: bool, heap: usize, secs: std::time::Duration) -> f64 {
    let gc = Gc::new(mcgc_bench::gc_config(CollectorMode::Concurrent, heap));
    gc.telemetry().set_enabled(enabled);
    let opts = mcgc_bench::jbb_opts(heap, 2, secs);
    let report = jbb::run(&gc, &opts);
    gc.shutdown();
    report.throughput()
}

fn main() {
    mcgc_bench::banner(
        "telemetry overhead: jbb throughput, telemetry on vs off",
        "observability must not perturb the §6 throughput numbers",
    );
    let heap = mcgc_bench::heap_bytes(48);
    let secs = mcgc_bench::seconds(2.0);
    let pairs = 3;
    // Warmup (untimed).
    run_once(true, heap, secs / 4);
    let (mut on_sum, mut off_sum) = (0.0, 0.0);
    for i in 0..pairs {
        let on = run_once(true, heap, secs);
        let off = run_once(false, heap, secs);
        on_sum += on;
        off_sum += off;
        println!("pair {i}: enabled {on:>10.0} tx/s   disabled {off:>10.0} tx/s");
    }
    let on = on_sum / pairs as f64;
    let off = off_sum / pairs as f64;
    let overhead_pct = (off - on) / off * 100.0;
    println!("--------------------------------------------------------------");
    println!(
        "mean: enabled {on:>10.0} tx/s   disabled {off:>10.0} tx/s   overhead {}%",
        mcgc_bench::fnum(overhead_pct, 2)
    );
}
