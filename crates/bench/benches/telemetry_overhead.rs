//! Always-on observability overhead: jbb throughput across three arms —
//! telemetry fully `off`, the default always-`on` pipeline (event ring,
//! histograms, MMU tracker, *and* the flight-recorder span rings), and
//! `export`, which additionally renders the Chrome trace every 250 ms
//! from a background thread while the workload runs.
//!
//! Runs interleaved off/on/export triples so drift (thermal, page
//! cache) hits all arms equally, writes `BENCH_telemetry.json`
//! (override with `MCGC_BENCH_OUT`), and — when `MCGC_OVERHEAD_GATE`
//! is set to a percentage — exits non-zero if the always-on arm costs
//! more than that. CI's bench-smoke job gates at 2%.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcgc_core::{CollectorMode, Gc};
use mcgc_telemetry::export_chrome_trace;
use mcgc_workloads::jbb;

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Off,
    On,
    Export,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Off => "off",
            Arm::On => "on",
            Arm::Export => "export",
        }
    }
}

fn run_once(arm: Arm, heap: usize, secs: Duration) -> f64 {
    let gc = Gc::new(mcgc_bench::gc_config(CollectorMode::Concurrent, heap));
    gc.telemetry().set_enabled(arm != Arm::Off);
    let stop = Arc::new(AtomicBool::new(false));
    let exporter = (arm == Arm::Export).then(|| {
        let gc = Arc::clone(&gc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut largest = 0usize;
            while !stop.load(Ordering::Relaxed) {
                largest = largest.max(export_chrome_trace(gc.telemetry().spans()).len());
                std::thread::sleep(Duration::from_millis(250));
            }
            largest
        })
    });
    let opts = mcgc_bench::jbb_opts(heap, 2, secs);
    let report = jbb::run(&gc, &opts);
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = exporter {
        let _ = h.join();
    }
    gc.shutdown();
    report.throughput()
}

fn main() {
    mcgc_bench::banner(
        "telemetry overhead: jbb throughput, off vs always-on vs exporting",
        "observability must not perturb the §6 throughput numbers",
    );
    let heap = mcgc_bench::heap_bytes(48);
    let secs = mcgc_bench::seconds(2.0);
    let triples = 3;
    // Warmup (untimed).
    run_once(Arm::On, heap, secs / 4);
    let mut sums = [0.0f64; 3];
    for i in 0..triples {
        let mut row = [0.0f64; 3];
        for (slot, arm) in [Arm::Off, Arm::On, Arm::Export].into_iter().enumerate() {
            row[slot] = run_once(arm, heap, secs);
            sums[slot] += row[slot];
        }
        println!(
            "triple {i}: off {:>10.0} tx/s   on {:>10.0} tx/s   export {:>10.0} tx/s",
            row[0], row[1], row[2]
        );
    }
    let [off, on, export] = sums.map(|s| s / triples as f64);
    let pct = |arm: f64| (off - arm) / off * 100.0;
    let (on_pct, export_pct) = (pct(on), pct(export));
    println!("--------------------------------------------------------------");
    println!(
        "mean: off {off:>10.0} tx/s   on {on:>10.0} tx/s ({}%)   export {export:>10.0} tx/s ({}%)",
        mcgc_bench::fnum(on_pct, 2),
        mcgc_bench::fnum(export_pct, 2),
    );

    let mut json = String::from("{\n  \"bench\": \"telemetry_overhead\",\n");
    json.push_str(&mcgc_bench::host_meta_json("off|on|export"));
    json.push_str(&format!(
        "  \"heap_bytes\": {heap},\n  \"triples\": {triples},\n  \
         \"tx_off\": {off:.0},\n  \"tx_on\": {on:.0},\n  \"tx_export\": {export:.0},\n  \
         \"overhead_on_pct\": {on_pct:.3},\n  \"overhead_export_pct\": {export_pct:.3}\n}}\n"
    ));
    let out = std::env::var("MCGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_telemetry.json".into());
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");

    if let Some(limit) = std::env::var("MCGC_OVERHEAD_GATE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if on_pct > limit {
            eprintln!(
                "FAIL: always-on overhead {}% exceeds the {limit}% gate ({} arm)",
                mcgc_bench::fnum(on_pct, 2),
                Arm::On.name(),
            );
            std::process::exit(1);
        }
        println!(
            "gate: always-on overhead {}% within the {limit}% budget",
            mcgc_bench::fnum(on_pct, 2)
        );
    }
}
