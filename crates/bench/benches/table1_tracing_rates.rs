//! Table 1: the effects of different tracing rates on SPECjbb at 8
//! warehouses — throughput, floating garbage, average final card
//! cleaning, and average/max pause, for STW and tracing rates 1/4/8/10.
//!
//! Paper reference (256 MB heap): throughput 19904 (STW) vs 15511/16984/
//! 17970/18177; floating garbage 18.0/14.2/5.3/4.2%; final card cleaning
//! 93627/40147/11772/8394 cards; avg pause 267/177/115/67/61 ms; max
//! 284/233/134/101/126 ms.

use mcgc_bench::{banner, gc_config, heap_bytes, jbb_opts, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::jbb;

fn main() {
    banner(
        "Table 1 — effects of different tracing rates (SPECjbb, 8 warehouses)",
        "higher rate: less floating garbage, fewer final cards, shorter pauses",
    );
    let heap = heap_bytes(48);
    let secs = seconds(2.5);
    let opts = jbb_opts(heap, 8, secs);

    let stw = jbb::run_standalone(gc_config(CollectorMode::StopTheWorld, heap), &opts);
    let stw_log = steady(&stw.log);
    let stw_occ = stw_log.avg_occupancy_after();

    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>11} {:>11}",
        "collector", "throughput", "floating", "final cards", "avg pause", "max pause"
    );
    println!(
        "{:<12} {:>7.0} tx/s {:>9.1}% {:>12.0} {:>8.1} ms {:>8.1} ms",
        "STW",
        stw.throughput(),
        0.0,
        stw_log.avg_final_card_cleaning(),
        stw_log.avg_pause_ms(),
        stw_log.max_pause_ms(),
    );
    for rate in [1.0f64, 4.0, 8.0, 10.0] {
        let mut cfg = gc_config(CollectorMode::Concurrent, heap);
        cfg.tracing_rate = rate;
        let r = jbb::run_standalone(cfg, &opts);
        let log = steady(&r.log);
        // Floating garbage: extra average end-of-cycle occupancy vs STW
        // (the paper compares average heap occupancy at GC end).
        let floating = (log.avg_occupancy_after() - stw_occ).max(0.0) * 100.0;
        println!(
            "{:<12} {:>7.0} tx/s {:>9.1}% {:>12.0} {:>8.1} ms {:>8.1} ms",
            format!("CGC TR{rate}"),
            r.throughput(),
            floating,
            log.avg_final_card_cleaning(),
            log.avg_pause_ms(),
            log.max_pause_ms(),
        );
    }
    println!("\nshape checks: floating garbage and final card cleaning decrease");
    println!("as the tracing rate increases; pauses shorten; throughput");
    println!("approaches (but stays below) STW at high rates.");
}
