//! Figure 1: SPECjbb at 1–8 warehouses — average and maximum pause times
//! for the stop-the-world collector (STW) and the mostly concurrent
//! collector (CGC) at tracing rate 8.0, plus the average mark component.
//!
//! Paper reference points (256 MB heap, 4-way 550 MHz): at 8 warehouses
//! STW avg 266 ms / max 284 ms, CGC avg 66 ms / max 101 ms, STW mark avg
//! 235 ms vs CGC 34 ms; CGC throughput −10%.

use mcgc_bench::{banner, gc_config, heap_bytes, jbb_opts, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::jbb;

fn main() {
    banner(
        "Figure 1 — SPECjbb pause times, 1..8 warehouses, tracing rate 8.0",
        "STW 266/284 ms vs CGC 66/101 ms at 8 warehouses; mark 235 -> 34 ms",
    );
    let heap = heap_bytes(48);
    let secs = seconds(2.0);
    println!(
        "{:<4} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12} | {:>9}",
        "wh", "STW avg", "STW max", "STW mark", "CGC avg", "CGC max", "CGC mark", "tput CGC/STW"
    );
    for warehouses in 1..=8usize {
        let opts = jbb_opts(heap, warehouses, secs);
        let stw_r = jbb::run_standalone(gc_config(CollectorMode::StopTheWorld, heap), &opts);
        let cgc_r = jbb::run_standalone(gc_config(CollectorMode::Concurrent, heap), &opts);
        let (stw, cgc) = (steady(&stw_r.log), steady(&cgc_r.log));
        println!(
            "{:<4} {:>9.1} ms {:>9.1} ms {:>9.1} ms | {:>9.1} ms {:>9.1} ms {:>9.1} ms | {:>8.2}",
            warehouses,
            stw.avg_pause_ms(),
            stw.max_pause_ms(),
            stw.avg_mark_ms(),
            cgc.avg_pause_ms(),
            cgc.max_pause_ms(),
            cgc.avg_mark_ms(),
            cgc_r.throughput() / stw_r.throughput().max(1.0),
        );
    }
    println!("\nshape checks: CGC avg well below STW avg; CGC mark a small");
    println!("fraction of STW mark; throughput ratio near 0.9.");
}
