//! Ablation (§7 future work, implemented): lazy sweep defers sweeping to
//! after the stop-the-world phase, spreading it between mutators and
//! background threads — "we would obtain a large additional reduction in
//! pause times", bringing the pause close to the mark component alone.

use mcgc_bench::{banner, gc_config, heap_bytes, jbb_opts, seconds, steady};
use mcgc_core::{CollectorMode, SweepMode};
use mcgc_workloads::jbb;

fn main() {
    banner(
        "Ablation — eager vs lazy sweep (§7)",
        "lazy sweep removes the sweep component from the pause",
    );
    let heap = heap_bytes(64);
    let secs = seconds(2.5);
    let opts = jbb_opts(heap, 4, secs);
    println!(
        "{:<7} {:>12} {:>12} {:>12} {:>11} {:>11}",
        "sweep", "throughput", "avg pause", "max pause", "avg mark", "avg sweep"
    );
    for (name, mode) in [("eager", SweepMode::Eager), ("lazy", SweepMode::Lazy)] {
        let mut cfg = gc_config(CollectorMode::Concurrent, heap);
        cfg.sweep = mode;
        let r = jbb::run_standalone(cfg, &opts);
        let log = steady(&r.log);
        println!(
            "{:<7} {:>7.0} tx/s {:>9.1} ms {:>9.1} ms {:>8.1} ms {:>8.1} ms",
            name,
            r.throughput(),
            log.avg_pause_ms(),
            log.max_pause_ms(),
            log.avg_mark_ms(),
            log.avg_sweep_ms(),
        );
    }
    println!("\nshape check: the lazy pause is close to the mark component");
    println!("alone (what Figure 2's 42%-sweep share motivates).");
}
