//! Table 3: mutator utilization during the concurrent phase — the ratio
//! of the application allocation rate while CGC is active to the rate in
//! the pre-concurrent window, per tracing rate.
//!
//! Paper reference (KB/ms): pre-concurrent ~48-49, concurrent 37.9/30.6/
//! 23.1/21.1, utilization 78/63/47/43% for rates 1/4/8/10.

use mcgc_bench::{banner, fnum, gc_config, heap_bytes, jbb_opts, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::jbb;

fn main() {
    banner(
        "Table 3 — mutator utilization while CGC is active, per tracing rate",
        "utilization falls as the tracing rate rises: 78/63/47/43%",
    );
    let heap = heap_bytes(48);
    let secs = seconds(2.5);
    let opts = jbb_opts(heap, 8, secs);

    // Collect rows first: §6.2 footnote 6 — at tracing rate 1 there is
    // no pre-concurrent phase, so the paper substitutes rate 4's
    // pre-concurrent allocation rate.
    let mut rows: Vec<(f64, f64, f64)> = Vec::new();
    for rate in [1.0f64, 4.0, 8.0, 10.0] {
        let mut cfg = gc_config(CollectorMode::Concurrent, heap);
        cfg.tracing_rate = rate;
        let r = jbb::run_standalone(cfg, &opts);
        let log = steady(&r.log);
        // Allocation rates over the respective wall-clock windows,
        // aggregated over cycles (the paper's §6.2 method).
        let (mut pre_b, mut pre_t, mut conc_b, mut conc_t) = (0u64, 0.0f64, 0u64, 0.0f64);
        for c in &log.cycles {
            pre_b += c.alloc_pre_concurrent_bytes;
            pre_t += c.pre_concurrent_wall.as_secs_f64() * 1e3;
            conc_b += c.alloc_concurrent_bytes;
            conc_t += c.concurrent_wall.as_secs_f64() * 1e3;
        }
        // A near-empty pre-concurrent window (< 5% of the measured time)
        // yields a meaningless rate; mark it for substitution.
        let pre_rate = if pre_t > secs.as_millis() as f64 * 0.05 {
            pre_b as f64 / 1024.0 / pre_t
        } else {
            f64::NAN
        };
        let conc_rate = if conc_t > 0.0 {
            conc_b as f64 / 1024.0 / conc_t
        } else {
            f64::NAN
        };
        rows.push((rate, pre_rate, conc_rate));
    }
    let substitute = rows
        .iter()
        .find(|(rate, pre, _)| *rate == 4.0 && !pre.is_nan())
        .map(|&(_, pre, _)| pre);

    println!(
        "{:<8} {:>18} {:>16} {:>12}",
        "rate", "pre-concurrent", "concurrent", "utilization"
    );
    for (rate, pre_rate, conc_rate) in rows {
        let (denom, subst) = if pre_rate.is_nan() {
            (substitute.unwrap_or(f64::NAN), true)
        } else {
            (pre_rate, false)
        };
        let util = conc_rate / denom * 100.0;
        println!(
            "TR{:<6} {:>12} KB/ms {:>10} KB/ms {:>10}%{}",
            rate,
            if subst {
                format!("({})", fnum(denom, 1))
            } else {
                fnum(denom, 1)
            },
            fnum(conc_rate, 1),
            fnum(util, 0),
            if subst {
                "  (pre rate from TR4, §6.2 fn 6)"
            } else {
                ""
            },
        );
    }
    println!("\nshape check: utilization decreases monotonically with the");
    println!("tracing rate (mutators pay more tracing per byte allocated).");
    println!("absolute utilization is lower than the paper's: its 4 CPUs let");
    println!("mutators run beside the tracers; this host has one.");
}
