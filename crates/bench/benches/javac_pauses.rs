//! §6.1 (text): javac — single-threaded compiler, small heap at 70%
//! residency, uniprocessor, a single background collector thread.
//!
//! Paper reference (25 MB heap, 550 MHz uniprocessor): CGC max 41 ms /
//! avg 34 ms vs STW 167/138 ms; CGC throughput −12%.

use mcgc_bench::{banner, gc_config, heap_bytes, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::javac::{self, JavacOptions};

fn main() {
    banner(
        "javac — single-threaded pauses (small heap, 1 background thread)",
        "CGC 34/41 ms vs STW 138/167 ms; throughput -12%",
    );
    let heap = heap_bytes(25);
    let secs = seconds(3.0);
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "collector", "units/s", "avg pause", "max pause", "avg mark", "cycles"
    );
    let mut results = Vec::new();
    for (name, mode) in [
        ("STW", CollectorMode::StopTheWorld),
        ("CGC", CollectorMode::Concurrent),
    ] {
        let mut cfg = gc_config(mode, heap);
        cfg.background_threads = 1; // §6.1: one background thread
        let mut opts = JavacOptions::sized_for(heap);
        opts.duration = secs;
        let r = javac::run_standalone(cfg, &opts);
        let log = steady(&r.log);
        println!(
            "{:<10} {:>10.1} {:>9.1} ms {:>9.1} ms {:>9.1} ms {:>8}",
            name,
            r.throughput(),
            log.avg_pause_ms(),
            log.max_pause_ms(),
            log.avg_mark_ms(),
            log.cycles.len(),
        );
        results.push(r);
    }
    let ratio = results[1].throughput() / results[0].throughput().max(1e-9);
    println!("\nCGC/STW throughput ratio: {ratio:.2} (paper: 0.88)");
}
