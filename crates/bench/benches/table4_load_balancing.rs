//! Table 4: quality of load balancing as the number of mutator threads
//! grows — average tracing factor, fairness (stddev of tracing factors),
//! and normalized synchronization cost (CAS per live KB).
//!
//! Paper reference (pBOB, 1.2 GB heap, 1000 packets, no idle time, no
//! background threads; 625–1000 threads): tracing factor stable ~0.95,
//! fairness degrades slowly then plummets when 2×threads approaches the
//! packet count, cost grows moderately (251→361 per KB… ×10⁻³ in their
//! normalization).

use mcgc_bench::{banner, gc_config, heap_bytes, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::jbb::{self, JbbOptions};

fn main() {
    banner(
        "Table 4 — load balancing quality vs thread count (no idle time)",
        "tracing factor stable; fairness degrades near packets/2 threads; cost moderate",
    );
    let heap = heap_bytes(64);
    let secs = seconds(2.0);
    // The paper uses 1000 packets and up to 1000 threads; we scale to 96
    // packets so the packet-exhaustion knee (threads ~ packets/2) is
    // reachable with a thread count a 1-CPU host can run.
    let packets = 96;
    println!(
        "{:<8} {:>15} {:>10} {:>11} {:>11} {:>9}",
        "threads", "tracing factor", "fairness", "avg cost", "max cost", "overflow"
    );
    for threads in [8usize, 16, 24, 32, 48, 64] {
        let mut cfg = gc_config(CollectorMode::Concurrent, heap);
        cfg.pool.packets = packets;
        cfg.background_threads = 0; // §6.3: measured without background threads
        let mut opts = JbbOptions::sized_for(heap, threads, 0.55);
        opts.duration = secs;
        let r = jbb::run_standalone(cfg, &opts);
        let log = steady(&r.log);
        let cycles: Vec<_> = log.cycles.iter().filter(|c| c.increments > 4).collect();
        if cycles.is_empty() {
            println!("{threads:<8} (no qualifying cycles)");
            continue;
        }
        let tf = cycles.iter().map(|c| c.tracing_factor()).sum::<f64>() / cycles.len() as f64;
        let fair = cycles.iter().map(|c| c.fairness()).sum::<f64>() / cycles.len() as f64;
        let costs: Vec<f64> = cycles.iter().map(|c| c.normalized_cas_cost()).collect();
        let avg_cost = costs.iter().sum::<f64>() / costs.len() as f64;
        let max_cost = costs.iter().fold(0.0f64, |a, &b| a.max(b));
        let overflows: u64 = cycles.iter().map(|c| c.overflows).sum();
        println!(
            "{:<8} {:>15.3} {:>10.3} {:>11.2} {:>11.2} {:>9}",
            threads, tf, fair, avg_cost, max_cost, overflows
        );
    }
    println!("\nshape checks: the tracing factor stays roughly stable as the");
    println!("thread count grows (no starvation); fairness worsens once");
    println!("2 x threads approaches the packet count ({packets} packets here);");
    println!("normalized CAS cost grows moderately, not explosively.");
}
