//! Pause scaling across gang sizes: the measured stop-the-world wall
//! time at `stw_workers` ∈ {1, 2, 4, 8}, for both the mostly-concurrent
//! collector and the stop-the-world baseline (whose pauses carry the
//! whole mark in-pause and so have the most parallelizable work).
//!
//! What this isolates: every pause phase — final card cleaning, root
//! rescanning, packet drain, sweep, bitmap pre-clear — runs on the
//! *persistent* gang, claimed from atomic cursors. `stw_workers = 1`
//! runs every phase inline on the leader (the serial pause, zero
//! dispatch overhead); higher counts split the same cursors across the
//! parked helper threads with one condvar wakeup per phase and no
//! `thread::spawn` anywhere on the pause path.
//!
//! On a multi-core host the cursor split is the speedup: each phase's
//! wall time approaches `work / workers` plus the (microsecond-scale)
//! barrier. A single-CPU runner cannot exhibit that half of the story —
//! the OS serializes the workers, so wall time at best stays flat and
//! the numbers below mostly measure the dispatch protocol's overhead;
//! what the structural half still shows everywhere is that adding
//! workers costs only the barrier, not a per-pause thread spawn. Columns
//! are measured wall (not work-model) milliseconds; the per-phase
//! breakdown uses the pause-phase timers recorded in every `CycleStats`.
//!
//! Prints one row per (mode, workers) point and writes machine-readable
//! results to `BENCH_pause.json` (override with `MCGC_BENCH_OUT`); CI's
//! `bench-smoke` job archives that file and appends the speedups to
//! EXPERIMENTS.md.

use std::time::Duration;

use mcgc_core::{CollectorMode, GcLog, SweepMode};
use mcgc_workloads::jbb::run_standalone;

struct Point {
    mode: &'static str,
    workers: usize,
    cycles: usize,
    avg_pause_ms: f64,
    max_pause_ms: f64,
    avg_cards_ms: f64,
    avg_roots_ms: f64,
    avg_drain_ms: f64,
    avg_sweep_ms: f64,
    avg_clear_ms: f64,
}

fn avg_ms(log: &GcLog, f: impl Fn(&mcgc_core::CycleStats) -> Duration) -> f64 {
    if log.cycles.is_empty() {
        return f64::NAN;
    }
    log.cycles
        .iter()
        .map(|c| f(c).as_secs_f64() * 1e3)
        .sum::<f64>()
        / log.cycles.len() as f64
}

fn run(mode: CollectorMode, mode_name: &'static str, workers: usize) -> Point {
    let heap = mcgc_bench::heap_bytes(32);
    let mut cfg = mcgc_bench::gc_config(mode, heap);
    cfg.stw_workers = workers;
    cfg.sweep = SweepMode::Eager;
    cfg.background_threads = if mode == CollectorMode::Concurrent {
        2
    } else {
        0
    };
    let opts = mcgc_bench::jbb_opts(heap, 2, mcgc_bench::seconds(1.5));
    let report = run_standalone(cfg, &opts);
    let log = mcgc_bench::steady(&report.log);
    Point {
        mode: mode_name,
        workers,
        cycles: log.cycles.len(),
        avg_pause_ms: log.avg_pause_wall_ms(),
        max_pause_ms: log.max_pause_wall_ms(),
        avg_cards_ms: avg_ms(&log, |c| c.cards_wall),
        avg_roots_ms: avg_ms(&log, |c| c.roots_wall),
        avg_drain_ms: avg_ms(&log, |c| c.drain_wall),
        avg_sweep_ms: avg_ms(&log, |c| c.sweep_wall),
        avg_clear_ms: avg_ms(&log, |c| c.clear_wall),
    }
}

fn main() {
    mcgc_bench::banner(
        "pause scaling: persistent STW gang at 1/2/4/8 workers",
        "fully parallel stop-the-world phase (§2.2, §6)",
    );
    println!(
        "{:<6} {:>7} {:>7}  {:>9} {:>9}  {:>8} {:>8} {:>8} {:>8} {:>8}",
        "mode",
        "workers",
        "cycles",
        "avg_ms",
        "max_ms",
        "cards",
        "roots",
        "drain",
        "sweep",
        "clear"
    );
    let worker_points = [1usize, 2, 4, 8];
    let mut points = Vec::new();
    for &(mode, name) in &[
        (CollectorMode::StopTheWorld, "stw"),
        (CollectorMode::Concurrent, "cgc"),
    ] {
        for &workers in &worker_points {
            let p = run(mode, name, workers);
            println!(
                "{:<6} {:>7} {:>7}  {:>9.3} {:>9.3}  {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                p.mode,
                p.workers,
                p.cycles,
                p.avg_pause_ms,
                p.max_pause_ms,
                p.avg_cards_ms,
                p.avg_roots_ms,
                p.avg_drain_ms,
                p.avg_sweep_ms,
                p.avg_clear_ms,
            );
            points.push(p);
        }
    }

    let pause = |mode: &str, workers: usize| {
        points
            .iter()
            .find(|p| p.mode == mode && p.workers == workers)
            .map(|p| p.avg_pause_ms)
            .unwrap_or(f64::NAN)
    };
    let speedup_4 = pause("stw", 1) / pause("stw", 4);
    let speedup_8 = pause("stw", 1) / pause("stw", 8);
    println!();
    println!("stw avg-pause speedup, 1 -> 4 workers: {speedup_4:.2}x");
    println!("stw avg-pause speedup, 1 -> 8 workers: {speedup_8:.2}x");
    println!("(>1 needs real cores: on a 1-CPU host the workers time-slice");
    println!(" and these ratios measure only the dispatch-barrier overhead)");

    let mut json = String::from("{\n  \"bench\": \"pause_scaling\",\n");
    json.push_str(&mcgc_bench::host_meta_json("stw|cgc"));
    json.push_str(&format!(
        "  \"heap_bytes\": {},\n  \"worker_points\": [1, 2, 4, 8],\n",
        mcgc_bench::heap_bytes(32)
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"workers\": {}, \"cycles\": {}, \
             \"avg_pause_wall_ms\": {:.4}, \"max_pause_wall_ms\": {:.4}, \
             \"avg_cards_ms\": {:.4}, \"avg_roots_ms\": {:.4}, \"avg_drain_ms\": {:.4}, \
             \"avg_sweep_ms\": {:.4}, \"avg_clear_ms\": {:.4}}}{}\n",
            p.mode,
            p.workers,
            p.cycles,
            p.avg_pause_ms,
            p.max_pause_ms,
            p.avg_cards_ms,
            p.avg_roots_ms,
            p.avg_drain_ms,
            p.avg_sweep_ms,
            p.avg_clear_ms,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_4_workers\": {speedup_4:.3},\n  \"speedup_8_workers\": {speedup_8:.3}\n}}\n"
    ));
    let out = std::env::var("MCGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_pause.json".into());
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
