//! Pause scaling across scheduler worker counts *and sweep modes*: the
//! measured stop-the-world wall time at `stw_workers` ∈ {1, 2, 4, 8},
//! for the stop-the-world baseline (eager sweep — its pauses carry the
//! whole mark and sweep in-pause, the most parallelizable work) and for
//! the mostly-concurrent collector under all three sweep strategies:
//!
//! - `eager`: sweep runs in the pause as a scheduler bucket;
//! - `lazy`: the pause only publishes a sweep epoch; reclamation is
//!   paid by allocation-cache refills (sweep-on-refill) and the next
//!   cycle's straggler fence;
//! - `lazy+bg`: same, plus the background sweeper draining chunks in
//!   the idle windows between cycles.
//!
//! A fifth `scheduler` arm re-runs the baseline with `pin_workers`: the
//! pool threads take CPU affinity at spawn, so bucket slices stop
//! migrating between cores mid-pause. On a host with fewer cores than
//! workers the pinned arm degrades by design — that is the point of
//! measuring it.
//!
//! What the worker axis isolates: every pause phase — final card
//! cleaning, root rescanning, packet drain, (eager) sweep, bitmap
//! pre-clear — is a prioritized work bucket served by the *persistent*
//! scheduler pool, claimed from atomic cursors. `stw_workers = 1` runs
//! every bucket inline on the leader; higher counts split the same
//! cursors across the resident workers with **one condvar wakeup per
//! pause** (the session open) and no `thread::spawn` or per-phase
//! barrier on the pause path. On a multi-core host the cursor split is
//! the speedup; a single-CPU runner serializes the workers and mostly
//! measures the session protocol's overhead. (The retired per-phase
//! dispatch produced rare 100 ms+ max-pause outliers exactly here: each
//! phase's wakeup-then-spin barrier could yield-storm on an
//! oversubscribed CPU, and five phases per pause gave five chances per
//! cycle. One wakeup per pause and timed 50 µs waits between buckets
//! removed that failure mode; the outlier guard below documents any
//! recurrence with a flight-recorder postmortem.)
//!
//! What the sweep axis isolates: how much pause wall time the sweep
//! phase itself costs, and what moving it off-pause does to allocation
//! throughput (refills now pay for sweeping) and to the next cycle's
//! straggler fence. Columns are measured wall (not work-model)
//! milliseconds from the pause-phase timers in every `CycleStats`.
//!
//! Prints one row per (mode, sweep, workers) point and writes
//! machine-readable results to `BENCH_pause.json` (override with
//! `MCGC_BENCH_OUT`); CI's `bench-smoke` job archives that file and
//! appends the scheduler speedups and the lazy-sweep pause reduction to
//! EXPERIMENTS.md. Any run whose max pause exceeds 5x the running
//! average dumps the worst-pause postmortem (per-phase wall shares,
//! per-worker busy/idle splits) so an outlier is diagnosable from the
//! CI log alone.

use std::time::Duration;

use mcgc_core::{CollectorMode, GcLog, SweepMode};
use mcgc_workloads::jbb::run_standalone;

struct Point {
    mode: &'static str,
    sweep: &'static str,
    workers: usize,
    cycles: usize,
    avg_pause_ms: f64,
    max_pause_ms: f64,
    avg_cards_ms: f64,
    avg_roots_ms: f64,
    avg_drain_ms: f64,
    avg_sweep_ms: f64,
    avg_clear_ms: f64,
    /// Straggler fence (lazy modes): runs pre-pause under the
    /// coordinator lock, so it is *not* part of `avg_pause_ms`.
    avg_straggler_ms: f64,
    avg_straggler_chunks: f64,
    /// Workload allocation throughput, transactions/second.
    throughput: f64,
}

fn avg_ms(log: &GcLog, f: impl Fn(&mcgc_core::CycleStats) -> Duration) -> f64 {
    if log.cycles.is_empty() {
        return f64::NAN;
    }
    log.cycles
        .iter()
        .map(|c| f(c).as_secs_f64() * 1e3)
        .sum::<f64>()
        / log.cycles.len() as f64
}

/// Dumps the flight-recorder postmortem when any pause in the run blew
/// past 5x the running average up to that point — the automated outlier
/// diagnosis. Warm-up is excluded (the first pauses dominate any
/// running average trivially).
fn dump_outlier_postmortem(label: &str, report: &mcgc_workloads::RunReport) {
    let mut sum_ms = 0.0;
    let mut outlier: Option<(u64, f64, f64)> = None;
    for (n, c) in report.log.cycles.iter().enumerate() {
        let pause_ms = c.pause_wall.as_secs_f64() * 1e3;
        if n >= 3 {
            let avg = sum_ms / n as f64;
            if pause_ms > avg * 5.0 && outlier.is_none_or(|(_, p, _)| pause_ms > p) {
                outlier = Some((c.cycle, pause_ms, avg));
            }
        }
        sum_ms += pause_ms;
    }
    if let Some((cycle, pause_ms, avg_ms)) = outlier {
        println!(
            "!! outlier at {label}: cycle {cycle} paused {pause_ms:.2} ms \
             (5x bar over the {avg_ms:.2} ms running average)"
        );
        match &report.worst_pause_postmortem {
            Some(pm) => println!("--- worst-pause postmortem ---\n{pm}"),
            None => println!("(no postmortem recorded)"),
        }
    }
}

fn run(
    mode: CollectorMode,
    mode_name: &'static str,
    sweep: SweepMode,
    bg_sweep: bool,
    pin: bool,
    sweep_name: &'static str,
    workers: usize,
) -> Point {
    let heap = mcgc_bench::heap_bytes(32);
    let mut cfg = mcgc_bench::gc_config(mode, heap);
    cfg.stw_workers = workers;
    cfg.sweep = sweep;
    cfg.bg_sweep = bg_sweep;
    cfg.pin_workers = pin;
    cfg.background_threads = if mode == CollectorMode::Concurrent {
        2
    } else {
        0
    };
    let opts = mcgc_bench::jbb_opts(heap, 2, mcgc_bench::seconds(1.5));
    let report = run_standalone(cfg, &opts);
    dump_outlier_postmortem(
        &format!("{mode_name}/{sweep_name}/{workers}-workers"),
        &report,
    );
    let throughput = report.throughput();
    let log = mcgc_bench::steady(&report.log);
    let straggler_chunks = if log.cycles.is_empty() {
        f64::NAN
    } else {
        log.cycles.iter().map(|c| c.straggler_chunks).sum::<u64>() as f64 / log.cycles.len() as f64
    };
    Point {
        mode: mode_name,
        sweep: sweep_name,
        workers,
        cycles: log.cycles.len(),
        avg_pause_ms: log.avg_pause_wall_ms(),
        max_pause_ms: log.max_pause_wall_ms(),
        avg_cards_ms: avg_ms(&log, |c| c.cards_wall),
        avg_roots_ms: avg_ms(&log, |c| c.roots_wall),
        avg_drain_ms: avg_ms(&log, |c| c.drain_wall),
        avg_sweep_ms: avg_ms(&log, |c| c.sweep_wall),
        avg_clear_ms: avg_ms(&log, |c| c.clear_wall),
        avg_straggler_ms: avg_ms(&log, |c| c.straggler_wall),
        avg_straggler_chunks: straggler_chunks,
        throughput,
    }
}

fn main() {
    mcgc_bench::banner(
        "pause scaling: GC scheduler at 1/2/4/8 workers × sweep mode (+ pinned arm)",
        "fully parallel stop-the-world phase (§2.2, §6); lazy sweep off the pause path",
    );
    println!(
        "{:<6} {:<8} {:>7} {:>7}  {:>9} {:>9}  {:>8} {:>8} {:>8} {:>8} {:>8}  {:>9} {:>7}  {:>9}",
        "mode",
        "sweep",
        "workers",
        "cycles",
        "avg_ms",
        "max_ms",
        "cards",
        "roots",
        "drain",
        "sweep",
        "clear",
        "fence_ms",
        "chunks",
        "tx/s"
    );
    let worker_points = [1usize, 2, 4, 8];
    // stw stays eager (its pause is the whole collection by definition);
    // cgc runs the full sweep-mode axis. The `scheduler` arm is the
    // baseline again with the pool pinned to CPUs — the affinity knob's
    // A/B partner for the unpinned stw/eager row.
    let grid: &[(CollectorMode, &str, SweepMode, bool, bool, &str)] = &[
        (
            CollectorMode::StopTheWorld,
            "stw",
            SweepMode::Eager,
            false,
            false,
            "eager",
        ),
        (
            CollectorMode::Concurrent,
            "cgc",
            SweepMode::Eager,
            false,
            false,
            "eager",
        ),
        (
            CollectorMode::Concurrent,
            "cgc",
            SweepMode::Lazy,
            false,
            false,
            "lazy",
        ),
        (
            CollectorMode::Concurrent,
            "cgc",
            SweepMode::Lazy,
            true,
            false,
            "lazy+bg",
        ),
        (
            CollectorMode::StopTheWorld,
            "stw",
            SweepMode::Eager,
            false,
            true,
            "scheduler",
        ),
    ];
    let mut points = Vec::new();
    for &(mode, name, sweep, bg, pin, sweep_name) in grid {
        for &workers in &worker_points {
            let p = run(mode, name, sweep, bg, pin, sweep_name, workers);
            println!(
                "{:<6} {:<8} {:>7} {:>7}  {:>9.3} {:>9.3}  {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}  {:>9.3} {:>7.1}  {:>9.0}",
                p.mode,
                p.sweep,
                p.workers,
                p.cycles,
                p.avg_pause_ms,
                p.max_pause_ms,
                p.avg_cards_ms,
                p.avg_roots_ms,
                p.avg_drain_ms,
                p.avg_sweep_ms,
                p.avg_clear_ms,
                p.avg_straggler_ms,
                p.avg_straggler_chunks,
                p.throughput,
            );
            points.push(p);
        }
    }

    let point = |mode: &str, sweep: &str, workers: usize| {
        points
            .iter()
            .find(|p| p.mode == mode && p.sweep == sweep && p.workers == workers)
    };
    let pause = |mode: &str, sweep: &str, workers: usize| {
        point(mode, sweep, workers).map_or(f64::NAN, |p| p.avg_pause_ms)
    };
    let speedup_4 = pause("stw", "eager", 1) / pause("stw", "eager", 4);
    let speedup_8 = pause("stw", "eager", 1) / pause("stw", "eager", 8);
    let sched_speedup_4 = pause("stw", "scheduler", 1) / pause("stw", "scheduler", 4);
    // Sweep-mode summary at the 2-worker point:
    // how much pause the lazy epoch removes, and what it costs in
    // allocation throughput now that refills pay for sweeping.
    let summary_workers = 2;
    let eager = point("cgc", "eager", summary_workers);
    let lazy_bg = point("cgc", "lazy+bg", summary_workers);
    let pause_reduction = match (eager, lazy_bg) {
        (Some(e), Some(l)) if e.avg_pause_ms > 0.0 => 1.0 - l.avg_pause_ms / e.avg_pause_ms,
        _ => f64::NAN,
    };
    let throughput_delta = match (eager, lazy_bg) {
        (Some(e), Some(l)) if e.throughput > 0.0 => l.throughput / e.throughput - 1.0,
        _ => f64::NAN,
    };
    println!();
    println!("stw avg-pause speedup, 1 -> 4 workers: {speedup_4:.2}x");
    println!("stw avg-pause speedup, 1 -> 8 workers: {speedup_8:.2}x");
    println!("pinned (scheduler arm) speedup, 1 -> 4 workers: {sched_speedup_4:.2}x");
    println!("(>1 needs real cores: on a 1-CPU host the workers time-slice");
    println!(" and these ratios measure only the session protocol's overhead)");
    println!(
        "cgc pause reduction, eager -> lazy+bg sweep ({summary_workers} workers): {:.0}%",
        pause_reduction * 100.0
    );
    println!(
        "cgc allocation-throughput delta, eager -> lazy+bg: {:+.1}%",
        throughput_delta * 100.0
    );

    let mut json = String::from("{\n  \"bench\": \"pause_scaling\",\n");
    json.push_str(&mcgc_bench::host_meta_json("stw|cgc"));
    json.push_str(&format!(
        "  \"heap_bytes\": {},\n  \"worker_points\": [1, 2, 4, 8],\n  \
         \"sweep_modes\": [\"eager\", \"lazy\", \"lazy+bg\", \"scheduler\"],\n",
        mcgc_bench::heap_bytes(32)
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"sweep\": \"{}\", \"workers\": {}, \"cycles\": {}, \
             \"avg_pause_wall_ms\": {:.4}, \"max_pause_wall_ms\": {:.4}, \
             \"avg_cards_ms\": {:.4}, \"avg_roots_ms\": {:.4}, \"avg_drain_ms\": {:.4}, \
             \"avg_sweep_ms\": {:.4}, \"avg_clear_ms\": {:.4}, \
             \"avg_straggler_ms\": {:.4}, \"avg_straggler_chunks\": {:.1}, \
             \"throughput_tx_s\": {:.0}}}{}\n",
            p.mode,
            p.sweep,
            p.workers,
            p.cycles,
            p.avg_pause_ms,
            p.max_pause_ms,
            p.avg_cards_ms,
            p.avg_roots_ms,
            p.avg_drain_ms,
            p.avg_sweep_ms,
            p.avg_clear_ms,
            p.avg_straggler_ms,
            p.avg_straggler_chunks,
            p.throughput,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_4_workers\": {speedup_4:.3},\n  \"speedup_8_workers\": {speedup_8:.3},\n  \
         \"scheduler_speedup_4_workers\": {sched_speedup_4:.3},\n  \
         \"pause_reduction_lazy_bg\": {pause_reduction:.3},\n  \
         \"throughput_delta_lazy_bg\": {throughput_delta:.3}\n}}\n"
    ));
    let out = std::env::var("MCGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_pause.json".into());
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
