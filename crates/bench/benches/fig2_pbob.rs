//! Figure 2: pBOB with 25 terminals per warehouse on a large heap —
//! average/maximum pause and average mark time as warehouses grow, plus
//! the sweep share of the remaining pause.
//!
//! Paper reference points (2.5 GB heap, 4-way PowerPC, 40–80 warehouses,
//! 2000 threads at 80): pause reduction 84%; at 80 warehouses the average
//! sweep is 279 ms = 42% of the total pause; mark grows much slower than
//! heap occupancy (57%→91% occupancy, 232→314 ms mark).

use mcgc_bench::{banner, gc_config, heap_bytes, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::jbb::{self, JbbOptions};

fn main() {
    banner(
        "Figure 2 — pBOB pause times vs warehouses (terminals + think time)",
        "84% pause reduction; sweep = 42% of remaining pause at 80 warehouses",
    );
    // Scaled-down pBOB: the paper runs 40..80 warehouses x 25 terminals
    // on 2.5 GB; we default to a smaller heap and terminal count so the
    // sweep runs in minutes on one CPU. Shape, not magnitude.
    let heap = heap_bytes(96);
    let secs = seconds(2.5);
    let terminals = 8;
    println!(
        "{:<4} {:>7} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "wh",
        "threads",
        "avg pause",
        "max pause",
        "avg mark",
        "avg sweep",
        "sweep share",
        "occupancy"
    );
    for warehouses in [4usize, 6, 8, 10, 12] {
        let mut opts = JbbOptions::pbob(heap, warehouses, 0.55);
        opts.terminals_per_warehouse = terminals;
        opts.think_time = Some(std::time::Duration::from_millis(2));
        opts.duration = secs;
        let report = jbb::run_standalone(gc_config(CollectorMode::Concurrent, heap), &opts);
        let log = steady(&report.log);
        let avg_pause = log.avg_pause_ms();
        let avg_sweep = log.avg_sweep_ms();
        println!(
            "{:<4} {:>7} {:>7.1} ms {:>7.1} ms {:>7.1} ms {:>7.1} ms {:>10.0}% {:>9.1}%",
            warehouses,
            opts.threads(),
            avg_pause,
            log.max_pause_ms(),
            log.avg_mark_ms(),
            avg_sweep,
            if avg_pause > 0.0 {
                avg_sweep / avg_pause * 100.0
            } else {
                0.0
            },
            log.avg_occupancy_after() * 100.0,
        );
    }
    println!("\nshape checks: pause dominated by sweep once mark is concurrent");
    println!("(the paper's motivation for lazy sweep, see ablation_lazy_sweep);");
    println!("mark time grows slower than occupancy.");
}
