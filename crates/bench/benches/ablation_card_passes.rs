//! Ablation (§2.1 footnote 2): "adding, when possible, a second card
//! cleaning pass yields a further reduction in pause time, without a
//! noticeable impact on throughput."

use mcgc_bench::{banner, gc_config, heap_bytes, jbb_opts, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::jbb;

fn main() {
    banner(
        "Ablation — concurrent card-cleaning passes (§2.1 footnote 2)",
        "a second pass reduces final cleaning / pause at similar throughput",
    );
    let heap = heap_bytes(48);
    let secs = seconds(2.5);
    let opts = jbb_opts(heap, 4, secs);
    println!(
        "{:<7} {:>12} {:>12} {:>12} {:>14} {:>13}",
        "passes", "throughput", "avg pause", "max pause", "final cards", "conc cards"
    );
    for passes in [1usize, 2, 3] {
        let mut cfg = gc_config(CollectorMode::Concurrent, heap);
        cfg.card_clean_passes = passes;
        let r = jbb::run_standalone(cfg, &opts);
        let log = steady(&r.log);
        let conc: u64 = log.cycles.iter().map(|c| c.cards_cleaned_concurrent).sum();
        let n = log.cycles.len().max(1) as u64;
        println!(
            "{:<7} {:>7.0} tx/s {:>9.1} ms {:>9.1} ms {:>14.0} {:>13}",
            passes,
            r.throughput(),
            log.avg_pause_ms(),
            log.max_pause_ms(),
            log.avg_final_card_cleaning(),
            conc / n,
        );
    }
    println!("\nshape check: more passes move card cleaning out of the pause");
    println!("(lower final cards) without a large throughput cost.");
}
