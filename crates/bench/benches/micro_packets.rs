//! Micro-benchmarks of the §4 work packet mechanism: get/put cost,
//! push/pop throughput, contended access, and termination checks.
//! Self-timed with `std::time::Instant` (no external harness) so the
//! workspace builds hermetically.

use std::time::Instant;

use mcgc_packets::{PacketPool, PoolConfig, WorkBuffer};

/// Times `iters` runs of `f` after `iters / 10` warmup runs and prints
/// mean ns/iter (and per-element cost when `elements > 1`).
fn bench(name: &str, iters: u64, elements: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per_iter = total.as_nanos() as f64 / iters as f64;
    if elements > 1 {
        println!(
            "{name:<40} {per_iter:>12.1} ns/iter  {:>8.2} ns/elem",
            per_iter / elements as f64
        );
    } else {
        println!("{name:<40} {per_iter:>12.1} ns/iter");
    }
}

fn packet_get_put() {
    let pool: PacketPool<u64> = PacketPool::new(PoolConfig::default());
    bench("packets/get_output_put", 200_000, 1, || {
        let p = pool.get_output().expect("packet");
        std::hint::black_box(&p);
        pool.put(p);
    });
}

fn packet_push_pop() {
    let pool: PacketPool<u64> = PacketPool::new(PoolConfig::default());
    bench("packets/push_pop/1000_items_roundtrip", 2_000, 1000, || {
        let mut buf = WorkBuffer::new(&pool);
        for i in 0..1000u64 {
            let _ = buf.push(i);
        }
        let mut n = 0;
        while buf.pop().is_some() {
            n += 1;
        }
        std::hint::black_box(n);
    });
}

fn termination_check() {
    let pool: PacketPool<u64> = PacketPool::new(PoolConfig::default());
    bench("packets/is_tracing_complete", 1_000_000, 1, || {
        std::hint::black_box(pool.is_tracing_complete());
    });
}

fn contended_pool() {
    // Four threads hammering a small pool: measures CAS-loop behaviour
    // under contention (Table 4's cost metric at micro scale).
    bench("packets/contended/4_threads_2000_each", 20, 8000, || {
        let pool = PacketPool::<u64>::new(PoolConfig {
            packets: 64,
            capacity: 16,
        });
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = &pool;
                s.spawn(move || {
                    let mut buf = WorkBuffer::new(pool);
                    for i in 0..2000u64 {
                        let _ = buf.push(t * 10_000 + i);
                        if i % 3 == 0 {
                            let _ = buf.pop();
                        }
                    }
                    while buf.pop().is_some() {}
                });
            }
        });
        std::hint::black_box(pool.stats().cas_ops);
    });
}

fn main() {
    mcgc_bench::banner(
        "micro: work packets",
        "§4 get/put, push/pop, contention, termination",
    );
    packet_get_put();
    packet_push_pop();
    termination_check();
    contended_pool();
}
