//! Criterion micro-benchmarks of the §4 work packet mechanism: get/put
//! cost, push/pop throughput, contended access, and termination checks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mcgc_packets::{PacketPool, PoolConfig, WorkBuffer};

fn packet_get_put(c: &mut Criterion) {
    let pool: PacketPool<u64> = PacketPool::new(PoolConfig::default());
    c.bench_function("packets/get_output_put", |b| {
        b.iter(|| {
            let p = pool.get_output().expect("packet");
            std::hint::black_box(&p);
            pool.put(p);
        })
    });
}

fn packet_push_pop(c: &mut Criterion) {
    let pool: PacketPool<u64> = PacketPool::new(PoolConfig::default());
    let mut group = c.benchmark_group("packets/push_pop");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("1000_items_roundtrip", |b| {
        b.iter(|| {
            let mut buf = WorkBuffer::new(&pool);
            for i in 0..1000u64 {
                let _ = buf.push(i);
            }
            let mut n = 0;
            while buf.pop().is_some() {
                n += 1;
            }
            std::hint::black_box(n);
        })
    });
    group.finish();
}

fn termination_check(c: &mut Criterion) {
    let pool: PacketPool<u64> = PacketPool::new(PoolConfig::default());
    c.bench_function("packets/is_tracing_complete", |b| {
        b.iter(|| std::hint::black_box(pool.is_tracing_complete()))
    });
}

fn contended_pool(c: &mut Criterion) {
    // Four threads hammering a small pool: measures CAS-loop behaviour
    // under contention (Table 4's cost metric at micro scale).
    let mut group = c.benchmark_group("packets/contended");
    group.sample_size(20);
    group.bench_function("4_threads_2000_items_each", |b| {
        b.iter_batched(
            || PacketPool::<u64>::new(PoolConfig { packets: 64, capacity: 16 }),
            |pool| {
                std::thread::scope(|s| {
                    for t in 0..4u64 {
                        let pool = &pool;
                        s.spawn(move || {
                            let mut buf = WorkBuffer::new(pool);
                            for i in 0..2000u64 {
                                let _ = buf.push(t * 10_000 + i);
                                if i % 3 == 0 {
                                    let _ = buf.pop();
                                }
                            }
                            while buf.pop().is_some() {}
                        });
                    }
                });
                std::hint::black_box(pool.stats().cas_ops);
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    packet_get_put,
    packet_push_pop,
    termination_check,
    contended_pool
);
criterion_main!(benches);
