//! Table 2: effectiveness of metering — fraction of collections failing
//! the card-cleaning-ratio and free-space criteria, and cards left at
//! allocation-failure halts, per tracing rate.
//!
//! Paper reference: CC-rate fails 76/61/23/21%; free-space fails
//! 26.6/3.2/0.4/0.4%; cards left 0% at every rate.

use mcgc_bench::{banner, gc_config, heap_bytes, jbb_opts, seconds, steady};
use mcgc_core::CollectorMode;
use mcgc_workloads::jbb;

fn main() {
    banner(
        "Table 2 — effectiveness of metering vs tracing rate (SPECjbb, 8 wh)",
        "CC-rate fails drop with rate; free-space fails only at rate 1; cards left ~0",
    );
    let heap = heap_bytes(48);
    let secs = seconds(2.5);
    let opts = jbb_opts(heap, 8, secs);
    println!(
        "{:<8} {:>14} {:>17} {:>12} {:>8}",
        "rate", "CC Rate fails", "Free Space fails", "Cards Left", "cycles"
    );
    for rate in [1.0f64, 4.0, 8.0, 10.0] {
        let mut cfg = gc_config(CollectorMode::Concurrent, heap);
        cfg.tracing_rate = rate;
        let r = jbb::run_standalone(cfg, &opts);
        let log = steady(&r.log);
        println!(
            "TR{:<6} {:>13.0}% {:>16.1}% {:>12.1} {:>8}",
            rate,
            log.cc_rate_failures() * 100.0,
            log.free_space_failures(heap) * 100.0,
            log.avg_cards_left(),
            log.cycles.len(),
        );
    }
    println!("\ncriteria (§6.2): CC Rate < 20% (STW cleaning small relative to");
    println!("concurrent), premature free space < 5% of heap, cards left = 0.");
}
