//! The per-thread tracing discipline over the packet pool (paper §4.1,
//! §4.3): separate input and output packets, get-before-return
//! replacement, and the overflow swap.

use crate::pool::{Packet, PacketPool};

/// What happened on a [`WorkBuffer::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome<T> {
    /// The item was buffered for later tracing.
    Pushed,
    /// Both input and output packets are full and no replacement was
    /// available: temporary overflow (§4.3). The caller receives the item
    /// back and must fall back to mark-and-dirty-card.
    Overflow(T),
}

/// A thread's window onto the packet pool: one input packet (pop only)
/// and one output packet (push only), as §4.1 prescribes. Packets are
/// acquired lazily and always input-before-output (§4.3, so acquisition
/// attempts cannot mask termination).
pub struct WorkBuffer<'p, T> {
    pool: &'p PacketPool<T>,
    input: Option<Packet<'p, T>>,
    output: Option<Packet<'p, T>>,
    /// Items popped through this buffer (tracing-factor accounting).
    popped: u64,
    /// Items pushed through this buffer.
    pushed: u64,
    /// Overflow events (§4.3; expected to be rare).
    overflows: u64,
    /// Input packets claimed from the pool (get-before-return cycles).
    input_claims: u64,
    /// Output packets claimed from the pool.
    output_claims: u64,
}

impl<'p, T> WorkBuffer<'p, T> {
    /// Creates an empty buffer over `pool`; packets are acquired on first
    /// use.
    pub fn new(pool: &'p PacketPool<T>) -> WorkBuffer<'p, T> {
        WorkBuffer {
            pool,
            input: None,
            output: None,
            popped: 0,
            pushed: 0,
            overflows: 0,
            input_claims: 0,
            output_claims: 0,
        }
    }

    /// Items popped through this buffer since creation.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Items pushed through this buffer since creation.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Overflow events since creation.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Input packets claimed from the pool since creation.
    pub fn input_claims(&self) -> u64 {
        self.input_claims
    }

    /// Output packets claimed from the pool since creation.
    pub fn output_claims(&self) -> u64 {
        self.output_claims
    }

    /// Pushes a work item to the output packet, handling replacement and
    /// the §4.3 overflow swap. Every `Packet::push` result is honored:
    /// a packet may also reject the item because the watchdog condemned
    /// the handle, and silently dropping a marked-but-unscanned object
    /// would lose its children.
    pub fn push(&mut self, item: T) -> PushOutcome<T> {
        let mut item = item;
        // Fast path: room in the current (usable) output packet.
        if let Some(out) = self.output.as_mut() {
            if !out.is_full() {
                match out.push(item) {
                    Ok(()) => {
                        self.pushed += 1;
                        return PushOutcome::Pushed;
                    }
                    // Condemned handle: fall through and replace it.
                    Err(back) => item = back,
                }
            }
        }
        // Need a (new) non-full output packet. Get first, then return the
        // old one (§4.3 replacement order).
        match self.pool.get_output() {
            Some(new_out) if !new_out.is_full() => {
                self.output_claims += 1;
                if let Some(old) = self.output.replace(new_out) {
                    self.pool.put(old);
                }
                let out = self.output.as_mut().expect("just installed");
                match out.push(item) {
                    Ok(()) => {
                        self.pushed += 1;
                        PushOutcome::Pushed
                    }
                    // A freshly acquired packet is non-full and cannot
                    // already be condemned, but overflow remains the
                    // sound answer to any rejection.
                    Err(back) => {
                        self.overflows += 1;
                        PushOutcome::Overflow(back)
                    }
                }
            }
            other => {
                // A full packet is useless as output; return it.
                if let Some(p) = other {
                    self.pool.put(p);
                }
                // §4.3: failing that, try to swap input and output roles.
                // Condemned packets are excluded: swapping entries into a
                // body that is cleared on drop would lose them.
                let in_swappable = self
                    .input
                    .as_ref()
                    .map(|p| !p.is_full() && !p.is_condemned());
                let out_usable = self.output.as_ref().is_some_and(|o| !o.is_condemned());
                match (in_swappable, self.output.as_mut()) {
                    (Some(true), Some(out)) if out_usable => {
                        let inp = self.input.as_mut().expect("checked above");
                        out.swap_contents(inp);
                        match out.push(item) {
                            Ok(()) => {
                                self.pushed += 1;
                                PushOutcome::Pushed
                            }
                            Err(back) => {
                                self.overflows += 1;
                                PushOutcome::Overflow(back)
                            }
                        }
                    }
                    (None, Some(_)) => {
                        // No input packet: adopt the full output as input
                        // and retry for a fresh output lazily next push.
                        self.input = self.output.take();
                        self.push(item)
                    }
                    _ => {
                        self.overflows += 1;
                        PushOutcome::Overflow(item)
                    }
                }
            }
        }
    }

    /// Pops the next work item, replacing an exhausted input packet from
    /// the pool (get-before-return, §4.3). Returns `None` when no input
    /// work is available to this thread right now — the caller should try
    /// other concurrent tasks (card cleaning), quit (mutator), or yield
    /// and retry (background thread).
    pub fn pop(&mut self) -> Option<T> {
        loop {
            if let Some(inp) = self.input.as_mut() {
                if let Some(item) = inp.pop() {
                    self.popped += 1;
                    return Some(item);
                }
                // Input exhausted: get a new one *first*, then return the
                // empty one (§4.3).
                if let Some(new_in) = self.pool.get_input() {
                    self.input_claims += 1;
                    let old = self.input.replace(new_in).expect("had input");
                    self.pool.put(old);
                    continue;
                }
            } else {
                if let Some(p) = self.pool.get_input() {
                    self.input_claims += 1;
                    self.input = Some(p);
                    continue;
                }
            }
            // Pool has no input work. Drain our own output: return it to
            // the pool (it is non-empty, so this cannot fake termination)
            // and reacquire.
            if self.output.as_ref().is_some_and(|o| !o.is_empty()) {
                let out = self.output.take().expect("checked");
                self.pool.put(out);
                continue;
            }
            return None;
        }
    }

    /// The next item [`WorkBuffer::pop`] would return, if already
    /// buffered (prefetch hint, §4.1).
    pub fn peek(&self) -> Option<&T> {
        self.input.as_ref().and_then(|p| p.peek())
    }

    /// Returns both packets to the pool. Equivalent to drop; named for
    /// call-site clarity when an increment of tracing work ends (§4.1).
    pub fn finish(self) {}
}

impl<T> std::fmt::Debug for WorkBuffer<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkBuffer")
            .field("input_len", &self.input.as_ref().map(|p| p.len()))
            .field("output_len", &self.output.as_ref().map(|p| p.len()))
            .field("popped", &self.popped)
            .field("pushed", &self.pushed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;

    fn pool(packets: usize, capacity: usize) -> PacketPool<u64> {
        PacketPool::new(PoolConfig { packets, capacity })
    }

    #[test]
    fn push_then_pop_through_pool() {
        let p = pool(8, 4);
        let mut w = WorkBuffer::new(&p);
        for i in 0..10 {
            assert_eq!(w.push(i), PushOutcome::Pushed);
        }
        w.finish();
        assert!(!p.is_tracing_complete());
        let mut r = WorkBuffer::new(&p);
        let mut got: Vec<u64> = std::iter::from_fn(|| r.pop()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(r.popped(), 10);
        r.finish();
        assert!(p.is_tracing_complete());
    }

    #[test]
    fn pop_drains_own_output() {
        let p = pool(8, 4);
        let mut w = WorkBuffer::new(&p);
        w.push(42);
        // Without putting the buffer back, pop must find its own output.
        assert_eq!(w.pop(), Some(42));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn overflow_when_pool_exhausted() {
        // 2 packets of 2 entries: buffer holds both, fills both, then
        // overflows.
        let p = pool(2, 2);
        let mut w = WorkBuffer::new(&p);
        let mut pushed = 0;
        let mut overflowed = Vec::new();
        for i in 0..6 {
            match w.push(i) {
                PushOutcome::Pushed => pushed += 1,
                PushOutcome::Overflow(item) => overflowed.push(item),
            }
        }
        assert_eq!(pushed, 4, "both packets filled via the swap");
        assert_eq!(overflowed, vec![4, 5]);
        assert_eq!(w.overflows(), 2);
        // The buffered items are still all retrievable.
        let got: Vec<u64> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn termination_not_faked_by_replacement() {
        // One thread holds the only non-empty packet; while it replaces
        // its input, termination must not be observable.
        let p = pool(4, 2);
        let mut w = WorkBuffer::new(&p);
        w.push(1);
        w.push(2); // fills packet 1 (cap 2)
        w.finish();
        let mut r = WorkBuffer::new(&p);
        assert_eq!(r.pop(), Some(2));
        assert!(
            !p.is_tracing_complete(),
            "thread holds a non-empty input; not complete"
        );
        assert_eq!(r.pop(), Some(1));
        r.finish();
        assert!(p.is_tracing_complete());
    }

    #[test]
    fn push_replaces_condemned_output_instead_of_dropping() {
        let p = pool(4, 4);
        let mut w = WorkBuffer::new(&p);
        assert_eq!(w.push(1), PushOutcome::Pushed);
        assert_eq!(p.condemn_outstanding(), 1); // w's output packet
                                                // The next push must not vanish into the condemned body: the
                                                // buffer notices the rejection, replaces its output, and the item
                                                // survives.
        assert_eq!(w.push(2), PushOutcome::Pushed);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None, "1 was written off with the condemned packet");
        assert_eq!(p.condemned(), 0);
    }

    #[test]
    fn many_threads_process_everything_exactly_once() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let p = Arc::new(pool(32, 8));
        // Seed a "tree": each item spawns two children 2i+1, 2i+2 up to
        // TREE; every processed item recorded. Miri runs the same shape
        // at a fraction of the volume.
        const TREE: u64 = if cfg!(miri) { 400 } else { 4000 };
        {
            let mut w = WorkBuffer::new(&p);
            w.push(0);
        }
        let processed: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        let mut w = WorkBuffer::new(&p);
                        let mut idle = 0;
                        while idle < 500 {
                            match w.pop() {
                                Some(i) => {
                                    idle = 0;
                                    seen.push(i);
                                    for c in [2 * i + 1, 2 * i + 2] {
                                        if c < TREE {
                                            match w.push(c) {
                                                PushOutcome::Pushed => {}
                                                PushOutcome::Overflow(_) => {
                                                    panic!("pool too small for test")
                                                }
                                            }
                                        }
                                    }
                                }
                                None => {
                                    idle += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let all: Vec<u64> = processed.into_iter().flatten().collect();
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(all.len(), unique.len(), "no item processed twice");
        assert_eq!(unique.len(), TREE as usize, "every item processed");
        assert!(p.is_tracing_complete());
    }
}
