//! The work packet pool: occupancy-classified sub-pools of fixed-capacity
//! packets with CAS-only synchronization (paper §4).
//!
//! Packets live in a fixed slab and are linked into lock-free lists by
//! index; list heads carry a unique tag incremented on every successful
//! compare-and-swap to defeat the ABA problem (paper footnote 4).
//! Sub-pool packet counters are updated *after* each get/put (§4.3), so
//! they are rough but safe for termination detection: the Empty pool
//! counter equalling the total packet count implies any packet still held
//! is empty.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use mcgc_membar::{release_fence, FenceKind};

/// Which sub-pool a packet lives in, by occupancy (§4.2). The Deferred
/// pool holds packets of objects whose allocation bits were not yet
/// published (§5.2).
#[derive(Copy, Clone, Eq, PartialEq, Debug, Hash)]
pub enum SubPoolKind {
    /// Empty packets.
    Empty,
    /// Packets less than 50% full.
    NonEmpty,
    /// Packets at least 50% full, including totally full ones.
    AlmostFull,
    /// Packets of deferred (not-yet-safe) objects (§5.2).
    Deferred,
}

const SUBPOOLS: usize = 4;
const NIL: u32 = u32::MAX;
/// Sentinel checkout stamp marking a revoked (condemned) packet: the
/// stop-the-world watchdog writes it over the owner stamp of a packet
/// whose holder stalled or died, turning the holder's handle inert.
const CONDEMNED: u64 = u64::MAX;

/// Pool sizing parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Total number of packets (the paper uses 1000; 3000 for the 2.5 GB
    /// pBOB run).
    pub packets: usize,
    /// Entries per packet (the paper's packets hold up to 493 entries).
    pub capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            packets: 1000,
            capacity: 493,
        }
    }
}

struct Slot<T> {
    next: AtomicU32,
    body: UnsafeCell<Vec<T>>,
    /// 0 when pooled; a unique checkout stamp while held by a thread;
    /// [`CONDEMNED`] after the watchdog revoked the holder's handle.
    owner: AtomicU64,
}

struct SubPool {
    /// Packed `(index:32, tag:32)`; tag increments on every successful
    /// CAS, preventing ABA.
    head: AtomicU64,
    /// Rough packet count, updated after each list operation (§4.3).
    count: AtomicUsize,
}

impl SubPool {
    fn new() -> SubPool {
        SubPool {
            head: AtomicU64::new(pack(NIL, 0)),
            count: AtomicUsize::new(0),
        }
    }
}

#[inline]
fn pack(idx: u32, tag: u32) -> u64 {
    ((tag as u64) << 32) | idx as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

/// Snapshot of pool instrumentation (Table 4 costs and §6.3 watermarks).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Packets currently in the Empty sub-pool (rough).
    pub empty: usize,
    /// Packets currently in the Non-empty sub-pool (rough).
    pub non_empty: usize,
    /// Packets currently in the Almost-full sub-pool (rough).
    pub almost_full: usize,
    /// Packets currently in the Deferred sub-pool (rough).
    pub deferred: usize,
    /// CAS operations attempted on sub-pool heads (get/put cost, Table 4).
    pub cas_ops: u64,
    /// High-water mark of packets simultaneously held by threads (§6.3
    /// upper limit on memory need).
    pub in_use_watermark: usize,
    /// High-water mark of occupied packet slots, sampled at packet put
    /// (§6.3 lower limit on memory need).
    pub entries_watermark: usize,
    /// Occupied entries currently accounted (exact for pooled packets).
    pub entries: usize,
    /// Packets acquired from the pool (gets) since the last reset.
    pub gets: u64,
    /// Packets returned to the pool (puts) since the last reset.
    pub puts: u64,
    /// Packets condemned by the watchdog and not yet surrendered by
    /// their (stalled) holders.
    pub condemned: usize,
}

/// The global work packet pool (paper §4).
///
/// `T` is the work item type (the collector uses object references).
pub struct PacketPool<T> {
    slots: Box<[Slot<T>]>,
    capacity: usize,
    pools: [SubPool; SUBPOOLS],
    cas_ops: AtomicU64,
    in_use: AtomicUsize,
    in_use_watermark: AtomicUsize,
    entries: AtomicUsize,
    entries_watermark: AtomicUsize,
    gets: AtomicU64,
    puts: AtomicU64,
    /// Monotonic checkout-stamp source (starts at 1; 0 means pooled).
    next_checkout: AtomicU64,
    /// Packets condemned and not yet returned; counts toward §4.3
    /// termination detection in place of their Empty-pool membership.
    condemned: AtomicUsize,
}

// SAFETY: a packet's body is only accessed by the thread that popped its
// index from a sub-pool list (exclusive ownership transfers through the
// list). `T: Send` is required to move items across threads.
unsafe impl<T: Send> Send for PacketPool<T> {}
// SAFETY: as above — shared references only ever touch the atomics;
// `UnsafeCell` bodies are reached through list-transferred ownership.
unsafe impl<T: Send> Sync for PacketPool<T> {}

impl<T> PacketPool<T> {
    /// Creates a pool with all packets empty.
    pub fn new(config: PoolConfig) -> PacketPool<T> {
        assert!(config.packets > 0 && config.packets < NIL as usize);
        assert!(config.capacity > 0);
        let pool = PacketPool {
            slots: (0..config.packets)
                .map(|_| Slot {
                    next: AtomicU32::new(NIL),
                    body: UnsafeCell::new(Vec::with_capacity(config.capacity)),
                    owner: AtomicU64::new(0),
                })
                .collect(),
            capacity: config.capacity,
            pools: [
                SubPool::new(),
                SubPool::new(),
                SubPool::new(),
                SubPool::new(),
            ],
            cas_ops: AtomicU64::new(0),
            in_use: AtomicUsize::new(0),
            in_use_watermark: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            entries_watermark: AtomicUsize::new(0),
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            next_checkout: AtomicU64::new(1),
            condemned: AtomicUsize::new(0),
        };
        for i in 0..config.packets {
            pool.push_list(SubPoolKind::Empty, i as u32);
        }
        pool
    }

    /// Total number of packets.
    pub fn total_packets(&self) -> usize {
        self.slots.len()
    }

    /// Entries per packet.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn pool_index(kind: SubPoolKind) -> usize {
        match kind {
            SubPoolKind::Empty => 0,
            SubPoolKind::NonEmpty => 1,
            SubPoolKind::AlmostFull => 2,
            SubPoolKind::Deferred => 3,
        }
    }

    fn push_list(&self, kind: SubPoolKind, idx: u32) {
        let pool = &self.pools[Self::pool_index(kind)];
        loop {
            if mcgc_fault::point!("pool.cas_storm") {
                // Simulated head contention: yield between the head read
                // and the CAS so concurrent list operations interleave
                // (and genuinely fail the CAS) far more often.
                std::thread::yield_now();
            }
            let head = pool.head.load(Ordering::Acquire);
            let (hidx, tag) = unpack(head);
            // MODEL: pool_model — the link store is ordered before the
            // publishing CAS by the CAS's Release; it needs no ordering
            // of its own.
            self.slots[idx as usize].next.store(hidx, Ordering::Relaxed);
            self.cas_ops.fetch_add(1, Ordering::Relaxed);
            if pool
                .head
                .compare_exchange_weak(
                    head,
                    pack(idx, tag.wrapping_add(1)),
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                break;
            }
        }
        // §4.3: the packet counter is updated after the list operation.
        // MODEL: pool_model — CounterBeforeOp reverses this and the model
        // catches the broken termination inequality.
        pool.count.fetch_add(1, Ordering::Relaxed);
    }

    fn pop_list(&self, kind: SubPoolKind) -> Option<u32> {
        let pool = &self.pools[Self::pool_index(kind)];
        loop {
            if mcgc_fault::point!("pool.cas_storm") {
                std::thread::yield_now();
            }
            let head = pool.head.load(Ordering::Acquire);
            let (hidx, tag) = unpack(head);
            if hidx == NIL {
                return None;
            }
            // MODEL: pool_model — reading the link of a head we may not
            // own is safe only because slots are never freed and the
            // tagged CAS below rejects a recycled head (NoAbaTag).
            let next = self.slots[hidx as usize].next.load(Ordering::Relaxed);
            self.cas_ops.fetch_add(1, Ordering::Relaxed);
            if pool
                .head
                .compare_exchange_weak(
                    head,
                    pack(next, tag.wrapping_add(1)),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                // MODEL: pool_model — §4.3 counter after the list op.
                pool.count.fetch_sub(1, Ordering::Relaxed);
                return Some(hidx);
            }
        }
    }

    fn classify(&self, len: usize) -> SubPoolKind {
        if len == 0 {
            SubPoolKind::Empty
        } else if len * 2 < self.capacity {
            SubPoolKind::NonEmpty
        } else {
            SubPoolKind::AlmostFull
        }
    }

    fn acquire(&self, idx: u32) -> Packet<'_, T> {
        // SAFETY: we just popped `idx` from a list, so we own the body.
        let len = unsafe { (*self.slots[idx as usize].body.get()).len() };
        let stamp = self.next_checkout.fetch_add(1, Ordering::Relaxed);
        self.slots[idx as usize]
            .owner
            .store(stamp, Ordering::Relaxed);
        self.gets.fetch_add(1, Ordering::Relaxed);
        let held = self.in_use.fetch_add(1, Ordering::Relaxed) + 1;
        self.in_use_watermark.fetch_max(held, Ordering::Relaxed);
        Packet {
            pool: self,
            idx,
            acquired_len: len,
            dirty: false,
            target: None,
        }
    }

    /// Gets an *input* packet: the highest occupancy range that has
    /// packets (§4.2) — Almost-full first, then Non-empty.
    pub fn get_input(&self) -> Option<Packet<'_, T>> {
        self.pop_list(SubPoolKind::AlmostFull)
            .or_else(|| self.pop_list(SubPoolKind::NonEmpty))
            .map(|idx| self.acquire(idx))
    }

    /// Gets an *output* packet: the lowest occupancy range that has
    /// packets (§4.2) — Empty first, then Non-empty.
    pub fn get_output(&self) -> Option<Packet<'_, T>> {
        // Injected exhaustion forces the §4.3 overflow fallback. Only
        // output-side gets are injectable: failing `get_input` would
        // starve the STW drain, which retries it unconditionally.
        if mcgc_fault::point!("pool.exhausted") {
            return None;
        }
        self.pop_list(SubPoolKind::Empty)
            .or_else(|| self.pop_list(SubPoolKind::NonEmpty))
            .map(|idx| self.acquire(idx))
    }

    /// Gets an empty packet only (used for the deferred-object packet).
    pub fn get_empty(&self) -> Option<Packet<'_, T>> {
        if mcgc_fault::point!("pool.exhausted") {
            return None;
        }
        self.pop_list(SubPoolKind::Empty)
            .map(|idx| self.acquire(idx))
    }

    /// Returns `packet` to the sub-pool matching its occupancy. Equivalent
    /// to dropping it; provided for readability at call sites.
    pub fn put(&self, packet: Packet<'_, T>) {
        drop(packet);
    }

    /// Moves every Deferred packet back into the regular sub-pools so its
    /// objects get another chance to be traced (§5.2).
    ///
    /// Returns the number of packets recycled.
    pub fn recycle_deferred(&self) -> usize {
        let mut n = 0;
        while let Some(idx) = self.pop_list(SubPoolKind::Deferred) {
            // SAFETY: exclusive ownership after pop.
            let len = unsafe { (*self.slots[idx as usize].body.get()).len() };
            self.push_list(self.classify(len), idx);
            n += 1;
        }
        n
    }

    /// §4.3 termination detection: tracing is complete when the Empty
    /// pool's counter equals the total number of packets. Condemned
    /// packets count as surrendered — their entries were written off by
    /// the watchdog (and re-derived through dirty cards), so a stalled
    /// holder can no longer block termination.
    pub fn is_tracing_complete(&self) -> bool {
        self.pools[Self::pool_index(SubPoolKind::Empty)]
            .count
            .load(Ordering::Relaxed)
            + self.condemned.load(Ordering::Relaxed)
            >= self.slots.len()
    }

    /// Packets currently checked out by threads (rough).
    pub fn outstanding(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Packets condemned and not yet surrendered by their holders.
    pub fn condemned(&self) -> usize {
        self.condemned.load(Ordering::Relaxed)
    }

    /// Revokes every currently checked-out packet: overwrites its owner
    /// stamp with the condemned sentinel, so the (stalled or dead)
    /// holder's handle rejects pushes, pops nothing, and clears its body
    /// on drop, while termination detection counts the packet as
    /// surrendered. Returns the number of packets condemned.
    ///
    /// The caller must guarantee every holder is descheduled for the
    /// duration of the call — a stop-the-world pause qualifies. A holder
    /// racing its own (pre-pause) drop wins the stamp swap and is
    /// skipped; its packet returned normally.
    ///
    /// Safety note on the written-off entries: the condemning collector
    /// must re-derive the lost grey set some other way. The core
    /// watchdog does this by dirtying the card of every marked object
    /// before the pause's final card-cleaning pass.
    pub fn condemn_outstanding(&self) -> usize {
        let mut n = 0;
        for slot in self.slots.iter() {
            let owner = slot.owner.load(Ordering::Acquire);
            if owner != 0
                && owner != CONDEMNED
                && slot
                    .owner
                    .compare_exchange(owner, CONDEMNED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                self.condemned.fetch_add(1, Ordering::Release);
                n += 1;
            }
        }
        n
    }

    /// True if any deferred packets are waiting.
    pub fn has_deferred(&self) -> bool {
        self.pools[Self::pool_index(SubPoolKind::Deferred)]
            .count
            .load(Ordering::Relaxed)
            > 0
    }

    /// Snapshot of counters and watermarks.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            // MODEL: pool_model — racy snapshot reads; §4.3's inequality
            // (counts never under-report) is what makes them usable.
            empty: self.pools[0].count.load(Ordering::Relaxed),
            non_empty: self.pools[1].count.load(Ordering::Relaxed),
            almost_full: self.pools[2].count.load(Ordering::Relaxed),
            deferred: self.pools[3].count.load(Ordering::Relaxed),
            cas_ops: self.cas_ops.load(Ordering::Relaxed),
            in_use_watermark: self.in_use_watermark.load(Ordering::Relaxed),
            entries_watermark: self.entries_watermark.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            condemned: self.condemned.load(Ordering::Relaxed),
        }
    }

    /// Fraction of total entry slots currently occupied, in `[0, 1]`
    /// (rough: reads the entries counter once).
    pub fn occupancy(&self) -> f64 {
        let total = self.slots.len() * self.capacity;
        self.entries.load(Ordering::Relaxed) as f64 / total as f64
    }

    /// Copies every entry currently sitting in pooled packets, across
    /// all four sub-pools. This is the collector's *grey set*: objects
    /// marked but not yet scanned. Used by the `verify-gc` tri-color
    /// audit at safepoints.
    ///
    /// # Safety
    ///
    /// The pool must be quiescent: no thread may get, put, or mutate a
    /// packet for the duration of the call, and no packet may be held by
    /// a thread that could mutate it during the call — held packets are
    /// not on any list, so they are skipped, which is only sound if
    /// their holders are descheduled (e.g. stalled holders whose packets
    /// the watchdog condemned and re-derived via dirty cards). A
    /// stop-the-world pause with worker threads parked satisfies this.
    pub unsafe fn snapshot_entries(&self) -> Vec<T>
    where
        T: Copy,
    {
        let mut out = Vec::new();
        for pool in &self.pools {
            let (mut idx, _) = unpack(pool.head.load(Ordering::Acquire));
            while idx != NIL {
                let slot = &self.slots[idx as usize];
                // SAFETY: quiescence (the caller's contract) means no
                // thread owns or mutates this body while we read it.
                let body = unsafe { &*slot.body.get() };
                out.extend_from_slice(body);
                idx = slot.next.load(Ordering::Relaxed); // MODEL: pool_model (quiescent)
            }
        }
        out
    }

    /// Resets instrumentation (not pool contents) between measurements.
    pub fn reset_stats(&self) {
        self.cas_ops.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.in_use_watermark
            .store(self.in_use.load(Ordering::Relaxed), Ordering::Relaxed);
        self.entries_watermark
            .store(self.entries.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl<T> std::fmt::Debug for PacketPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketPool")
            .field("packets", &self.slots.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// An exclusively-held work packet. Returns itself to the proper sub-pool
/// on drop; if entries were pushed, the drop performs the §5.1 publication
/// fence first (one fence per packet of marked objects).
pub struct Packet<'p, T> {
    pool: &'p PacketPool<T>,
    idx: u32,
    acquired_len: usize,
    dirty: bool,
    target: Option<SubPoolKind>,
}

impl<'p, T> Packet<'p, T> {
    #[inline]
    fn body(&mut self) -> &mut Vec<T> {
        // SAFETY: exclusive ownership while the handle exists.
        unsafe { &mut *self.pool.slots[self.idx as usize].body.get() }
    }

    #[inline]
    fn body_ref(&self) -> &Vec<T> {
        // SAFETY: exclusive ownership while the handle exists.
        unsafe { &*self.pool.slots[self.idx as usize].body.get() }
    }

    /// Number of entries currently in the packet.
    pub fn len(&self) -> usize {
        self.body_ref().len()
    }

    /// True if the packet holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the packet is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.pool.capacity
    }

    /// Entries per packet.
    pub fn capacity(&self) -> usize {
        self.pool.capacity
    }

    /// True if the watchdog revoked this handle: its entries are
    /// written off and the handle must act inert.
    pub(crate) fn is_condemned(&self) -> bool {
        self.pool.slots[self.idx as usize]
            .owner
            .load(Ordering::Relaxed)
            == CONDEMNED
    }

    /// Pushes `item`; fails with the item back if the packet is full or
    /// the handle was condemned (a condemned body is cleared on drop, so
    /// accepting the item would silently lose it).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() || self.is_condemned() {
            return Err(item);
        }
        self.body().push(item);
        self.dirty = true;
        Ok(())
    }

    /// Pops an entry (LIFO within the packet). A condemned handle yields
    /// nothing: its entries belong to a marking epoch that may already
    /// be over, and the condemning pause re-derived them from cards.
    pub fn pop(&mut self) -> Option<T> {
        if self.is_condemned() {
            return None;
        }
        self.body().pop()
    }

    /// Peeks at the entry the next [`Packet::pop`] returns — work packets
    /// make the next object to trace known in advance, enabling prefetch
    /// (§4.1).
    pub fn peek(&self) -> Option<&T> {
        self.body_ref().last()
    }

    /// Routes this packet to the Deferred sub-pool when dropped (§5.2).
    pub fn defer(mut self) {
        self.target = Some(SubPoolKind::Deferred);
    }

    /// Swaps the contents of two packets (the §4.3 input/output swap on
    /// overflow).
    pub fn swap_contents(&mut self, other: &mut Packet<'p, T>) {
        let a = self.idx as usize;
        let b = other.idx as usize;
        debug_assert!(a != b);
        // SAFETY: both handles are exclusively held.
        unsafe {
            std::ptr::swap(self.pool.slots[a].body.get(), self.pool.slots[b].body.get());
        }
        std::mem::swap(&mut self.acquired_len, &mut other.acquired_len);
        self.dirty = true;
        other.dirty = true;
    }
}

impl<T> Drop for Packet<'_, T> {
    fn drop(&mut self) {
        // Resolve the checkout stamp first: if the watchdog condemned
        // this handle while its holder was descheduled, the entries were
        // already written off (the condemning pause re-derived them from
        // dirty cards) and reference a marking epoch that may be over —
        // clear them rather than leak stale grey objects into a future
        // cycle.
        let slot_owner = &self.pool.slots[self.idx as usize].owner;
        let was_condemned = slot_owner.swap(0, Ordering::AcqRel) == CONDEMNED;
        if was_condemned {
            // SAFETY: exclusive ownership while the handle exists.
            unsafe { (*self.pool.slots[self.idx as usize].body.get()).clear() };
        }
        let len = self.len();
        if self.dirty && len > 0 {
            // §5.1: one fence before returning an output packet to a pool;
            // the consumer needs none (data dependency through the head
            // pointer).
            release_fence(FenceKind::PacketPublish);
        }
        let kind = if was_condemned {
            // Cleared above; never honor a Deferred routing request from
            // before the condemnation.
            SubPoolKind::Empty
        } else {
            self.target.unwrap_or_else(|| self.pool.classify(len))
        };
        self.pool.push_list(kind, self.idx);
        self.pool.puts.fetch_add(1, Ordering::Relaxed);
        self.pool.in_use.fetch_sub(1, Ordering::Relaxed);
        // entries accounting (sampled at put; §6.3 watermark)
        let pool = self.pool;
        if len >= self.acquired_len {
            let total = pool
                .entries
                .fetch_add(len - self.acquired_len, Ordering::Relaxed)
                + (len - self.acquired_len);
            pool.entries_watermark.fetch_max(total, Ordering::Relaxed);
        } else {
            pool.entries
                .fetch_sub(self.acquired_len - len, Ordering::Relaxed);
        }
        if was_condemned {
            // Only after the packet is back on the Empty list: the §4.3
            // termination inequality stays satisfied throughout (the
            // packet is transiently counted both as condemned and as
            // empty, never as neither).
            pool.condemned.fetch_sub(1, Ordering::Release);
        }
    }
}

impl<T> std::fmt::Debug for Packet<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("idx", &self.idx)
            .field("len", &self.len())
            .field("capacity", &self.pool.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(packets: usize, capacity: usize) -> PacketPool<u64> {
        PacketPool::new(PoolConfig { packets, capacity })
    }

    #[test]
    fn starts_all_empty_and_complete() {
        let p = pool(8, 4);
        assert_eq!(p.stats().empty, 8);
        assert!(p.is_tracing_complete());
    }

    #[test]
    fn push_pop_roundtrip() {
        let p = pool(4, 4);
        let mut pk = p.get_output().expect("empty packet available");
        assert!(pk.is_empty());
        pk.push(1).unwrap();
        pk.push(2).unwrap();
        assert_eq!(pk.peek(), Some(&2));
        assert_eq!(pk.pop(), Some(2));
        assert_eq!(pk.len(), 1);
        p.put(pk);
        assert!(!p.is_tracing_complete());
        let mut pk = p.get_input().expect("non-empty packet available");
        assert_eq!(pk.pop(), Some(1));
        assert_eq!(pk.pop(), None);
        p.put(pk);
        assert!(p.is_tracing_complete());
    }

    #[test]
    fn classification_by_occupancy() {
        let p = pool(4, 4);
        // 1 entry of 4 => <50% => NonEmpty
        let mut a = p.get_output().unwrap();
        a.push(1).unwrap();
        p.put(a);
        assert_eq!(p.stats().non_empty, 1);
        // 2 of 4 => >=50% => AlmostFull
        let mut b = p.get_output().unwrap();
        b.push(1).unwrap();
        b.push(2).unwrap();
        p.put(b);
        let s = p.stats();
        assert_eq!(s.almost_full, 1);
        assert_eq!(s.empty, 2);
    }

    #[test]
    fn input_prefers_fullest_output_prefers_emptiest() {
        let p = pool(4, 4);
        let mut a = p.get_output().unwrap();
        a.push(1).unwrap(); // NonEmpty
        let mut b = p.get_output().unwrap();
        for i in 0..4 {
            b.push(i).unwrap(); // AlmostFull (full)
        }
        p.put(a);
        p.put(b);
        let input = p.get_input().unwrap();
        assert_eq!(input.len(), 4, "input from AlmostFull first");
        let output = p.get_output().unwrap();
        assert_eq!(output.len(), 0, "output from Empty first");
    }

    #[test]
    fn full_packet_rejects_push() {
        let p = pool(2, 2);
        let mut pk = p.get_output().unwrap();
        pk.push(1).unwrap();
        pk.push(2).unwrap();
        assert_eq!(pk.push(3), Err(3));
        assert!(pk.is_full());
    }

    #[test]
    fn deferred_blocks_termination_until_recycled() {
        let p = pool(4, 4);
        let mut pk = p.get_output().unwrap();
        pk.push(9).unwrap();
        pk.defer();
        assert!(p.has_deferred());
        assert!(!p.is_tracing_complete());
        assert!(p.get_input().is_none(), "deferred packets are not input");
        assert_eq!(p.recycle_deferred(), 1);
        assert!(!p.has_deferred());
        let mut pk = p.get_input().expect("recycled packet is input again");
        assert_eq!(pk.pop(), Some(9));
    }

    #[test]
    fn swap_contents_swaps() {
        let p = pool(4, 4);
        let mut a = p.get_output().unwrap();
        let mut b = p.get_output().unwrap();
        a.push(1).unwrap();
        a.push(2).unwrap();
        b.push(7).unwrap();
        a.swap_contents(&mut b);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(a.pop(), Some(7));
    }

    #[test]
    fn exhaustion_returns_none() {
        let p = pool(2, 4);
        let _a = p.get_output().unwrap();
        let _b = p.get_output().unwrap();
        assert!(p.get_output().is_none());
        assert!(p.get_input().is_none());
        assert!(p.get_empty().is_none());
    }

    #[test]
    fn stats_track_cas_and_watermarks() {
        let p = pool(4, 4);
        let base = p.stats().cas_ops;
        let a = p.get_output().unwrap();
        let b = p.get_output().unwrap();
        assert!(p.stats().cas_ops > base);
        assert_eq!(p.stats().in_use_watermark, 2);
        drop(a);
        drop(b);
        let mut c = p.get_output().unwrap();
        for i in 0..3 {
            c.push(i).unwrap();
        }
        drop(c);
        assert_eq!(p.stats().entries, 3);
        assert_eq!(p.stats().entries_watermark, 3);
    }

    #[test]
    fn publication_fence_emitted_per_dirty_packet() {
        use mcgc_membar::FenceStats;
        let p = pool(4, 8);
        let before = FenceStats::snapshot();
        let mut pk = p.get_output().unwrap();
        for i in 0..5 {
            pk.push(i).unwrap();
        }
        p.put(pk);
        let mid = FenceStats::snapshot();
        assert_eq!(mid.since(&before).packet_publish, 1, "one fence per packet");
        // Draining without pushing emits no fence.
        let mut pk = p.get_input().unwrap();
        while pk.pop().is_some() {}
        p.put(pk);
        let after = FenceStats::snapshot();
        assert_eq!(after.since(&mid).packet_publish, 0);
    }

    #[test]
    fn recycle_classifies_by_occupancy() {
        let p = pool(8, 4);
        // Defer one almost-full and one barely-filled packet.
        let mut a = p.get_output().unwrap();
        a.push(1).unwrap();
        a.push(2).unwrap();
        a.push(3).unwrap();
        a.defer();
        let mut b = p.get_output().unwrap();
        b.push(9).unwrap();
        b.defer();
        assert_eq!(p.stats().deferred, 2);
        assert_eq!(p.recycle_deferred(), 2);
        let s = p.stats();
        assert_eq!(s.deferred, 0);
        assert_eq!(s.almost_full, 1, "3/4 full goes to AlmostFull");
        assert_eq!(s.non_empty, 1, "1/4 full goes to NonEmpty");
    }

    #[test]
    fn recycle_empty_deferred_goes_to_empty_pool() {
        let p = pool(4, 4);
        let pk = p.get_output().unwrap();
        pk.defer(); // deferring an empty packet is legal
        assert!(
            !p.is_tracing_complete(),
            "deferred packet blocks termination"
        );
        p.recycle_deferred();
        assert!(p.is_tracing_complete());
    }

    #[test]
    fn reset_stats_keeps_watermark_floor_at_current_use() {
        let p = pool(4, 4);
        let a = p.get_output().unwrap();
        let _b = p.get_output().unwrap();
        drop(a);
        assert_eq!(p.stats().in_use_watermark, 2);
        p.reset_stats();
        assert_eq!(p.stats().in_use_watermark, 1, "one still held");
        assert_eq!(p.stats().cas_ops, 0);
    }

    #[test]
    fn peek_matches_next_pop() {
        let p = pool(2, 4);
        let mut pk = p.get_output().unwrap();
        pk.push(10).unwrap();
        pk.push(20).unwrap();
        assert_eq!(pk.peek(), Some(&20));
        assert_eq!(pk.pop(), Some(20));
        assert_eq!(pk.peek(), Some(&10));
    }

    #[test]
    fn concurrent_churn_loses_nothing() {
        use std::sync::Arc;
        // Under Miri every CAS is interpreted; keep the shape (4
        // producers, 2 consumers, contended lists) but shrink the churn.
        const PER_PRODUCER: u64 = if cfg!(miri) { 150 } else { 4000 };
        let p = Arc::new(pool(64, 8));
        // Producers push PER_PRODUCER items each; consumers drain. Total
        // consumed + left-in-pool must equal total produced.
        let produced = 4 * PER_PRODUCER;
        let consumed: u64 = std::thread::scope(|s| {
            for t in 0..4u64 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    let mut out = None;
                    for i in 0..PER_PRODUCER {
                        let item = t * 1_000_000 + i;
                        loop {
                            if out.is_none() {
                                out = p.get_output();
                            }
                            match out.as_mut() {
                                Some(pk) => {
                                    if pk.push(item).is_ok() {
                                        break;
                                    }
                                    out = None; // full: drop returns it
                                }
                                None => std::thread::yield_now(),
                            }
                        }
                    }
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        let mut n = 0u64;
                        let mut idle = 0;
                        while idle < 200 {
                            match p.get_input() {
                                Some(mut pk) => {
                                    idle = 0;
                                    while pk.pop().is_some() {
                                        n += 1;
                                    }
                                }
                                None => {
                                    idle += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        n
                    })
                })
                .collect();
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let left = p.stats().entries as u64;
        assert_eq!(consumed + left, produced, "no items lost or duplicated");
        if left == 0 {
            assert!(p.is_tracing_complete());
        }
    }

    #[test]
    fn condemned_handle_is_inert_and_counts_toward_termination() {
        let p = pool(4, 4);
        let mut held = p.get_output().unwrap();
        held.push(1).unwrap();
        held.push(2).unwrap();
        assert!(!p.is_tracing_complete());
        assert_eq!(p.outstanding(), 1);
        assert_eq!(p.condemn_outstanding(), 1);
        assert_eq!(p.condemned(), 1);
        assert!(p.is_tracing_complete(), "condemned counts as surrendered");
        // The stalled holder's handle is inert from here on.
        assert_eq!(held.push(3), Err(3));
        assert_eq!(held.pop(), None);
        drop(held);
        let s = p.stats();
        assert_eq!(s.condemned, 0, "surrender clears the condemnation");
        assert_eq!(s.empty, 4, "cleared body returns to Empty");
        assert_eq!(s.entries, 0, "written-off entries leave the accounting");
        // The slot is fully reusable afterwards.
        let mut pk = p.get_output().unwrap();
        pk.push(9).unwrap();
        assert_eq!(pk.pop(), Some(9));
    }

    #[test]
    fn condemn_skips_pooled_packets() {
        let p = pool(4, 4);
        let mut a = p.get_output().unwrap();
        a.push(5).unwrap();
        p.put(a); // back on a list: no longer outstanding
        assert_eq!(p.condemn_outstanding(), 0);
        let mut b = p.get_input().unwrap();
        assert_eq!(b.pop(), Some(5), "pooled packets were untouched");
    }

    #[test]
    fn condemned_deferred_request_is_ignored() {
        let p = pool(4, 4);
        let mut a = p.get_output().unwrap();
        a.push(7).unwrap();
        assert_eq!(p.condemn_outstanding(), 1);
        a.defer();
        assert!(
            !p.has_deferred(),
            "condemned packet cannot hide in Deferred"
        );
        assert!(p.is_tracing_complete());
    }

    #[test]
    fn snapshot_entries_walks_all_sub_pools() {
        let p = pool(4, 8);
        let mut a = p.get_output().unwrap();
        for v in 0..8 {
            a.push(v).unwrap(); // full → AlmostFull
        }
        drop(a);
        let mut b = p.get_empty().unwrap();
        b.push(100).unwrap(); // 1 of 8 → NonEmpty
        drop(b);
        let mut c = p.get_empty().unwrap();
        c.push(200).unwrap();
        c.defer(); // → Deferred
                   // SAFETY: single-threaded test; every packet is back on a list.
        let mut got = unsafe { p.snapshot_entries() };
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7, 100, 200]);
    }
}
