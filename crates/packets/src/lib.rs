//! Work packet management (paper §4): load balancing for a *dynamic* set
//! of tracing threads.
//!
//! A work packet is a small mark stack. Threads obtain an *input* packet
//! (pop only) and an *output* packet (push only) from a global pool of
//! occupancy-classified sub-pools, so the volume of marked objects is
//! distributed fairly among however many threads are currently tracing —
//! which, for an incremental collector, can be every allocating mutator
//! at once. The mechanism differs from stealing-based load balancers on
//! three points the paper calls out:
//!
//! 1. input and output are separated and threads compete for input;
//! 2. synchronization is a single compare-and-swap per get/put on a
//!    tagged (ABA-safe) list head;
//! 3. the tracing state — overflow, underflow, termination — falls out of
//!    the sub-pool packet counters ([`PacketPool::is_tracing_complete`]).
//!
//! # Example
//!
//! ```
//! use mcgc_packets::{PacketPool, PoolConfig, PushOutcome, WorkBuffer};
//!
//! let pool: PacketPool<u64> = PacketPool::new(PoolConfig::default());
//! let mut tracer = WorkBuffer::new(&pool);
//! assert_eq!(tracer.push(7), PushOutcome::Pushed);
//! assert_eq!(tracer.pop(), Some(7));
//! tracer.finish();
//! assert!(pool.is_tracing_complete());
//! ```

pub mod pool;
pub mod tracer;

pub use pool::{Packet, PacketPool, PoolConfig, PoolStats, SubPoolKind};
pub use tracer::{PushOutcome, WorkBuffer};
