//! `mcgc-lint`: the workspace's fence/unsafe discipline, enforced by a
//! hand-rolled token scan (no `syn`, no external dependencies — the
//! workspace is hermetic by design).
//!
//! Rules:
//!
//! * **no-raw-fence** — `std::sync::atomic::fence` / `compiler_fence`
//!   (calls or imports) are forbidden outside `crates/membar`. All
//!   fences go through `mcgc_membar::{release_fence, acquire_fence,
//!   full_fence}` so every barrier carries a [`FenceKind`] tied to a
//!   paper section and is visible to the fence-counting tests.
//! * **no-raw-ordering** — atomic `Ordering::{Relaxed, Acquire,
//!   Release, AcqRel, SeqCst}` is forbidden outside `crates/membar` and
//!   an explicit per-file allowlist ([`ORDERING_ALLOWLIST`]). Adding an
//!   atomic to a new file is a reviewable act: extend the allowlist in
//!   the same change.
//! * **undocumented-unsafe** — every `unsafe` keyword (block, fn, impl,
//!   trait) must carry a `// SAFETY:` comment (or a `/// # Safety` doc
//!   section) on the same line or in the contiguous comment/attribute
//!   block above it.
//! * **no-static-mut** — `static mut` is forbidden everywhere; use an
//!   atomic or a lock.
//! * **unknown-fault-site** — every `mcgc_fault::point!` call must name
//!   its site as a string literal registered in `mcgc_fault::site::ALL`.
//!   A typo'd or unregistered name would create a site no fault plan can
//!   ever reach (plans validate against the same catalog).
//! * **unknown-span-kind** — every `SpanKind::Variant` token must name a
//!   real flight-recorder variant from `mcgc_telemetry::SpanKind::ALL`.
//!   The span taxonomy is a closed catalog (like the fault sites): the
//!   Perfetto exporter, the postmortem, and the docs all key off it.
//! * **missing-pause-span** — `crates/core/src/collector.rs` must carry
//!   a span guard for every kind in `SpanKind::PAUSE_PHASES`. The
//!   postmortem's ≥95%-coverage criterion holds only because the phase
//!   guards tile the pause; deleting one would silently degrade every
//!   postmortem rather than fail a test.
//! * **condvar-wait-not-in-loop** — every unbounded condvar `.wait(`
//!   must sit directly in a block opened by a `while`/`loop` line: the
//!   predicate re-check is what makes spurious and stale wakeups safe,
//!   and `sched_model`'s `ParkMissesOpen` mutation shows exactly what an
//!   unlocked predicate costs. Timed waits (`wait_for`) are exempt — their callers
//!   tolerate spurious returns by construction — as is
//!   `crates/membar/src/sync.rs`, which implements the wrapper itself.
//! * **seqlock-read-section** — the telemetry rings' speculative read
//!   windows are bracketed by `seqlock-read: begin`/`end` marker
//!   comments. Inside a section no stores, RMWs, `return`s or `break`s
//!   are allowed (the copied words are garbage until revalidated), and
//!   the section must be followed within a few code lines by the
//!   revalidating `load`. Each file in [`SEQLOCK_FILES`] must contain
//!   at least one section, so deleting the markers is itself a finding.
//! * **unmodeled-relaxed** — `Ordering::Relaxed` on an atomic named in
//!   a `crates/check` model ([`MODELED_ATOMICS`]) requires a
//!   `// MODEL: <model>` cross-reference on the same line or in the
//!   contiguous comment block above: the model is only worth its salt
//!   if the code it mirrors points back at it when edited.
//! * **bucket-outside-scheduler** — outside
//!   `crates/core/src/scheduler.rs`, a scheduler bucket variant
//!   (`Bucket::Drain`, `Bucket::Sweep`, …) may appear only as the
//!   argument of a `.run(` call: bucket open/close conditions flip
//!   exclusively through the scheduler API (`Session::run`), never by
//!   hand-rolled dispatch. Associated items (`Bucket::COUNT`,
//!   `Bucket::from_index`) are not variant-shaped and pass through.
//!
//! Comments, strings (including raw and byte strings), and char
//! literals are masked out before pattern matching, so prose and test
//! fixtures never trip the rules.
//!
//! Run it with `cargo run -p mcgc-lint` from the workspace root; the
//! binary exits nonzero if any finding is produced. A unit test lints
//! the real tree, so `cargo test` enforces the discipline too.

use std::fmt;
use std::fs;
use std::path::Path;

/// Files (workspace-relative, `/`-separated) allowed to use atomic
/// `Ordering::*` directly. Everything in `crates/membar` is implicitly
/// allowed.
pub const ORDERING_ALLOWLIST: &[&str] = &[
    "crates/core/src/collector.rs",
    "crates/core/src/scheduler.rs",
    "crates/fault/src/lib.rs",
    "crates/core/src/roots.rs",
    "crates/core/src/tracing.rs",
    "crates/heap/src/bitmap.rs",
    "crates/heap/src/cards.rs",
    "crates/heap/src/heap.rs",
    "crates/heap/src/segment.rs",
    "crates/heap/src/shards.rs",
    "crates/heap/src/sweep.rs",
    "crates/packets/src/pool.rs",
    "crates/bench/benches/telemetry_overhead.rs",
    "crates/telemetry/src/histogram.rs",
    "crates/telemetry/src/lib.rs",
    "crates/telemetry/src/registry.rs",
    "crates/telemetry/src/ring.rs",
    "crates/telemetry/src/spans.rs",
    "crates/workloads/src/framework.rs",
    "crates/workloads/src/javac.rs",
    "crates/workloads/src/jbb.rs",
    "examples/web_server.rs",
    "tests/concurrent_correctness.rs",
    "tests/gc_audit.rs",
    "tests/packet_protocol.rs",
];

/// Files that must contain at least one `seqlock-read: begin`/`end`
/// section (the telemetry rings' speculative read windows).
pub const SEQLOCK_FILES: &[&str] = &[
    "crates/telemetry/src/ring.rs",
    "crates/telemetry/src/spans.rs",
];

/// Atomics mirrored by a `crates/check` model: `(file, idents, model)`.
/// A relaxed operation on one of these (`ident.load(Ordering::Relaxed)`
/// etc.) must carry a `// MODEL: <model>` cross-reference so the model
/// and the code it mirrors cannot silently drift apart.
pub const MODELED_ATOMICS: &[(&str, &[&str], &str)] = &[
    (
        "crates/telemetry/src/spans.rs",
        &["seq", "cursor"],
        "seqlock_model",
    ),
    (
        "crates/telemetry/src/ring.rs",
        &["seq", "cursor"],
        "seqlock_model",
    ),
    (
        "crates/heap/src/shards.rs",
        &["nonempty", "free_granules"],
        "shard_model",
    ),
    (
        "crates/packets/src/pool.rs",
        &["next", "count"],
        "pool_model",
    ),
    (
        "crates/core/src/scheduler.rs",
        &["sessions", "wakeups", "stalls"],
        "sched_model",
    ),
];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `no-raw-ordering`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Replaces the contents of comments, string/char literals (including
/// raw and byte strings) with spaces, preserving newlines and the
/// positions of all remaining characters.
pub fn mask_source(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(src.len());
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nesting).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1;
            out.push_str("  ");
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw byte) strings: r"…", r#"…"#, br#"…"#, …
        if (c == 'r' || c == 'b') && (i == 0 || !is_ident(chars[i - 1])) {
            let mut j = i;
            if chars[j] == 'b' && j + 1 < n && chars[j + 1] == 'r' {
                j += 1;
            }
            if chars[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    for &p in &chars[i..=k] {
                        out.push(p);
                    }
                    i = k + 1;
                    while i < n {
                        let closes = chars[i] == '"'
                            && i + hashes < n
                            && chars[i + 1..i + 1 + hashes].iter().all(|&h| h == '#');
                        if closes {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break;
                        }
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Byte-string prefix: emit the `b`, let the `"` arm mask it.
        if c == 'b'
            && i + 1 < n
            && (chars[i + 1] == '"' || chars[i + 1] == '\'')
            && (i == 0 || !is_ident(chars[i - 1]))
        {
            out.push('b');
            i += 1;
            continue;
        }
        // String literal.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    // Preserve an escaped newline (line continuation) so
                    // masked and original line numbers stay aligned.
                    out.push(' ');
                    out.push(blank(chars[i + 1]));
                    i += 2;
                } else if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: '\…' or 'x' is a char; anything
        // else ('a in &'a, 'static) is a lifetime and passes through.
        if c == '\'' {
            let is_char = match chars.get(i + 1) {
                Some('\\') => true,
                Some(&c2) if c2 != '\'' => chars.get(i + 2) == Some(&'\''),
                _ => false,
            };
            if is_char {
                out.push('\'');
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

fn contains_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = !line[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// True if the comment/attribute block ending just above `line_idx`
/// (or `line_idx`'s own trailing comment) contains a safety note.
fn has_safety_note(orig_lines: &[&str], line_idx: usize) -> bool {
    let noted = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if noted(orig_lines[line_idx]) {
        return true;
    }
    let mut j = line_idx;
    while j > 0 {
        j -= 1;
        let t = orig_lines[j].trim_start();
        if t.is_empty() || t.starts_with("#[") || t.starts_with("#!") || t.starts_with(']') {
            continue;
        }
        if t.starts_with("//") || t.starts_with('*') || t.starts_with("/*") {
            if noted(t) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// For every `.wait(` occurrence in the masked source, the 0-based line
/// index of the line that opened its innermost enclosing block.
/// Returned as `(wait_line_idx, opener_line_idx)` pairs.
fn wait_sites(masked: &str) -> Vec<(usize, usize)> {
    let mut sites = Vec::new();
    let mut openers: Vec<usize> = Vec::new();
    let mut line = 0usize;
    let bytes = masked.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => line += 1,
            b'{' => openers.push(line),
            b'}' => {
                openers.pop();
            }
            b'.' if masked[i..].starts_with(".wait(") => {
                // Timed waits (`.wait_for`, `.wait_timeout`) don't match:
                // the `(` right after `wait` excludes them.
                sites.push((line, openers.last().copied().unwrap_or(line)));
            }
            _ => {}
        }
        i += 1;
    }
    sites
}

/// True if `idx`'s line (or one of the two lines above, for conditions
/// that span lines) starts a `while` or `loop`.
fn is_loop_opener(masked_lines: &[&str], idx: usize) -> bool {
    (idx.saturating_sub(2)..=idx).any(|j| {
        masked_lines
            .get(j)
            .is_some_and(|l| contains_word(l, "while") || contains_word(l, "loop"))
    })
}

/// True if `masked_line` performs a relaxed atomic op on `ident`
/// (i.e. contains `ident.` with a word boundary before it, plus
/// `Ordering::Relaxed`).
fn names_modeled_atomic(masked_line: &str, ident: &str) -> bool {
    if !masked_line.contains("Ordering::Relaxed") {
        return false;
    }
    let pat = format!("{ident}.");
    let mut start = 0;
    while let Some(pos) = masked_line[start..].find(&pat) {
        let at = start + pos;
        let before_ok = at == 0
            || !masked_line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return true;
        }
        start = at + pat.len();
    }
    false
}

/// True if the relaxed op on `line_idx` carries a `MODEL:` note: on the
/// line itself, or in the contiguous comment block above it. The walk
/// upward also skips other modeled-relaxed lines, so one comment can
/// cover a contiguous run (e.g. a stats snapshot reading four counters).
fn has_model_note(
    orig_lines: &[&str],
    masked_lines: &[&str],
    idents: &[&str],
    line_idx: usize,
) -> bool {
    if orig_lines[line_idx].contains("MODEL:") {
        return true;
    }
    let mut j = line_idx;
    while j > 0 {
        j -= 1;
        let t = orig_lines[j].trim_start();
        if t.starts_with("//") {
            if t.contains("MODEL:") {
                return true;
            }
            continue;
        }
        if idents
            .iter()
            .any(|id| names_modeled_atomic(masked_lines[j], id))
        {
            continue;
        }
        break;
    }
    false
}

/// Atomic-write / control-flow tokens forbidden inside a seqlock read
/// section (the copied words are garbage until the revalidation check).
fn seqlock_section_offense(masked_line: &str) -> Option<&'static str> {
    if masked_line.contains(".store(") {
        return Some("a store");
    }
    if masked_line.contains(".fetch_") || masked_line.contains("fetch_update") {
        return Some("an atomic RMW");
    }
    if masked_line.contains(".swap(") || masked_line.contains("compare_exchange") {
        return Some("an atomic RMW");
    }
    if contains_word(masked_line, "return") {
        return Some("a return");
    }
    if contains_word(masked_line, "break") {
        return Some("a break");
    }
    None
}

/// The flight-recorder span catalog, as `Debug` names (`PauseDrain`,
/// `SchedJob`, …), taken from the telemetry crate so the lint can never
/// drift from the enum.
fn span_catalog() -> &'static [String] {
    static CATALOG: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    CATALOG.get_or_init(|| {
        mcgc_telemetry::SpanKind::ALL
            .iter()
            .map(|k| format!("{k:?}"))
            .collect()
    })
}

/// The pause-phase kinds `collector.rs` must guard (same source of
/// truth as the postmortem's coverage metric).
fn pause_phase_names() -> &'static [String] {
    static PHASES: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    PHASES.get_or_init(|| {
        mcgc_telemetry::SpanKind::PAUSE_PHASES
            .iter()
            .map(|k| format!("{k:?}"))
            .collect()
    })
}

const ORDERING_VARIANTS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Lints one file's source. `rel` is the workspace-relative path with
/// `/` separators; it selects which rules and allowlists apply.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let masked = mask_source(src);
    let masked_lines: Vec<&str> = masked.lines().collect();
    let orig_lines: Vec<&str> = src.lines().collect();
    let in_membar = rel.starts_with("crates/membar/");
    let ordering_allowed = in_membar || ORDERING_ALLOWLIST.contains(&rel);

    for (idx, line) in masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        if !in_membar {
            let fence_import = line.trim_start().starts_with("use ")
                && line.contains("sync::atomic")
                && contains_word(line, "fence");
            if line.contains("atomic::fence") || line.contains("compiler_fence") || fence_import {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "no-raw-fence",
                    message: "raw atomic fence outside crates/membar; use \
                              mcgc_membar::{release_fence, acquire_fence, full_fence}"
                        .to_string(),
                });
            }
        }
        if !ordering_allowed {
            if let Some(v) = ORDERING_VARIANTS.iter().find(|v| line.contains(*v)) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "no-raw-ordering",
                    message: format!(
                        "{v} outside crates/membar and the allowlist; either route \
                         through mcgc_membar or add this file to ORDERING_ALLOWLIST"
                    ),
                });
            }
        }
        if contains_word(line, "static")
            && contains_word(line, "mut")
            && line.contains("static mut")
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule: "no-static-mut",
                message: "static mut is forbidden; use an atomic or a lock".to_string(),
            });
        }
        if line.contains("point!(") {
            // The masked line proves this is code (not prose or a string
            // fixture); the original line still carries the literal.
            let site = orig_lines[idx].find("point!(").and_then(|p| {
                let rest = orig_lines[idx][p + "point!(".len()..].trim_start();
                rest.strip_prefix('"')?.split('"').next()
            });
            match site {
                Some(name) if mcgc_fault::site::ALL.contains(&name) => {}
                Some(name) => findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "unknown-fault-site",
                    message: format!(
                        "fault site \"{name}\" is not registered in \
                         mcgc_fault::site::ALL; register it (and document it \
                         in DESIGN.md's fault-site catalog) or fix the typo"
                    ),
                }),
                None => findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "unknown-fault-site",
                    message: "mcgc_fault::point! requires a string-literal site \
                              name (registered in mcgc_fault::site::ALL) so the \
                              catalog stays checkable"
                        .to_string(),
                }),
            }
        }
        // Closed span catalog: any `SpanKind::CamelCase` token must be a
        // real variant. Associated items (`ALL`, `PAUSE_PHASES`,
        // `from_u8`, …) are not variant-shaped and pass through.
        let mut start = 0;
        while let Some(pos) = line[start..].find("SpanKind::") {
            let at = start + pos + "SpanKind::".len();
            let ident: &str = line[at..]
                .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                .next()
                .unwrap_or("");
            start = at + ident.len().max(1);
            let variant_shaped = ident.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && ident.chars().any(|c| c.is_ascii_lowercase());
            if variant_shaped && !span_catalog().iter().any(|v| v == ident) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "unknown-span-kind",
                    message: format!(
                        "SpanKind::{ident} is not a flight-recorder variant; the span \
                         taxonomy is a closed catalog (mcgc_telemetry::SpanKind::ALL) — \
                         add the variant there (exporter name, docs) or fix the typo"
                    ),
                });
            }
        }
        // Bucket-open confinement: outside the scheduler itself, a
        // bucket variant may only be opened through `Session::run`.
        if rel != "crates/core/src/scheduler.rs" {
            let mut start = 0;
            while let Some(pos) = line[start..].find("Bucket::") {
                let at = start + pos;
                let before_ok = at == 0
                    || !line[..at]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                let ident_at = at + "Bucket::".len();
                let ident: &str = line[ident_at..]
                    .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                    .next()
                    .unwrap_or("");
                start = ident_at + ident.len().max(1);
                let variant_shaped = ident.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    && ident.chars().any(|c| c.is_ascii_lowercase());
                if before_ok && variant_shaped && !line.contains(".run(") {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "bucket-outside-scheduler",
                        message: format!(
                            "Bucket::{ident} used outside a `Session::run` call; bucket \
                             open/close conditions flip only through the scheduler API, \
                             so dispatch the work with `session.run(Bucket::{ident}, …)` \
                             instead of hand-rolling it"
                        ),
                    });
                }
            }
        }
        if contains_word(line, "unsafe") && !has_safety_note(&orig_lines, idx) {
            findings.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule: "undocumented-unsafe",
                message: "unsafe without a `// SAFETY:` comment (or `# Safety` doc \
                          section) on the preceding comment block"
                    .to_string(),
            });
        }
    }
    // Unbounded condvar waits must re-check their predicate in a loop.
    if rel != "crates/membar/src/sync.rs" {
        for (wait_idx, opener_idx) in wait_sites(&masked) {
            if !is_loop_opener(&masked_lines, opener_idx) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: wait_idx + 1,
                    rule: "condvar-wait-not-in-loop",
                    message: "condvar .wait() whose enclosing block is not a \
                              while/loop; spurious and stale wakeups make an \
                              un-re-checked predicate unsound (sched_model's \
                              ParkMissesOpen mutation shows the failure)"
                        .to_string(),
                });
            }
        }
    }
    // Seqlock speculative read sections: bracketed, side-effect-free,
    // and immediately revalidated. Markers are comments, so they are
    // matched on the unmasked source — which is why the lint crate
    // itself (whose docs and fixtures mention the markers) is exempt.
    if !rel.starts_with("crates/lint/") {
        let begin_at = |l: &str| l.contains("seqlock-read: begin");
        let end_at = |l: &str| l.contains("seqlock-read: end");
        let mut open: Option<usize> = None;
        let mut sections = 0usize;
        for (idx, orig) in orig_lines.iter().enumerate() {
            if begin_at(orig) {
                if open.is_some() {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "seqlock-read-section",
                        message: "nested `seqlock-read: begin` (previous section \
                                  never ended)"
                            .to_string(),
                    });
                }
                open = Some(idx);
            } else if end_at(orig) {
                let Some(_begin) = open.take() else {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "seqlock-read-section",
                        message: "`seqlock-read: end` without a matching begin".to_string(),
                    });
                    continue;
                };
                sections += 1;
                // The revalidating load must follow within the next few
                // code lines (comment/blank lines don't count).
                let mut code_seen = 0;
                let mut revalidated = false;
                for j in idx + 1..orig_lines.len() {
                    let t = orig_lines[j].trim_start();
                    if t.is_empty() || t.starts_with("//") {
                        continue;
                    }
                    if masked_lines[j].contains(".load(") {
                        revalidated = true;
                        break;
                    }
                    code_seen += 1;
                    if code_seen >= 4 {
                        break;
                    }
                }
                if !revalidated {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "seqlock-read-section",
                        message: "seqlock read section is not followed by a \
                                  revalidating seq load; without the re-check \
                                  the speculative copy is unvalidated garbage"
                            .to_string(),
                    });
                }
            } else if open.is_some() {
                if let Some(what) = seqlock_section_offense(masked_lines[idx]) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "seqlock-read-section",
                        message: format!(
                            "seqlock read section contains {what}; the copied \
                             words are garbage until the revalidation check, so \
                             nothing may act on them (or skip the check) here"
                        ),
                    });
                }
            }
        }
        if let Some(begin) = open {
            findings.push(Finding {
                file: rel.to_string(),
                line: begin + 1,
                rule: "seqlock-read-section",
                message: "`seqlock-read: begin` never ended".to_string(),
            });
        }
        if SEQLOCK_FILES.contains(&rel) && sections == 0 {
            findings.push(Finding {
                file: rel.to_string(),
                line: 1,
                rule: "seqlock-read-section",
                message: "this file's seqlock reader lost its `seqlock-read: \
                          begin`/`end` markers; the read-window rule can no \
                          longer see it"
                    .to_string(),
            });
        }
    }
    // Relaxed ops on model-mirrored atomics must cite the model.
    if let Some((_, idents, model)) = MODELED_ATOMICS.iter().find(|(f, _, _)| *f == rel) {
        for (idx, line) in masked_lines.iter().enumerate() {
            let Some(ident) = idents.iter().find(|id| names_modeled_atomic(line, id)) else {
                continue;
            };
            if !has_model_note(&orig_lines, &masked_lines, idents, idx) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "unmodeled-relaxed",
                    message: format!(
                        "Ordering::Relaxed on `{ident}`, which {model} \
                         (crates/check) mirrors, without a `// MODEL: {model}` \
                         cross-reference; cite the model so it is updated in \
                         the same change"
                    ),
                });
            }
        }
    }
    // The pause path must keep a guard per pause-phase kind: the
    // postmortem's coverage criterion rests on the guards tiling the
    // pause, and losing one degrades silently, not loudly.
    if rel == "crates/core/src/collector.rs" {
        for phase in pause_phase_names() {
            if !masked.contains(&format!("SpanKind::{phase}")) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: 1,
                    rule: "missing-pause-span",
                    message: format!(
                        "collector.rs no longer opens a SpanKind::{phase} guard; every \
                         SpanKind::PAUSE_PHASES kind must wrap its pause phase or the \
                         postmortem's coverage criterion silently degrades"
                    ),
                });
            }
        }
    }
    findings
}

fn walk(dir: &Path, root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, root, findings)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            findings.extend(lint_source(&rel, &src));
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root` (skipping `target/` and
/// `.git/`). Returns all findings, in path order.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    walk(root, root, &mut findings)?;
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_strings_and_chars() {
        let src = "let x = \"Ordering::SeqCst\"; // Ordering::SeqCst\nlet c = 'a'; let s: &'static str = r#\"unsafe\"#;\n/* static mut */ let y = 1;\n";
        let m = mask_source(src);
        assert!(!m.contains("Ordering"), "{m}");
        assert!(!m.contains("unsafe"), "{m}");
        assert!(!m.contains("static mut"), "{m}");
        assert!(m.contains("&'static str"), "lifetime survives: {m}");
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_ordering_is_flagged_outside_allowlist() {
        let src = "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n";
        let f = lint_source("crates/core/src/new_file.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-raw-ordering");
        // collector.rs is ordering-allowlisted (it still trips the
        // missing-pause-span markers on this synthetic source).
        assert!(lint_source("crates/core/src/collector.rs", src)
            .iter()
            .all(|f| f.rule == "missing-pause-span"));
        assert!(lint_source("crates/membar/src/lib.rs", src).is_empty());
    }

    #[test]
    fn raw_fence_is_flagged_outside_membar() {
        let src = "use std::sync::atomic::fence;\nfn f() { std::sync::atomic::fence(x); }\n";
        let f = lint_source("crates/core/src/tracing.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "no-raw-fence"));
        assert!(lint_source("crates/membar/src/lib.rs", src).is_empty());
    }

    #[test]
    fn membar_fence_wrappers_are_fine() {
        let src = "use mcgc_membar::release_fence;\nfn f() { release_fence(FenceKind::PacketPublish); }\n";
        assert!(lint_source("crates/packets/src/pool.rs", src).is_empty());
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_safety_comment_clears_it() {
        let bare = "fn f() { unsafe { g() } }\n";
        let f = lint_source("crates/heap/src/x.rs", bare);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "undocumented-unsafe");

        let commented = "// SAFETY: g has no preconditions here.\nfn f() { unsafe { g() } }\n";
        assert!(lint_source("crates/heap/src/x.rs", commented).is_empty());

        let trailing = "let v = unsafe { g() }; // SAFETY: see above.\n";
        assert!(lint_source("crates/heap/src/x.rs", trailing).is_empty());

        let doc = "/// Frees it.\n///\n/// # Safety\n/// Caller must own `p`.\npub unsafe fn free(p: *mut u8) {}\n";
        assert!(lint_source("crates/heap/src/x.rs", doc).is_empty());

        let in_string = "let s = \"unsafe\";\n";
        assert!(lint_source("crates/heap/src/x.rs", in_string).is_empty());
    }

    #[test]
    fn fault_sites_must_be_registered_literals() {
        let ok = "if mcgc_fault::point!(\"heap.refill\") { return false; }\n";
        assert!(lint_source("crates/heap/src/heap.rs", ok).is_empty());

        let typo = "if mcgc_fault::point!(\"heap.refil\") { return false; }\n";
        let f = lint_source("crates/heap/src/heap.rs", typo);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unknown-fault-site");
        assert!(f[0].message.contains("heap.refil"), "{}", f[0].message);

        let non_literal = "if mcgc_fault::point!(SITE_NAME) { return false; }\n";
        let f = lint_source("crates/heap/src/heap.rs", non_literal);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unknown-fault-site");
        assert!(f[0].message.contains("string-literal"), "{}", f[0].message);

        let prose = "// mark the branch with a point!(\"anything\") site\n";
        assert!(lint_source("crates/heap/src/heap.rs", prose).is_empty());
    }

    #[test]
    fn span_kinds_must_be_in_catalog() {
        let ok = "let _g = rec.span(SpanKind::PauseDrain, 0);\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());

        let assoc = "for k in SpanKind::ALL { let _ = SpanKind::from_u8(k as u8); }\n";
        assert!(lint_source("crates/core/src/x.rs", assoc).is_empty());

        let typo = "let _g = rec.span(SpanKind::PauseDrian, 0);\n";
        let f = lint_source("crates/core/src/x.rs", typo);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unknown-span-kind");
        assert!(f[0].message.contains("PauseDrian"), "{}", f[0].message);

        let prose = "// imagine a SpanKind::MadeUpPhase here\n";
        assert!(lint_source("crates/core/src/x.rs", prose).is_empty());
    }

    #[test]
    fn collector_must_guard_every_pause_phase() {
        // A collector.rs that opens only some of the phase guards is
        // flagged once per missing phase.
        let partial = "fn run_pause() { let _a = s.span(SpanKind::PauseRetire, 0); \
                       let _b = s.span(SpanKind::PauseDrain, 0); }\n";
        let f = lint_source("crates/core/src/collector.rs", partial);
        let missing: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "missing-pause-span")
            .collect();
        assert_eq!(missing.len(), 6, "{missing:?}");
        assert!(missing.iter().any(|f| f.message.contains("PauseSweep")));

        // Any other file is exempt from the marker requirement.
        assert!(lint_source("crates/core/src/other.rs", partial).is_empty());
    }

    #[test]
    fn bucket_variants_confined_to_session_run() {
        let ok = "fn f(s: &Session) { s.run(Bucket::Drain, |w| work(w)); }\n";
        assert!(lint_source("crates/core/src/collector.rs", ok)
            .iter()
            .all(|f| f.rule == "missing-pause-span"));

        // Hand-rolled dispatch keyed on a bucket variant is flagged:
        // open/close conditions flip only via the scheduler API.
        let bad = "fn f() { if bucket == Bucket::Drain { spawn_workers(); } }\n";
        let f = lint_source("crates/core/src/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "bucket-outside-scheduler");
        assert!(f[0].message.contains("Bucket::Drain"), "{}", f[0].message);

        // Associated items are not variant-shaped and pass through.
        let assoc = "for i in 0..Bucket::COUNT { let b = Bucket::from_index(i); }\n";
        assert!(lint_source("crates/core/src/x.rs", assoc).is_empty());

        // The scheduler itself (impl blocks, tests) is exempt.
        assert!(lint_source("crates/core/src/scheduler.rs", bad).is_empty());

        // Prose and strings never trip the rule.
        let prose = "// match on Bucket::Straggler here would be wrong\n";
        assert!(lint_source("crates/core/src/x.rs", prose).is_empty());
    }

    #[test]
    fn static_mut_is_flagged() {
        let src = "static mut COUNTER: usize = 0;\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-static-mut");
    }

    #[test]
    fn masking_survives_adversarial_literals() {
        // Raw string with hashes whose body contains a quote-hash that
        // must NOT close it early.
        let m = mask_source("let s = r##\"a \"# b\"##; unsafe { g() }\n");
        assert!(!m.contains("a \"# b"), "{m}");
        assert!(m.contains("unsafe"), "code after the literal survives: {m}");

        // Raw string containing comment openers and `unsafe`.
        let src = "let s = r\"// */ unsafe\"; static mut X: u8 = 0;\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-static-mut");

        // Block comment containing a raw-string opener: the comment must
        // end at `*/`, not be swallowed by a phantom string.
        let src = "/* r#\" */ static mut X: u8 = 0;\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-static-mut");

        // Nested block comments close at the matching depth.
        let src = "/* a /* b */ c */ static mut X: u8 = 0;\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");

        // A line comment with an unterminated quote ends at the newline.
        let src = "// \"unterminated\nstatic mut X: u8 = 0;\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");

        // A char literal holding a double quote must not open a string.
        let src = "let q = '\"'; let s = \"unsafe\";\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());

        // Byte raw strings mask like raw strings.
        let src = "let b = br#\"unsafe // Ordering::SeqCst\"#;\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());

        // `\\` before the closing quote is an escaped backslash, not an
        // escaped quote: the string ends and the `unsafe` after is code.
        let src = "let s = \"a\\\\\"; unsafe { g() }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "undocumented-unsafe");

        // Multi-line raw strings keep the line count aligned.
        let src = "let s = r#\"one\ntwo unsafe\"#;\nlet x = 1;\n";
        let m = mask_source(src);
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(!m.contains("unsafe"), "{m}");
    }

    #[test]
    fn condvar_wait_requires_a_predicate_loop() {
        let good = "fn f() {\n    while p {\n        cv.wait(&mut g);\n    }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", good).is_empty());

        let good_loop =
            "fn f() {\n    loop {\n        if c {\n            break;\n        }\n        cv.wait(&mut g);\n    }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", good_loop).is_empty());

        // A condition split across lines still counts as a loop opener.
        let split =
            "fn f() {\n    while p\n        && q\n    {\n        cv.wait(&mut g);\n    }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", split).is_empty());

        let bad_if = "fn f() {\n    if p {\n        cv.wait(&mut g);\n    }\n}\n";
        let f = lint_source("crates/core/src/x.rs", bad_if);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "condvar-wait-not-in-loop");
        assert_eq!(f[0].line, 3);

        let bare = "fn f() {\n    cv.wait(&mut g);\n}\n";
        let f = lint_source("crates/core/src/x.rs", bare);
        assert_eq!(f.len(), 1, "{f:?}");

        // Timed waits are exempt: their callers poll.
        let timed = "fn f() {\n    cv.wait_for(&mut g, d);\n    cv.wait_timeout(g, d);\n}\n";
        assert!(lint_source("crates/core/src/x.rs", timed).is_empty());

        // The wrapper implementation itself is exempt.
        assert!(lint_source("crates/membar/src/sync.rs", bare).is_empty());
    }

    #[test]
    fn seqlock_sections_are_bracketed_pure_and_revalidated() {
        let good = "fn r() -> Option<u64> {\n\
                    // seqlock-read: begin\n\
                    let a = slot.val.load(Ordering::Relaxed);\n\
                    // seqlock-read: end\n\
                    if slot.seq.load(Ordering::Acquire) != want {\n\
                        return None;\n\
                    }\n\
                    Some(a)\n\
                    }\n";
        assert!(
            lint_source("crates/telemetry/src/ring.rs", good).is_empty(),
            "{:?}",
            lint_source("crates/telemetry/src/ring.rs", good)
        );

        // A store inside the window is flagged.
        let store = good.replace(
            "let a = slot.val.load(Ordering::Relaxed);",
            "slot.val.store(0, Ordering::Relaxed);",
        );
        let f = lint_source("crates/telemetry/src/ring.rs", &store);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "seqlock-read-section");
        assert!(f[0].message.contains("a store"), "{}", f[0].message);

        // So is an early return on the speculative copy.
        let ret = good.replace(
            "let a = slot.val.load(Ordering::Relaxed);",
            "if bad { return None; }",
        );
        let f = lint_source("crates/telemetry/src/ring.rs", &ret);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("a return"), "{}", f[0].message);

        // A section with no revalidating load after it is flagged.
        let unvalidated = "fn r() {\n\
                           // seqlock-read: begin\n\
                           let a = slot.val.load(Ordering::Relaxed);\n\
                           // seqlock-read: end\n\
                           f(a);\n\
                           g(a);\n\
                           h(a);\n\
                           i(a);\n\
                           }\n";
        let f = lint_source("crates/telemetry/src/ring.rs", unvalidated);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("revalidating"), "{}", f[0].message);

        // Unbalanced markers are findings in their own right.
        let dangling_end = "fn r() {\n// seqlock-read: end\n}\n";
        let f = lint_source("crates/core/src/x.rs", dangling_end);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("without a matching begin"));

        let never_ended = "fn r() {\n// seqlock-read: begin\nlet a = 1;\n}\n";
        let f = lint_source("crates/core/src/x.rs", never_ended);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never ended"));

        // The ring files must keep at least one marked section.
        let markerless = "fn r() {}\n";
        for file in SEQLOCK_FILES {
            let f = lint_source(file, markerless);
            assert_eq!(f.len(), 1, "{file}: {f:?}");
            assert_eq!(f[0].rule, "seqlock-read-section");
            assert!(f[0].message.contains("lost its"), "{}", f[0].message);
        }
        // Other files aren't required to have sections.
        assert!(lint_source("crates/core/src/x.rs", markerless).is_empty());
    }

    #[test]
    fn modeled_relaxed_atomics_must_cite_their_model() {
        let bare = "fn f(pool: &P) {\n    pool.count.fetch_add(1, Ordering::Relaxed);\n}\n";
        let f = lint_source("crates/packets/src/pool.rs", bare);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unmodeled-relaxed");
        assert!(f[0].message.contains("pool_model"), "{}", f[0].message);

        let cited = "fn f(pool: &P) {\n    // MODEL: pool_model — §4.3 counter order.\n    pool.count.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/packets/src/pool.rs", cited).is_empty());

        let trailing =
            "fn f(pool: &P) {\n    pool.count.fetch_add(1, Ordering::Relaxed); // MODEL: pool_model\n}\n";
        assert!(lint_source("crates/packets/src/pool.rs", trailing).is_empty());

        // One comment covers a contiguous run of modeled lines.
        let run = "fn f(p: &P) {\n\
                   // MODEL: pool_model — racy snapshot.\n\
                   let a = p.count.load(Ordering::Relaxed);\n\
                   let b = q.count.load(Ordering::Relaxed);\n\
                   }\n";
        assert!(lint_source("crates/packets/src/pool.rs", run).is_empty());

        // ...but a non-modeled code line breaks the chain.
        let broken = "fn f(p: &P) {\n\
                      // MODEL: pool_model\n\
                      let a = p.count.load(Ordering::Relaxed);\n\
                      let x = 1;\n\
                      let b = q.count.load(Ordering::Relaxed);\n\
                      }\n";
        let f = lint_source("crates/packets/src/pool.rs", broken);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);

        // Idents only match whole names: `next_checkout` is not `next`,
        // and other files' atomics aren't in pool.rs's table.
        let other = "fn f(p: &P) {\n    p.next_checkout.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/packets/src/pool.rs", other).is_empty());
        let elsewhere = "fn f(p: &P) {\n    p.count.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/heap/src/heap.rs", elsewhere).is_empty());

        // Non-Relaxed orderings on modeled atomics need no citation.
        let acq = "fn f(s: &S) -> u64 {\n    s.seq.load(Ordering::Acquire)\n}\n";
        let f = lint_source("crates/telemetry/src/ring.rs", acq);
        assert!(f.iter().all(|f| f.rule == "seqlock-read-section"), "{f:?}");
    }

    #[test]
    fn the_real_tree_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_tree(&root).expect("walk workspace");
        assert!(
            findings.is_empty(),
            "lint findings in tree:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
