//! CLI entry point: lints the workspace tree and exits nonzero on any
//! finding. Run from the workspace root (`cargo run -p mcgc-lint`), or
//! pass an explicit root directory as the first argument.

use std::path::PathBuf;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match mcgc_lint::lint_tree(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("mcgc-lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("mcgc-lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(err) => {
            eprintln!("mcgc-lint: walk failed: {err}");
            std::process::exit(2);
        }
    }
}
