//! The collector: phase control, safepoints, kickoff, and the parallel
//! stop-the-world pause (paper §2).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcgc_heap::{Heap, LazySweep, ObjectRef, ParallelSweep, SweepSource};
use mcgc_membar::sync::{Condvar, Mutex};
use mcgc_packets::{PacketPool, WorkBuffer};
use mcgc_telemetry::{SpanGuard, SpanKind, TrackId};

use crate::config::{CollectorMode, GcConfig, SweepMode};
use crate::mutator::Mutator;
use crate::pacing::Pacer;
use crate::roots::{MutatorShared, StwSync};
use crate::scheduler::{Bucket, Scheduler, Session};
use crate::stats::{CycleStats, GcLog, Trigger};
use crate::telemetry::GcTelemetry;

/// Collector phase as seen by mutators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// No collection in progress.
    Idle,
    /// The concurrent (tracing) phase is active.
    Concurrent,
}

pub(crate) const PHASE_IDLE: u8 = 0;
pub(crate) const PHASE_CONCURRENT: u8 = 1;

/// Errors surfaced to mutators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GcError {
    /// The heap cannot satisfy the allocation even after the full
    /// escalation ladder (lazy-sweep progress, finishing the concurrent
    /// phase, full stop-the-world collections, heap growth, one bounded
    /// backpressure stall) has run. Carries a postmortem snapshot: the
    /// segment map and how far each ladder rung got.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested_bytes: u64,
        /// Heap occupancy when the ladder gave up, in permille
        /// (0..=1000), of *committed* granules.
        occupancy_permille: u16,
        /// Heap segments committed when the ladder gave up.
        segments_committed: u16,
        /// Hard-limit segment capacity ([`HeapConfig::max_heap_bytes`]).
        ///
        /// [`HeapConfig::max_heap_bytes`]: mcgc_heap::HeapConfig::max_heap_bytes
        segments_max: u16,
        /// Bitmask of committed segments (bit `i` = segment `i`; the
        /// first 64).
        segment_map: u64,
        /// Slow-path iterations this allocation request took.
        ladder_iterations: u32,
        /// Lazy-sweep rungs that ran for this request.
        lazy_sweeps: u32,
        /// Full collections that ran for this request.
        full_collections: u32,
        /// Grow rungs that committed a segment for this request.
        grows: u32,
        /// Whether the bounded backpressure stall ran (and expired)
        /// before this error was surfaced.
        stalled: bool,
    },
}

impl std::fmt::Display for GcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcError::OutOfMemory {
                requested_bytes,
                occupancy_permille,
                segments_committed,
                segments_max,
                segment_map,
                ladder_iterations,
                lazy_sweeps,
                full_collections,
                grows,
                stalled,
            } => write!(
                f,
                "out of memory after full collection: requested {requested_bytes} B \
                 with heap {}.{}% occupied; {segments_committed}/{segments_max} segments \
                 committed (map {segment_map:#x}); ladder: {ladder_iterations} iterations, \
                 {lazy_sweeps} lazy sweeps, {full_collections} full collections, \
                 {grows} grows, stalled: {stalled}",
                occupancy_permille / 10,
                occupancy_permille % 10
            ),
        }
    }
}

impl std::error::Error for GcError {}

impl From<mcgc_heap::AllocError> for GcError {
    fn from(e: mcgc_heap::AllocError) -> GcError {
        match e {
            mcgc_heap::AllocError::OutOfMemory {
                requested_bytes,
                occupancy_permille,
                segments_committed,
                segments_max,
                segment_map,
            } => GcError::OutOfMemory {
                requested_bytes,
                occupancy_permille,
                segments_committed,
                segments_max,
                segment_map,
                // Ladder context is unknown at the heap layer; the
                // mutator's escalation state fills these in via
                // `Escalation::final_error` when it owns the failure.
                ladder_iterations: 0,
                lazy_sweeps: 0,
                full_collections: 0,
                grows: 0,
                stalled: false,
            },
        }
    }
}

/// Per-cycle atomic work counters (reset at cycle initialization).
#[derive(Debug, Default)]
pub(crate) struct CycleCounters {
    pub traced_mutator: AtomicU64,
    pub traced_background: AtomicU64,
    pub traced_stw: AtomicU64,
    pub card_scanned_bytes: AtomicU64,
    pub cards_cleaned_conc: AtomicU64,
    pub cards_cleaned_stw: AtomicU64,
    pub cards_table_scanned: AtomicU64,
    pub handshakes: AtomicU64,
    pub deferred: AtomicU64,
    pub overflows: AtomicU64,
    pub root_slots: AtomicU64,
}

impl CycleCounters {
    fn reset(&self) {
        for c in [
            &self.traced_mutator,
            &self.traced_background,
            &self.traced_stw,
            &self.card_scanned_bytes,
            &self.cards_cleaned_conc,
            &self.cards_cleaned_stw,
            &self.cards_table_scanned,
            &self.handshakes,
            &self.deferred,
            &self.overflows,
            &self.root_slots,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Total bytes traced concurrently (`T` in the progress formula).
    pub fn traced_concurrent(&self) -> u64 {
        self.traced_mutator.load(Ordering::Relaxed) + self.traced_background.load(Ordering::Relaxed)
    }
}

/// Concurrent card-cleaning progress (paper §2.1, §5.3).
#[derive(Debug, Default)]
pub(crate) struct CardCleanState {
    /// Current cleaning pass (0-based; `config.card_clean_passes` total).
    pub pass: usize,
    /// Next card index the snapshot scan will examine.
    pub cursor: usize,
    /// Registered dirty cards awaiting cleaning (§5.3 step 1 output).
    pub registry: VecDeque<usize>,
    /// All configured passes completed.
    pub done: bool,
}

impl CardCleanState {
    fn reset(&mut self) {
        self.pass = 0;
        self.cursor = 0;
        self.registry.clear();
        self.done = false;
    }
}

/// Tracing-increment accumulator for Table 4's tracing factor/fairness.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct IncrementAccum {
    pub n: u64,
    pub factor_sum: f64,
    pub factor_sq_sum: f64,
}

#[derive(Debug)]
struct Timeline {
    last_cycle_end: Instant,
    kickoff: Option<Instant>,
    alloc_at_last_end: u64,
    alloc_at_kickoff: u64,
}

#[derive(Debug)]
pub(crate) struct BgWindow {
    pub(crate) at: Instant,
    pub(crate) bg_traced: u64,
    pub(crate) allocated: u64,
}

/// The garbage collector: the paper's parallel, incremental, mostly
/// concurrent mark-sweep (CGC), or the stop-the-world baseline (STW),
/// selected by [`GcConfig::mode`].
///
/// Application threads register via [`Gc::register_mutator`] and perform
/// all heap access through their [`Mutator`] handle; the handle's
/// allocation slow path is where kickoff checks, incremental tracing, and
/// collections happen, exactly as in the paper.
pub struct Gc {
    pub(crate) config: GcConfig,
    pub(crate) heap: Heap,
    pub(crate) pool: PacketPool<ObjectRef>,
    pub(crate) pacer: Mutex<Pacer>,

    phase: AtomicU8,
    cycle: AtomicU64,

    // stop-the-world rendezvous
    pub(crate) stop_requested: AtomicBool,
    stw: Mutex<StwSync>,
    stw_cv: Condvar,
    coordinator: Mutex<()>,

    pub(crate) mutators: Mutex<Vec<Arc<MutatorShared>>>,
    next_mutator_id: AtomicU64,
    pub(crate) global_roots: Mutex<Vec<u64>>,
    pub(crate) global_scanned_cycle: AtomicU64,

    pub(crate) counters: CycleCounters,
    pub(crate) card_state: Mutex<CardCleanState>,
    pub(crate) increments: Mutex<IncrementAccum>,

    timeline: Mutex<Timeline>,
    pub(crate) bg_window: Mutex<BgWindow>,

    /// Set when the previous pause pre-cleared the mark bits and card
    /// table (only possible with eager sweep; lazy sweep still needs the
    /// mark bits after the pause). The sweep-epoch plan itself lives on
    /// the heap ([`Heap::install_lazy_plan`]) so refill paths reach it
    /// without a collector dependency.
    bits_pre_cleared: AtomicBool,
    /// Straggler-fence accounting accumulated since the last pause: the
    /// fence runs *before* the world stops (kickoff or pre-pause), so its
    /// cost is stashed here and absorbed into the next `CycleStats`.
    straggler_ns: AtomicU64,
    straggler_chunks: AtomicU64,

    log: Mutex<GcLog>,
    pub(crate) tel: GcTelemetry,
    /// Flight-recorder track for cycle/pause-phase spans. Claimed once at
    /// construction: whichever thread wins the coordinator role records
    /// onto this one timeline, so pause phases from different coordinator
    /// threads still render as one track.
    coord_track: Option<TrackId>,
    /// Flight-recorder timestamp of the current cycle's kickoff, for the
    /// cycle-level span recorded when the pause ends.
    cycle_begin_ns: AtomicU64,
    /// The unified GC scheduler: one persistent worker pool serving
    /// pause sessions (work buckets claimed with a single wakeup per
    /// pause), the §3 background tracer duties, and the background
    /// sweeper — no pause phase or concurrent duty ever pays a
    /// `thread::spawn` or a per-phase barrier.
    sched: Scheduler,
    pub(crate) shutdown_flag: AtomicBool,

    /// §5.3 handshake epoch: bumped by the collector when a card snapshot
    /// needs every mutator to fence; mutators ack by storing the epoch
    /// into their `handshake_seen` at the next safepoint poll.
    pub(crate) handshake_epoch: AtomicU64,
    /// Scheduler workers currently carrying the background tracer duty
    /// (a `bg.death` fault or shutdown decrements it; watched by
    /// `gc_top`).
    pub(crate) bg_alive: AtomicUsize,
}

impl Gc {
    /// Creates a collector and starts its scheduler pool (which carries
    /// the background tracer duties in concurrent mode). Call
    /// [`Gc::shutdown`] when done: the pool threads hold `Arc<Gc>`
    /// references.
    pub fn new(config: GcConfig) -> Arc<Gc> {
        let heap = Heap::new(config.heap);
        let pacer = Pacer::new(&config, heap.total_bytes());
        let now = Instant::now();
        let tel = GcTelemetry::new(mcgc_telemetry::DEFAULT_RING_CAPACITY, config.stw_workers);
        let spans = Arc::clone(tel.hub.spans());
        let coord_track = spans.named_track("gc coordinator");
        heap.free_list().attach_recorder(Arc::clone(&spans));
        let sched = Scheduler::new(config.stw_workers, config.mode, config.background_threads);
        sched.attach_spans(spans);
        let gc = Arc::new(Gc {
            pool: PacketPool::new(config.pool),
            pacer: Mutex::new(pacer),
            phase: AtomicU8::new(PHASE_IDLE),
            cycle: AtomicU64::new(0),
            stop_requested: AtomicBool::new(false),
            stw: Mutex::new(StwSync::default()),
            stw_cv: Condvar::new(),
            coordinator: Mutex::new(()),
            mutators: Mutex::new(Vec::new()),
            next_mutator_id: AtomicU64::new(0),
            global_roots: Mutex::new(Vec::new()),
            global_scanned_cycle: AtomicU64::new(0),
            counters: CycleCounters::default(),
            card_state: Mutex::new(CardCleanState::default()),
            increments: Mutex::new(IncrementAccum::default()),
            timeline: Mutex::new(Timeline {
                last_cycle_end: now,
                kickoff: None,
                alloc_at_last_end: 0,
                alloc_at_kickoff: 0,
            }),
            bg_window: Mutex::new(BgWindow {
                at: now,
                bg_traced: 0,
                allocated: 0,
            }),
            bits_pre_cleared: AtomicBool::new(false),
            straggler_ns: AtomicU64::new(0),
            straggler_chunks: AtomicU64::new(0),
            log: Mutex::new(GcLog::default()),
            tel,
            coord_track,
            cycle_begin_ns: AtomicU64::new(0),
            sched,
            shutdown_flag: AtomicBool::new(false),
            handshake_epoch: AtomicU64::new(0),
            bg_alive: AtomicUsize::new(0),
            heap,
            config,
        });
        gc.sched.start(&gc);
        gc
    }

    /// Stops the scheduler pool (pause workers and background tracer
    /// duties alike) and waits for it. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown_flag.store(true, Ordering::SeqCst);
        self.sched.shutdown();
    }

    /// The unified GC scheduler.
    pub(crate) fn sched(&self) -> &Scheduler {
        &self.sched
    }

    /// The collector configuration.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    /// The heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Work-packet pool statistics.
    pub fn pool_stats(&self) -> mcgc_packets::PoolStats {
        self.pool.stats()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        if self.phase.load(Ordering::Acquire) == PHASE_CONCURRENT {
            Phase::Concurrent
        } else {
            Phase::Idle
        }
    }

    pub(crate) fn in_concurrent_phase(&self) -> bool {
        self.phase.load(Ordering::Acquire) == PHASE_CONCURRENT
    }

    /// Current cycle number (0 before the first collection).
    pub fn cycle(&self) -> u64 {
        self.cycle.load(Ordering::Relaxed)
    }

    /// A clone of the completed-cycle log.
    pub fn log(&self) -> GcLog {
        self.log.lock().clone()
    }

    /// The live telemetry hub: phase-event ring, pause/increment
    /// histograms, MMU tracker, and the metrics registry. Queryable from
    /// any thread mid-run.
    pub fn telemetry(&self) -> &mcgc_telemetry::Telemetry {
        &self.tel.hub
    }

    /// Opens a flight-recorder span on the coordinator track (the one
    /// timeline carrying cycle and pause-phase spans). `None` when the
    /// recorder is disabled or out of track slots.
    fn pause_span(&self, kind: SpanKind, arg: u64) -> Option<SpanGuard<'_>> {
        let rec = self.tel.hub.spans();
        if !rec.is_enabled() {
            return None;
        }
        Some(rec.span_on(self.coord_track?, kind, arg))
    }

    /// Refreshes the pull-style gauges (phase, heap occupancy, pacer
    /// `K0`/`L`/`M`/`B` estimates, packet sub-pool occupancy) from live
    /// collector state. Call before reading or exporting the registry —
    /// `gc_top` does so once a second.
    pub fn telemetry_sample(&self) {
        let estimates = self.pacer.lock().estimates();
        let pool = self.pool.stats();
        self.tel.refresh_gauges(
            self.in_concurrent_phase(),
            self.cycle(),
            self.heap.occupancy(),
            self.heap.free_bytes() as u64,
            estimates,
            &pool,
            self.pool.occupancy(),
            self.bg_alive.load(Ordering::Relaxed) as u64,
            &self.heap.alloc_stats(),
            &self.heap.segment_stats(),
            &self.heap.sweep_counters(),
        );
        self.tel.refresh_sched(&self.sched);
        self.tel.refresh_postmortem();
    }

    /// Runs the heap verifier (tests/debugging). Must be called while no
    /// mutators run, e.g. right after creation or with all threads idle.
    pub fn verify_heap(&self) -> Vec<mcgc_heap::Violation> {
        mcgc_heap::verify(&self.heap, false)
    }

    /// Builds the final OOM error for a failed request, capturing the
    /// heap occupancy at the moment the escalation ladder gave up.
    pub(crate) fn oom(&self, requested_bytes: u64) -> GcError {
        GcError::from(self.heap.oom_error(requested_bytes))
    }

    // ------------------------------------------------------------------
    // verify-gc audits
    // ------------------------------------------------------------------

    /// Runs the full soundness audit: the structural verifier plus the
    /// mostly-concurrent tri-color invariant ("every unmarked object
    /// referenced from a marked object is promised to be revisited — its
    /// parent is grey in a work packet, or its parent's card is dirty or
    /// registered for rescanning"). Panics with a report on violation.
    ///
    /// Must be called at a quiescent point: no mutators running, no
    /// packets held. Always available; the `verify-gc` cargo feature
    /// additionally runs it automatically inside every pause and at
    /// single-threaded increment boundaries.
    pub fn audit_now(&self) {
        self.audit_concurrent_state("explicit", true);
    }

    /// The audit body for points where concurrent-marking state (packet
    /// entries, dirty cards, the cleaning registry) is live and excuses
    /// unfinished edges. `structural` additionally runs [`verify_heap`]
    /// — only sound when every allocation cache has been retired
    /// (mark-and-push marks objects whose allocation bits are still
    /// pending, so mark⊆alloc holds only after retirement).
    fn audit_concurrent_state(&self, site: &str, structural: bool) {
        use std::collections::HashSet;
        // The grey set: marked-but-unscanned objects sitting in work
        // packets.
        // SAFETY: the caller is at a quiescent point (world stopped, or
        // the only thread touching the pool), so no packet is held or
        // mutated during the walk.
        let grey: HashSet<usize> = unsafe { self.pool.snapshot_entries() }
            .into_iter()
            .map(|r| r.index())
            .collect();
        // Cards pulled out of the card table by §5.3 snapshot-to-clean
        // but not yet rescanned still cover their objects.
        let registry: HashSet<usize> = self.card_state.lock().registry.iter().copied().collect();
        let cards = self.heap.cards();
        let mut v = if structural {
            mcgc_heap::verify(&self.heap, false)
        } else {
            Vec::new()
        };
        v.extend(mcgc_heap::verify_tricolor(
            &self.heap,
            |g| grey.contains(&g),
            |g| {
                let card = g / mcgc_heap::GRANULES_PER_CARD;
                cards.is_dirty(card) || registry.contains(&card)
            },
        ));
        Self::audit_report(site, v);
    }

    /// The exact audit for the end of marking: the pool is drained, the
    /// card table and registry are clean, so marked objects may only
    /// reference marked objects — no excuses.
    #[cfg(feature = "verify-gc")]
    fn audit_strict(&self, site: &str) {
        let mut v = mcgc_heap::verify(&self.heap, false);
        v.extend(mcgc_heap::verify_tricolor(&self.heap, |_| false, |_| false));
        Self::audit_report(site, v);
    }

    /// Tri-color audit at a mutator increment boundary. Only runs in the
    /// single-threaded configuration (one registered mutator, no
    /// background tracers): anything else has concurrent heap walkers
    /// and the audit itself would race.
    #[cfg(feature = "verify-gc")]
    pub(crate) fn audit_increment_boundary(&self) {
        if self.config.background_threads != 0 || self.mutators.lock().len() != 1 {
            return;
        }
        self.audit_concurrent_state("increment-boundary", false);
    }

    fn audit_report(site: &str, v: Vec<mcgc_heap::Violation>) {
        if v.is_empty() {
            return;
        }
        let mut msg = format!(
            "verify-gc audit failed at {site} with {} violations:\n",
            v.len()
        );
        for violation in v.iter().take(20) {
            msg.push_str(&format!("  - {violation}\n"));
        }
        panic!("{msg}");
    }

    // ------------------------------------------------------------------
    // global roots
    // ------------------------------------------------------------------

    /// Pushes a global root slot (process-wide, scanned every cycle);
    /// returns its index.
    pub fn global_root_push(&self, value: Option<ObjectRef>) -> usize {
        let mut roots = self.global_roots.lock();
        roots.push(ObjectRef::encode(value));
        roots.len() - 1
    }

    /// Overwrites global root slot `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn global_root_set(&self, idx: usize, value: Option<ObjectRef>) {
        self.global_roots.lock()[idx] = ObjectRef::encode(value);
    }

    /// Reads global root slot `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn global_root_get(&self, idx: usize) -> Option<ObjectRef> {
        ObjectRef::decode(self.global_roots.lock()[idx])
    }

    // ------------------------------------------------------------------
    // registration
    // ------------------------------------------------------------------

    /// Registers the calling thread as a mutator.
    pub fn register_mutator(self: &Arc<Self>) -> Mutator {
        let id = self.next_mutator_id.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(MutatorShared::new(id));
        // Start already caught up with the handshake epoch, so a freshly
        // registered thread cannot stall an in-flight card handshake.
        shared.handshake_seen.store(
            self.handshake_epoch.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        {
            let mut g = self.stw.lock();
            // A thread arriving mid-pause waits for the world to resume.
            while g.stop {
                self.stw_cv.wait(&mut g);
            }
            g.registered += 1;
            self.mutators.lock().push(Arc::clone(&shared));
        }
        Mutator::new(Arc::clone(self), shared)
    }

    pub(crate) fn deregister_mutator(&self, shared: &Arc<MutatorShared>) {
        // Retire the cache first (heap ops, done while still "unsafe").
        self.heap.retire_cache(&mut shared.cache.lock());
        let mut g = self.stw.lock();
        self.mutators.lock().retain(|m| m.id != shared.id);
        g.registered -= 1;
        self.stw_cv.notify_all();
    }

    /// Registers a collector-internal thread (background tracer) in the
    /// rendezvous protocol.
    pub(crate) fn register_thread(&self) {
        let mut g = self.stw.lock();
        while g.stop {
            self.stw_cv.wait(&mut g);
        }
        g.registered += 1;
    }

    pub(crate) fn deregister_thread(&self) {
        let mut g = self.stw.lock();
        g.registered -= 1;
        self.stw_cv.notify_all();
    }

    // ------------------------------------------------------------------
    // safepoints
    // ------------------------------------------------------------------

    /// Marks the calling registered thread *safe* (parked, blocked, or
    /// waiting). The collector may stop the world while the thread is
    /// safe; the thread must not touch the heap until [`Gc::exit_safe`].
    pub(crate) fn enter_safe(&self) {
        let mut g = self.stw.lock();
        g.safe += 1;
        self.stw_cv.notify_all();
    }

    /// Leaves the safe state, waiting out any stop-the-world pause.
    pub(crate) fn exit_safe(&self) {
        let mut g = self.stw.lock();
        while g.stop {
            self.stw_cv.wait(&mut g);
        }
        g.safe -= 1;
    }

    /// Safepoint poll: parks for the duration of a pause if one is
    /// requested. Cheap when not.
    #[inline]
    pub(crate) fn poll_safepoint(&self) {
        if self.stop_requested.load(Ordering::Relaxed) {
            self.enter_safe();
            self.exit_safe();
        }
    }

    /// §5.3 handshake ack, piggybacked on the safepoint poll: when the
    /// collector has advanced the handshake epoch, the mutator fences
    /// (ordering its preceding slot stores against the card snapshot)
    /// and publishes the epoch it has caught up to.
    #[inline]
    pub(crate) fn poll_handshake(&self, m: &MutatorShared) {
        let epoch = self.handshake_epoch.load(Ordering::Acquire);
        if m.handshake_seen.load(Ordering::Relaxed) == epoch {
            return;
        }
        // Fault: the mutator "loses" the ack — the collector-side timeout
        // must force completion instead.
        if mcgc_fault::point!("handshake.delay") {
            return;
        }
        mcgc_membar::full_fence(mcgc_membar::FenceKind::CardHandshake);
        m.handshake_seen.store(epoch, Ordering::Release);
    }

    /// Stops the world: sets the stop flag and waits until every *other*
    /// registered thread is safe. Caller must hold the coordinator lock
    /// and be a registered thread itself.
    fn stop_world(&self) {
        let mut g = self.stw.lock();
        g.stop = true;
        self.stop_requested.store(true, Ordering::SeqCst);
        while g.safe + 1 < g.registered {
            self.stw_cv.wait(&mut g);
        }
    }

    /// Resumes the world after a pause.
    fn resume_world(&self) {
        let mut g = self.stw.lock();
        g.stop = false;
        self.stop_requested.store(false, Ordering::SeqCst);
        self.stw_cv.notify_all();
    }

    // ------------------------------------------------------------------
    // cycle control
    // ------------------------------------------------------------------

    /// Whether used (committed minus free) heap has crossed the
    /// [`GcConfig::soft_limit_bytes`] soft limit. `false` when the soft
    /// limit is disabled (0).
    ///
    /// [`GcConfig::soft_limit_bytes`]: crate::GcConfig::soft_limit_bytes
    pub(crate) fn soft_limit_pressure(&self) -> bool {
        let soft = self.config.soft_limit_bytes;
        soft > 0
            && self
                .heap
                .total_bytes()
                .saturating_sub(self.heap.free_bytes())
                >= soft
    }

    /// Kickoff check (§3.1): starts a new concurrent cycle when free
    /// memory drops below `(L + M) / K0`, or — independent of the pacer's
    /// schedule — when used memory crosses the soft limit (emergency
    /// kickoff: collect now so the grow rung and hard limit are never
    /// reached). Called from the allocation slow path; cheap when no
    /// cycle is due.
    pub(crate) fn maybe_kickoff(&self) {
        if self.config.mode != CollectorMode::Concurrent || self.in_concurrent_phase() {
            return;
        }
        let emergency = self.soft_limit_pressure();
        if !emergency && !self.pacer.lock().should_kickoff(self.kickoff_headroom()) {
            return;
        }
        // Block for the coordinator role (counted safe, so a concurrent
        // pause can proceed); blocking here also throttles allocators
        // that crossed the threshold while another thread initializes the
        // cycle, instead of letting them race through the remaining
        // headroom.
        self.enter_safe();
        let _guard = self.coordinator.lock();
        self.exit_safe();
        if self.in_concurrent_phase() {
            return;
        }
        // Lazy sweep from the previous cycle must finish before mark bits
        // are recycled.
        let _kick = self
            .tel
            .hub
            .spans()
            .span(SpanKind::KickoffDecision, self.heap.free_bytes() as u64);
        self.finish_lazy_sweep();
        let emergency = self.soft_limit_pressure();
        if !emergency
            && !self
                .pacer
                .lock()
                .should_kickoff(self.heap.free_bytes() as u64)
        {
            return; // finishing the sweep recovered enough space
        }
        if emergency {
            self.tel.on_emergency_kickoff();
        }
        self.begin_cycle_locked(true);
    }

    /// Free bytes as the kickoff formula should see them: actual free
    /// space plus an upper bound on what the in-flight sweep epoch still
    /// holds in unswept chunks. The epoch cleared the free list at
    /// install, so right after a lazy pause `free_bytes()` reads near
    /// zero — feeding that raw number to the pacer would kick off the
    /// next cycle immediately and turn every epoch into one big straggler
    /// fence, instead of letting sweep-on-refill and the background
    /// sweeper drain it off-pause.
    fn kickoff_headroom(&self) -> u64 {
        let pending = self.heap.lazy_plan().map_or(0, |p| {
            p.pending_granules(&self.heap) * mcgc_heap::GRANULE_BYTES
        });
        self.heap.free_bytes() as u64 + pending as u64
    }

    /// Initializes a new cycle (§2.1): clears the card table and mark
    /// bits, resets work state, wakes the background threads (they poll).
    /// Caller holds the coordinator lock; phase is Idle.
    ///
    /// When the previous pause already pre-cleared the bit vectors (eager
    /// sweep does this while the world is still stopped), initialization
    /// is near-instant — important because mutators keep allocating while
    /// this runs, and a slow init would eat the kickoff headroom.
    fn begin_cycle_locked(&self, kickoff: bool) {
        debug_assert!(!self.in_concurrent_phase());
        if self.bits_pre_cleared.swap(false, Ordering::AcqRel) {
            // Mark bits were pre-cleared at the previous pause; dropping
            // the (small) card table is all that is left (§2.1 "the card
            // table is cleared, the mark bits are cleared").
            self.heap.cards().clear_all();
        } else {
            self.heap.begin_cycle();
        }
        self.counters.reset();
        self.card_state.lock().reset();
        *self.increments.lock() = IncrementAccum::default();
        self.pool.reset_stats();
        let cycle = self.cycle.fetch_add(1, Ordering::Relaxed) + 1;
        self.tel
            .on_cycle_begin(cycle, self.heap.free_bytes() as u64);
        let spans = self.tel.hub.spans();
        spans.set_cycle(cycle as u32);
        self.cycle_begin_ns.store(spans.now_ns(), Ordering::Relaxed);
        {
            let mut t = self.timeline.lock();
            t.kickoff = Some(Instant::now());
            t.alloc_at_kickoff = self.heap.bytes_allocated();
        }
        {
            let mut w = self.bg_window.lock();
            w.at = Instant::now();
            w.bg_traced = 0;
            w.allocated = self.heap.bytes_allocated();
        }
        if kickoff && std::env::var("MCGC_TRACE_KICKOFF").is_ok() {
            let p = self.pacer.lock();
            eprintln!(
                "[kickoff] cycle={} free={}KB threshold={:.0}KB L={:.0}KB M={:.0}KB B={:.3}",
                self.cycle.load(Ordering::Relaxed),
                self.heap.free_bytes() / 1024,
                p.kickoff_threshold() / 1024.0,
                p.l_est() / 1024.0,
                p.m_est() / 1024.0,
                p.b_est(),
            );
        }
        self.phase.store(PHASE_CONCURRENT, Ordering::Release);
        // Wake the scheduler pool: the paper's background tracers exist
        // to soak up exactly the window that opens here, and on a busy
        // host that window can be shorter than their poll interval.
        self.sched.kickoff_wake();
    }

    /// Requests a collection: finishes the concurrent phase (or runs a
    /// full stop-the-world collection) and returns once the world has
    /// resumed. Any registered mutator thread may call this; concurrent
    /// requests coalesce.
    pub(crate) fn collect_inner(&self, trigger: Trigger) {
        self.collect_for_alloc(trigger, usize::MAX);
    }

    /// Like [`Gc::collect_inner`], but skips the pause if another
    /// thread's collection already produced a free extent of at least
    /// `min_contiguous` bytes (the failed request can now succeed).
    pub(crate) fn collect_for_alloc(&self, trigger: Trigger, min_contiguous: usize) {
        // Wait for the coordinator role while *safe*, so an in-progress
        // pause can proceed without us.
        self.enter_safe();
        let _guard = self.coordinator.lock();
        // We hold the coordinator lock: nobody else can set `stop`, so
        // this returns without blocking.
        self.exit_safe();

        if trigger == Trigger::AllocationFailure {
            if self.heap.largest_free_bytes() >= min_contiguous {
                // Another thread's collection already freed a usable run;
                // total free space is not the test (it may be fragments).
                return;
            }
            // A collection that raced ahead of us may have *just installed*
            // a sweep epoch — the free list is empty by design until its
            // chunks are swept, so "no usable run" does not mean another
            // pause is needed. Drain the epoch (bounded by its chunk
            // count) before concluding that; without this, an allocation
            // failure right after a lazy pause fences the brand-new epoch
            // and escalates to a full stop-the-world cycle while nearly
            // all of the heap's free space sits in unswept chunks.
            while self.heap.lazy_plan_active() {
                if !self.sweep_some_lazy() {
                    break;
                }
                if self.heap.largest_free_bytes() >= min_contiguous {
                    return;
                }
            }
        }
        if trigger == Trigger::ConcurrentDone && !self.in_concurrent_phase() {
            return; // someone already finished the phase
        }
        self.finish_lazy_sweep();
        self.stop_world();
        self.run_pause(trigger);
        self.resume_world();
    }

    /// The sweep epoch's **completion fence**: drives any chunks the
    /// previous cycle's refill and background sweeping left unswept
    /// (the *stragglers*) to completion before mark bits are recycled.
    /// Runs as a scheduler session of its own, *before* the world stops
    /// (called at kickoff and pre-pause under the coordinator lock), so
    /// the measured pause itself contains no bulk sweep — only this
    /// bounded, counted remainder. The cost is stashed and folded into
    /// the next `CycleStats` as `straggler_wall`/`straggler_chunks`.
    pub(crate) fn finish_lazy_sweep(&self) {
        let Some(plan) = self.heap.lazy_plan() else {
            return;
        };
        let before = plan.remaining_chunks() as u64;
        let t = Instant::now();
        if before > 0 {
            let session = self.sched.open_session();
            session.run(Bucket::Straggler, |w| {
                let mut swept = 0;
                while plan
                    .sweep_one_from(&self.heap, SweepSource::Straggler)
                    .is_some()
                {
                    swept += 1;
                }
                self.sched.add_claimed(w, swept);
            });
        }
        // Chunks claimed by a concurrent refill (or a stalled background
        // sweeper that already claimed) may still be in flight; each
        // claimer finishes its chunk promptly, so this wait is bounded.
        while !plan.is_done() {
            std::thread::yield_now();
        }
        let ns = t.elapsed().as_nanos() as u64;
        self.straggler_ns.fetch_add(ns, Ordering::Relaxed);
        self.straggler_chunks.fetch_add(before, Ordering::Relaxed);
        self.tel.on_straggler(before, ns);
        self.retire_lazy_plan();
    }

    /// Sweeps a few lazy chunks on behalf of an allocating mutator;
    /// returns true if progress was made (caller retries allocation).
    pub(crate) fn sweep_some_lazy(&self) -> bool {
        let Some(plan) = self.heap.lazy_plan() else {
            return false;
        };
        let mut progressed = false;
        for _ in 0..8 {
            if plan
                .sweep_one_from(&self.heap, SweepSource::Escalation)
                .is_none()
            {
                break;
            }
            progressed = true;
        }
        if plan.is_done() {
            self.retire_lazy_plan();
        }
        progressed
    }

    /// One background-sweeper quantum (the sweep-epoch analogue of the
    /// §3 background tracers): drains up to `bg_sweep_batch` chunks of
    /// the active epoch, or parks for this turn when the pacer sees
    /// mutator refills keeping up on their own. Returns true if chunks
    /// were swept (caller yields briefly and comes back).
    pub(crate) fn background_sweep_quantum(&self, pacer: &mut crate::pacing::BgSweepPacer) -> bool {
        if !self.config.bg_sweep || self.config.sweep != SweepMode::Lazy {
            return false;
        }
        let Some(plan) = self.heap.lazy_plan() else {
            return false;
        };
        // Fault: the background sweeper stalls for the payload's duration
        // (milliseconds) *before claiming anything*, so a stalled sweeper
        // never holds a chunk hostage — allocation self-serves via
        // sweep-on-refill and the next fence drains the rest.
        if mcgc_fault::point!("sweep.bg_stall") {
            let ms = match mcgc_fault::payload("sweep.bg_stall") {
                0 => 1000,
                ms => ms.clamp(1, 60_000),
            };
            let deadline = Instant::now() + Duration::from_millis(ms);
            while !self.shutdown_flag.load(Ordering::Relaxed) && Instant::now() < deadline {
                self.enter_safe();
                self.background_park(Duration::from_millis(2));
                self.exit_safe();
            }
            return false;
        }
        if !pacer.should_drain(self.heap.sweep_counters().refill_chunks) {
            return false;
        }
        let mut progressed = false;
        for _ in 0..self.config.bg_sweep_batch.max(1) {
            if plan
                .sweep_one_from(&self.heap, SweepSource::Background)
                .is_none()
            {
                break;
            }
            progressed = true;
        }
        if plan.is_done() {
            self.retire_lazy_plan();
        }
        progressed
    }

    /// Clears a completed lazy-sweep plan and pre-clears the mark bits —
    /// they are dead weight once every chunk is swept, and clearing them
    /// now (instead of at the next kickoff) keeps cycle initialization
    /// instant, as the eager path's in-pause pre-clearing does.
    fn retire_lazy_plan(&self) {
        if self.heap.take_lazy_plan_if_done().is_some() {
            self.heap.mark_bits().clear_all();
            self.bits_pre_cleared.store(true, Ordering::Release);
            self.tel
                .on_lazy_retired(self.cycle(), self.heap.free_bytes() as u64);
        }
    }

    // ------------------------------------------------------------------
    // the pause
    // ------------------------------------------------------------------

    /// Runs the stop-the-world phase (paper §2.2). World is stopped;
    /// caller holds the coordinator lock.
    fn run_pause(&self, trigger: Trigger) {
        let wall_start = Instant::now();
        let wall_start_ns = self.tel.hub.now_ns();
        let fresh = !self.in_concurrent_phase();
        let trigger = if fresh && trigger != Trigger::Explicit {
            Trigger::Baseline
        } else {
            trigger
        };
        let pause_span = self.pause_span(SpanKind::Pause, trigger.code());
        let mut retire_span = self.pause_span(SpanKind::PauseRetire, 0);

        // 1. Retire every allocation cache (publishes pending allocation
        //    bits; sweep needs cache tails back on the free list).
        let mutators: Vec<Arc<MutatorShared>> = self.mutators.lock().clone();
        for m in &mutators {
            self.heap.retire_cache(&mut m.cache.lock());
        }
        if let Some(s) = retire_span.as_mut() {
            s.set_arg(mutators.len() as u64);
        }

        // Occupancy-driven shrink, lazy-sweep variant. Eager sweep
        // releases empty grown segments inline while rebuilding the free
        // list; the lazy path accumulates freed extents incrementally
        // and this pause is its first stop-the-world point where
        // "entirely free" is stable. The release itself is epoch-aware:
        // should a pause ever fire with a plan still in flight, segments
        // with unswept chunks are not "empty" yet (their dead memory has
        // not reached the free list) and are skipped by the heap's
        // `range_fully_swept` guard.
        if self.config.sweep == SweepMode::Lazy {
            self.heap.release_empty_free_segments();
        }

        // Open the pause's work-bucket session: the one wakeup the
        // whole pause pays. Every phase below publishes a bucket into
        // it; resident workers flow from one bucket to the next with no
        // further condvar traffic.
        let session = self.sched.open_session();

        // Watchdog: the world is stopped, so any packet still checked out
        // belongs to a tracer that stalled or died mid-increment (every
        // healthy thread returns its packets before parking). Condemn
        // those handles — they count toward §4.3 termination and their
        // bodies are written off — and re-derive the lost grey objects by
        // dirtying every marked object's card: the drain loop's
        // redirty/re-clean iteration then rediscovers their children.
        let stalled = self.pool.outstanding();
        if stalled > 0 {
            let reclaimed = self.pool.condemn_outstanding();
            if reclaimed > 0 {
                self.flood_marked_cards(&session);
                self.tel.on_watchdog_reclaim(reclaimed as u64);
            }
        }

        // verify-gc: audit the concurrent phase's parting state — caches
        // retired (so mark⊆alloc must hold), every marked→unmarked edge
        // excused by a packet entry, a dirty card, or the registry.
        #[cfg(feature = "verify-gc")]
        if !fresh {
            self.audit_concurrent_state("pause-start", true);
        }

        // A fresh (baseline/explicit-from-idle) collection initializes
        // its cycle now, under the pause.
        if fresh {
            self.begin_cycle_locked(false);
            self.phase.store(PHASE_CONCURRENT, Ordering::Release);
            // timeline: no real concurrent phase
        }

        let cycle_no = self.cycle();
        if !fresh {
            self.tel.on_concurrent_end(cycle_no, trigger.code());
        }
        self.tel.on_stw_start(cycle_no, trigger.code());

        let free_at_stw_start = self.heap.free_bytes() as u64;

        // 2. Final card cleaning (§2.2) — only meaningful if a concurrent
        //    phase ran (fresh cycles have a clean card table *except* for
        //    barrier activity before this instant, which is harmless to
        //    clean). Cleaned as a scheduler bucket; `cards_wall` also
        //    absorbs the drain loop's re-clean passes below.
        drop(retire_span);
        let cards_t = Instant::now();
        let cards_span = self.pause_span(SpanKind::PauseCards, 0);
        let (cards_left, stw_clean_work) = self.stw_clean_cards(&session, fresh);
        drop(cards_span);
        let mut cards_wall = cards_t.elapsed();

        // 3. Rescan all thread stacks and global roots (§2.2), as one
        //    bucket: one task per mutator stack plus chunked global
        //    roots.
        let roots_t = Instant::now();
        let root_slots_before = self.counters.root_slots.load(Ordering::Relaxed);
        let roots_span = self.pause_span(SpanKind::PauseRoots, mutators.len() as u64);
        self.sched_scan_roots(&session, &mutators);
        drop(roots_span);
        let root_slots = self.counters.root_slots.load(Ordering::Relaxed) - root_slots_before;
        let roots_wall = roots_t.elapsed();

        // 4. Complete marking in parallel (§2.2; marker similar to Endo
        //    et al.). Packet overflow during this drain falls back to
        //    mark-and-dirty-card (§4.3), so iterate: after each drain,
        //    clean any cards dirtied by overflow and drain again.
        //    Marking is monotone, so this terminates.
        let stw_traced_before = self.counters.traced_stw.load(Ordering::Relaxed);
        let mut extra_clean_ms = 0.0;
        let mut drain_wall = Duration::ZERO;
        let mut drain_round = 0u64;
        loop {
            let drain_t = Instant::now();
            let drain_span = self.pause_span(SpanKind::PauseDrain, drain_round);
            self.drain_marking_parallel(&session);
            drop(drain_span);
            drain_wall += drain_t.elapsed();
            let mut redirty = Vec::new();
            self.heap
                .cards()
                .snapshot_dirty(0, self.heap.cards().len(), &mut redirty);
            if redirty.is_empty() {
                break;
            }
            drain_round += 1;
            let reclean_t = Instant::now();
            let reclean_span = self.pause_span(SpanKind::PauseReclean, redirty.len() as u64);
            let scanned = self.sched_clean_cards(&session, &redirty);
            drop(reclean_span);
            cards_wall += reclean_t.elapsed();
            extra_clean_ms += self
                .config
                .cost
                .card_ms(self.heap.cards().len() as u64, redirty.len() as u64)
                + self.config.cost.trace_ms(scanned);
        }
        let stw_traced = self.counters.traced_stw.load(Ordering::Relaxed) - stw_traced_before;

        // verify-gc: marking is complete — the tri-color invariant must
        // now hold with no excuses.
        #[cfg(feature = "verify-gc")]
        self.audit_strict("post-drain");

        // 5. Sweep. The eager path drives [`ParallelSweep`] as a
        //    scheduler bucket: workers claim chunk ranges off its atomic
        //    cursor and the leader folds the results.
        self.tel
            .on_sweep_start(cycle_no, self.config.sweep == SweepMode::Lazy);
        let sweep_t = Instant::now();
        let sweep_span = self.pause_span(SpanKind::PauseSweep, 0);
        let chunk = self.config.sweep_chunk_granules;
        let (live_objects, live_granules, sweep_chunks, lazy_planned) = match self.config.sweep {
            SweepMode::Eager => {
                let ps = ParallelSweep::new(&self.heap, chunk)
                    .with_recorder(Arc::clone(self.tel.hub.spans()));
                session.run(Bucket::Sweep, |w| {
                    let swept = ps.worker(&self.heap);
                    self.sched.add_claimed(w, swept);
                });
                let s = ps.finish(&self.heap);
                (
                    s.live_objects as u64,
                    s.live_granules as u64,
                    s.chunks as u64,
                    false,
                )
            }
            SweepMode::Lazy => {
                // Publish the sweep epoch: a snapshot of mapped segment
                // ranges plus per-chunk claim states. No sweeping happens
                // here — reclamation is paid off-pause by sweep-on-refill
                // and the background sweeper; the *next* cycle's fence
                // only finishes stragglers.
                // Live-object count deferred with the rest of the epoch's
                // bitmap accounting: a popcount over the mark bitmap
                // costs more than the entire install, and the first
                // off-pause kickoff-headroom check computes it anyway
                // (mark bits are stable until the plan retires). Lazy
                // cycles report 0 live objects; `live_after_bytes` below
                // still carries the traced estimate.
                self.heap.install_lazy_plan(Arc::new(
                    LazySweep::new(&self.heap, chunk)
                        .with_recorder(Arc::clone(self.tel.hub.spans())),
                ));
                (0, 0, 0, true)
            }
        };
        drop(sweep_span);
        let sweep_wall = sweep_t.elapsed();
        self.tel.on_sweep_end(cycle_no, live_objects);

        // verify-gc: after an eager sweep the rebuilt free list must
        // agree with the bitmaps (lazy sweeping checks per-chunk).
        #[cfg(feature = "verify-gc")]
        if !lazy_planned {
            self.audit_strict("post-sweep");
        }

        // 6. End-of-pause mark-bit pre-clear. Eager sweep leaves the mark
        //    bits dead weight: pre-clear them now, while the world is
        //    still stopped, so the next cycle's initialization is
        //    near-instant (clearing megabytes of bitmap at kickoff would
        //    let mutators race through the remaining headroom on a busy
        //    machine). The clear runs as word-range stripes in a bucket.
        //    The card table is NOT pre-cleared: it keeps recording
        //    pre-concurrent stores, and is dropped at kickoff as the
        //    paper's initialization does. Lazy sweep still needs the mark
        //    bits, so it cannot pre-clear.
        let clear_t = Instant::now();
        let clear_span = self.pause_span(SpanKind::PauseClear, 0);
        if !lazy_planned && self.config.mode == CollectorMode::Concurrent {
            self.sched_clear_mark_bits(&session);
            self.bits_pre_cleared.store(true, Ordering::Release);
        }
        drop(clear_span);
        let clear_wall = clear_t.elapsed();
        // Last bucket drained: close the session so the workers park
        // (the accounting below is leader-only).
        drop(session);

        // 7. Account the cycle.
        let account_span = self.pause_span(SpanKind::PauseAccount, 0);
        let cost = &self.config.cost;
        let card_single_ms = stw_clean_work + extra_clean_ms;
        let root_single_ms = cost.roots_ms(root_slots);
        let trace_single_ms = cost.trace_ms(stw_traced);
        let sweep_single_ms = if lazy_planned {
            0.0
        } else {
            cost.sweep_ms(live_objects, sweep_chunks)
        };
        let workers = cost.workers.max(1) as f64;
        let overhead_ms = cost.pause_overhead_ns / 1e6;
        let mark_ms = (card_single_ms + root_single_ms + trace_single_ms) / workers;
        let sweep_ms = sweep_single_ms / workers;

        let live_after_bytes = if lazy_planned {
            // Approximate: every marked object is scanned exactly once.
            self.counters.traced_concurrent() + self.counters.traced_stw.load(Ordering::Relaxed)
        } else {
            live_granules * mcgc_heap::GRANULE_BYTES as u64
        };

        let now = Instant::now();
        let (concurrent_wall, pre_concurrent_wall, alloc_conc, alloc_pre) = {
            let t = self.timeline.lock();
            let allocated = self.heap.bytes_allocated();
            match t.kickoff {
                Some(k) if !fresh => (
                    now.duration_since(k)
                        .saturating_sub(now.duration_since(wall_start)),
                    k.duration_since(t.last_cycle_end),
                    allocated - t.alloc_at_kickoff,
                    t.alloc_at_kickoff - t.alloc_at_last_end,
                ),
                _ => (
                    Duration::ZERO,
                    wall_start.duration_since(t.last_cycle_end),
                    0,
                    allocated - t.alloc_at_last_end,
                ),
            }
        };

        let incr = *self.increments.lock();
        let pool_stats = self.pool.stats();
        let c = &self.counters;
        let stats = CycleStats {
            cycle: self.cycle(),
            trigger: Some(trigger),
            pause_ms: overhead_ms + mark_ms + sweep_ms,
            mark_ms,
            sweep_ms,
            card_ms: card_single_ms / workers,
            root_ms: root_single_ms / workers,
            pause_wall: now.duration_since(wall_start),
            cards_wall,
            roots_wall,
            drain_wall,
            sweep_wall,
            clear_wall,
            straggler_wall: Duration::from_nanos(self.straggler_ns.swap(0, Ordering::Relaxed)),
            straggler_chunks: self.straggler_chunks.swap(0, Ordering::Relaxed),
            concurrent_wall,
            pre_concurrent_wall,
            mutator_traced_bytes: c.traced_mutator.load(Ordering::Relaxed),
            background_traced_bytes: c.traced_background.load(Ordering::Relaxed),
            stw_traced_bytes: c.traced_stw.load(Ordering::Relaxed),
            alloc_concurrent_bytes: alloc_conc,
            alloc_pre_concurrent_bytes: alloc_pre,
            cards_cleaned_concurrent: c.cards_cleaned_conc.load(Ordering::Relaxed),
            cards_cleaned_stw: c.cards_cleaned_stw.load(Ordering::Relaxed),
            cards_left,
            handshakes: c.handshakes.load(Ordering::Relaxed),
            free_at_stw_start,
            live_after_bytes,
            live_after_objects: live_objects,
            free_after_bytes: self.heap.free_bytes() as u64,
            occupancy_after: self.heap.occupancy(),
            increments: incr.n,
            tracing_factor_sum: incr.factor_sum,
            tracing_factor_sq_sum: incr.factor_sq_sum,
            cas_ops: pool_stats.cas_ops,
            overflows: c.overflows.load(Ordering::Relaxed),
            deferred_objects: c.deferred.load(Ordering::Relaxed),
            packets_in_use_watermark: pool_stats.in_use_watermark,
            packet_entries_watermark: pool_stats.entries_watermark,
        };

        // 8. Feed the pacer (§3.1). The `L` observation must be the FULL
        //    trace volume (concurrent + stop-the-world): when a phase is
        //    halted by an allocation failure, the concurrently-traced
        //    bytes alone would underestimate `L`, shrink the kickoff
        //    threshold, and spiral into ever-later kickoffs.
        self.pacer.lock().end_cycle(
            c.traced_concurrent() + c.traced_stw.load(Ordering::Relaxed),
            c.card_scanned_bytes.load(Ordering::Relaxed).max(1),
        );

        self.tel
            .on_stw_end(cycle_no, wall_start_ns, self.tel.hub.now_ns());
        self.tel.on_cycle_end(&stats);
        self.log.lock().cycles.push(stats);
        self.phase.store(PHASE_IDLE, Ordering::Release);
        {
            let mut t = self.timeline.lock();
            t.last_cycle_end = Instant::now();
            t.kickoff = None;
            t.alloc_at_last_end = self.heap.bytes_allocated();
        }

        // 9. Flight-recorder epilogue: snapshot heap occupancy into the
        //    trace's counter tracks (still inside the accounting span),
        //    close the pause, then record the enclosing cycle span —
        //    begin = kickoff — so pause phases nest under their cycle.
        let rec = self.tel.hub.spans();
        if rec.is_enabled() {
            mcgc_heap::inspect(&self.heap).record_counters(rec);
        }
        drop(account_span);
        drop(pause_span);
        if let Some(track) = self.coord_track {
            rec.record_span(
                track,
                SpanKind::Cycle,
                self.cycle_begin_ns.load(Ordering::Relaxed),
                rec.now_ns(),
                cycle_no,
            );
        }
    }

    /// Degraded-mode recovery (watchdog): dirties the card of every
    /// marked object. A condemned packet's entries were marked but their
    /// children may be untraced; since any such parent is marked, card
    /// flooding over the mark bitmap is a superset of the lost grey set,
    /// and the pause's redirty/re-clean loop rescans it. Marking is
    /// monotone, so the extra cards only cost time, never soundness.
    ///
    /// Walks the mark bitmap a 64-bit word at a time (at the current
    /// geometry one word covers exactly one card), striped across the
    /// scheduler workers; all-zero words — the vast majority — cost one
    /// load.
    fn flood_marked_cards(&self, session: &Session<'_>) {
        const STRIPE_WORDS: usize = 1 << 12; // 32 KiB of bitmap per claim
        let _flood_span = self.pause_span(SpanKind::PauseFlood, 0);
        let marks = self.heap.mark_bits();
        let cards = self.heap.cards();
        let words = marks.word_len();
        let cursor = AtomicUsize::new(0);
        let gpc = mcgc_heap::GRANULES_PER_CARD;
        session.run(Bucket::Flood, |wk| {
            let mut claims = 0u64;
            loop {
                let start = cursor.fetch_add(STRIPE_WORDS, Ordering::Relaxed);
                if start >= words {
                    break;
                }
                claims += 1;
                for w in start..(start + STRIPE_WORDS).min(words) {
                    let mut bits = marks.load_word(w);
                    if bits == 0 {
                        continue;
                    }
                    let base = w * 64;
                    if gpc >= 64 {
                        // The whole word maps into a single card.
                        cards.dirty(base / gpc);
                    } else {
                        // Several cards per word: dirty each card that
                        // has a set bit, skipping by card.
                        while bits != 0 {
                            let g = base + bits.trailing_zeros() as usize;
                            let card = g / gpc;
                            cards.dirty(card);
                            let card_end = (card + 1) * gpc;
                            if card_end >= base + 64 {
                                break;
                            }
                            bits &= !0u64 << (card_end - base);
                        }
                    }
                }
            }
            self.sched.add_claimed(wk, claims);
        });
    }

    /// Cleans `cards` as a scheduler bucket: workers claim fixed-size
    /// stripes from an atomic cursor and fill their own packet buffers.
    /// Returns the bytes scanned (callers decide which accounting it
    /// feeds).
    fn sched_clean_cards(&self, session: &Session<'_>, cards: &[usize]) -> u64 {
        const STRIPE: usize = 32;
        if cards.is_empty() {
            return 0;
        }
        let cursor = AtomicUsize::new(0);
        let scanned = AtomicU64::new(0);
        session.run(Bucket::Cards, |w| {
            let mut buf = WorkBuffer::new(&self.pool);
            let mut local = 0u64;
            let mut claims = 0u64;
            loop {
                let i = cursor.fetch_add(STRIPE, Ordering::Relaxed);
                if i >= cards.len() {
                    break;
                }
                claims += 1;
                for &card in &cards[i..(i + STRIPE).min(cards.len())] {
                    local += self.clean_one_card(card, &mut buf, true);
                }
            }
            buf.finish();
            scanned.fetch_add(local, Ordering::Relaxed);
            self.sched.add_claimed(w, claims);
        });
        scanned.load(Ordering::Relaxed)
    }

    /// §2.2 root rescanning as a scheduler bucket: each mutator stack is
    /// one task; the global-roots table is claimed in fixed-size chunks.
    /// Stack snapshotting credits `root_slots` inside [`Gc::scan_stack`];
    /// the leader credits the global slots here, mirroring
    /// [`Gc::scan_global_roots`].
    fn sched_scan_roots(&self, session: &Session<'_>, mutators: &[Arc<MutatorShared>]) {
        const GLOBAL_CHUNK: usize = 256;
        let globals: Vec<u64> = self.global_roots.lock().clone();
        self.counters
            .root_slots
            .fetch_add(globals.len() as u64, Ordering::Relaxed);
        let stacks = mutators.len();
        let tasks = stacks + globals.len().div_ceil(GLOBAL_CHUNK);
        let cursor = AtomicUsize::new(0);
        session.run(Bucket::Roots, |w| {
            let mut buf = WorkBuffer::new(&self.pool);
            let mut claims = 0u64;
            loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= tasks {
                    break;
                }
                claims += 1;
                if t < stacks {
                    self.scan_stack(&mutators[t], &mut buf);
                } else {
                    let start = (t - stacks) * GLOBAL_CHUNK;
                    let end = (start + GLOBAL_CHUNK).min(globals.len());
                    for &raw in &globals[start..end] {
                        if let Some(r) = ObjectRef::decode(raw) {
                            self.mark_and_push(r, &mut buf);
                        }
                    }
                }
            }
            buf.finish();
            self.sched.add_claimed(w, claims);
        });
    }

    /// End-of-pause mark-bit pre-clear as disjoint word-range stripes
    /// across the scheduler workers. ([`Gc::retire_lazy_plan`] keeps the
    /// serial `clear_all`: it runs outside the pause, where no session
    /// is open.)
    fn sched_clear_mark_bits(&self, session: &Session<'_>) {
        const STRIPE_WORDS: usize = 1 << 12;
        let marks = self.heap.mark_bits();
        let words = marks.word_len();
        let cursor = AtomicUsize::new(0);
        session.run(Bucket::ClearBits, |w| {
            let mut claims = 0u64;
            loop {
                let start = cursor.fetch_add(STRIPE_WORDS, Ordering::Relaxed);
                if start >= words {
                    break;
                }
                claims += 1;
                marks.clear_words(start, (start + STRIPE_WORDS).min(words));
            }
            self.sched.add_claimed(w, claims);
        });
    }

    /// §2.2 final card cleaning: drains the concurrent registry and
    /// freshly dirty cards as a bucket. Returns `(cards_left, ms)` where
    /// `ms` is the single-worker modelled cost and `cards_left` is
    /// Table 2's "Cards Left" observation: cards still registered for
    /// rescanning plus dirty cards past the halted concurrent cleaner's
    /// snapshot cursor (cards before the cursor were re-dirtied *after*
    /// cleaning, not left behind by it).
    fn stw_clean_cards(&self, session: &Session<'_>, fresh: bool) -> (u64, f64) {
        let ncards = self.heap.cards().len();
        // Halt the concurrent cleaner and take over its registry.
        let (mut to_clean, cursor_at_halt) = {
            let mut cs = self.card_state.lock();
            let cursor = if cs.done { ncards } else { cs.cursor };
            let reg: Vec<usize> = cs.registry.drain(..).collect();
            cs.done = true;
            (reg, cursor)
        };
        let registry_left = to_clean.len() as u64;
        let mut fresh_dirty = Vec::new();
        self.heap
            .cards()
            .snapshot_dirty(0, ncards, &mut fresh_dirty);
        let unreached = fresh_dirty
            .iter()
            .filter(|&&card| card >= cursor_at_halt)
            .count() as u64;
        to_clean.extend(fresh_dirty);

        if fresh {
            // Baseline/fresh cycle: the card table content predates the
            // cycle; nothing is marked yet, so cleaning is a no-op.
            return (0, 0.0);
        }
        let cards_left = registry_left + unreached;
        let scanned_bytes = self.sched_clean_cards(session, &to_clean);
        // Final cleaning contributes to the `M` observation too.
        self.counters
            .card_scanned_bytes
            .fetch_add(scanned_bytes, Ordering::Relaxed);
        let cost = &self.config.cost;
        let ms = cost.card_ms(ncards as u64, to_clean.len() as u64) + cost.trace_ms(scanned_bytes);
        (cards_left, ms)
    }

    /// Parallel drain of all remaining marking work (§2.2). World is
    /// stopped; the leader and the resident scheduler workers pop
    /// packets until the pool reports termination — no thread is created
    /// (and no condvar touched) on this path.
    fn drain_marking_parallel(&self, session: &Session<'_>) {
        session.run(Bucket::Drain, |w| {
            self.drain_marking_worker();
            self.sched.add_claimed(w, 1);
        });
        debug_assert!(self.pool.is_tracing_complete());
        debug_assert!(!self.pool.has_deferred());
    }

    fn drain_marking_worker(&self) {
        loop {
            let mut buf = WorkBuffer::new(&self.pool);
            let mut did_work = false;
            while let Some(obj) = buf.pop() {
                did_work = true;
                let bytes = self.trace_object_stw(obj, &mut buf);
                self.counters.traced_stw.fetch_add(bytes, Ordering::Relaxed);
            }
            self.tel
                .on_packet_claims(buf.input_claims(), buf.output_claims());
            buf.finish();
            // A §4.3 termination attempt follows a productive batch; only
            // those are recorded, so a worker spinning while peers finish
            // does not flood its span ring.
            let _attempt = if did_work {
                Some(self.tel.hub.spans().span(SpanKind::TerminationAttempt, 0))
            } else {
                None
            };
            if self.pool.has_deferred() {
                // All allocation bits are published now (caches retired);
                // deferred objects trace normally.
                self.pool.recycle_deferred();
                continue;
            }
            if self.pool.is_tracing_complete() {
                return;
            }
            if !did_work {
                std::thread::yield_now();
            }
        }
    }
}

impl std::fmt::Debug for Gc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gc")
            .field("phase", &self.phase())
            .field("cycle", &self.cycle())
            .field("heap", &self.heap)
            .finish()
    }
}
