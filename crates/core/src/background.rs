//! Low-priority background collector threads (paper §3): they soak up
//! idle processor time by tracing whenever a concurrent phase is active,
//! making whatever progress is possible without burdening the system;
//! the incremental (mutator) tracing guarantees progress regardless.

use std::sync::Arc;
use std::time::Duration;

use crate::collector::Gc;
use crate::pacing::BgSweepPacer;
use crate::tracing::TraceRole;

/// Background thread main loop. "Low priority" is approximated by short
/// quanta with yielding sleeps between them (real thread priorities are
/// not portably available); the paper's accounting (§3.2) only relies on
/// the *measured* background rate `B`, not on a particular scheduler.
pub(crate) fn run(gc: Arc<Gc>) {
    gc.register_thread();
    gc.bg_alive
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut sweep_pacer = BgSweepPacer::new();
    while !gc.shutdown_flag.load(std::sync::atomic::Ordering::Relaxed) {
        gc.poll_safepoint();
        if gc.in_concurrent_phase() {
            // Fault: the tracer dies mid-phase — it abandons its tracing
            // duties abruptly (deregistering below, as a real thread
            // death would via its runtime's exit path). Any packets it
            // ever held are already back in the pool; the collector must
            // finish the cycle without its help.
            if mcgc_fault::point!("bg.death") {
                break;
            }
            // Fault: the tracer stalls for the payload's duration while
            // *holding a checked-out packet* — the scenario the pause
            // watchdog exists for.
            if mcgc_fault::point!("bg.stall") {
                stall_holding_packet(&gc);
                continue;
            }
            let quantum = gc.config.background_quantum as u64;
            let done = gc.trace_increment(quantum, TraceRole::Background, None);
            if done == 0 {
                // No concurrent work right now: yield (the paper's
                // background threads yield and retry).
                idle(&gc, Duration::from_micros(200));
            } else {
                // Brief yield between quanta keeps "low priority".
                std::thread::yield_now();
            }
        } else if gc.background_sweep_quantum(&mut sweep_pacer) {
            // Between concurrent phases the tracer doubles as the
            // background sweeper: it soaks idle cycles draining the
            // sweep epoch, parking while mutator refills keep up.
            std::thread::yield_now();
        } else {
            idle(&gc, Duration::from_micros(500));
        }
    }
    gc.bg_alive
        .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    gc.deregister_thread();
}

/// Backs the `bg.stall` fault site: checks a non-empty packet out of the
/// pool and sleeps on it (counted *safe*, so pauses proceed) for the
/// plan's payload in milliseconds (default 1000, clamped to a minute).
/// A healthy thread never parks holding a packet; the pause watchdog
/// must condemn the handle so termination detection still fires.
fn stall_holding_packet(gc: &Arc<Gc>) {
    // Prefer a work-laden input packet (the worst case: greys go missing
    // with it), but any checked-out packet wedges §4.3 termination
    // detection, so fall back to an output-side grab.
    let Some(held) = gc.pool.get_input().or_else(|| gc.pool.get_output()) else {
        // Nothing to hold hostage yet; retry at the next loop turn (the
        // site keeps firing under a `From` trigger).
        std::thread::yield_now();
        return;
    };
    let ms = match mcgc_fault::payload("bg.stall") {
        0 => 1000,
        ms => ms.clamp(1, 60_000),
    };
    let deadline = std::time::Instant::now() + Duration::from_millis(ms);
    while !gc.shutdown_flag.load(std::sync::atomic::Ordering::Relaxed)
        && std::time::Instant::now() < deadline
    {
        idle(gc, Duration::from_millis(2));
    }
    drop(held);
}

/// Parks while counted *safe* so the collector never waits on an idle
/// background thread; kickoff wakes the park early so the tracer
/// engages the concurrent phase from its first moment.
fn idle(gc: &Gc, d: Duration) {
    gc.enter_safe();
    gc.background_park(d);
    gc.exit_safe();
}
