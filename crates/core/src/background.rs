//! Low-priority background collector threads (paper §3): they soak up
//! idle processor time by tracing whenever a concurrent phase is active,
//! making whatever progress is possible without burdening the system;
//! the incremental (mutator) tracing guarantees progress regardless.

use std::sync::Arc;
use std::time::Duration;

use crate::collector::Gc;
use crate::tracing::TraceRole;

/// Background thread main loop. "Low priority" is approximated by short
/// quanta with yielding sleeps between them (real thread priorities are
/// not portably available); the paper's accounting (§3.2) only relies on
/// the *measured* background rate `B`, not on a particular scheduler.
pub(crate) fn run(gc: Arc<Gc>) {
    gc.register_thread();
    while !gc.shutdown_flag.load(std::sync::atomic::Ordering::Relaxed) {
        gc.poll_safepoint();
        if gc.in_concurrent_phase() {
            let quantum = gc.config.background_quantum as u64;
            let done = gc.trace_increment(quantum, TraceRole::Background);
            if done == 0 {
                // No concurrent work right now: yield (the paper's
                // background threads yield and retry).
                idle(&gc, Duration::from_micros(200));
            } else {
                // Brief yield between quanta keeps "low priority".
                std::thread::yield_now();
            }
        } else if gc.sweep_some_lazy() {
            // Lazy-sweep chunks are background work too (§7).
            std::thread::yield_now();
        } else {
            idle(&gc, Duration::from_micros(500));
        }
    }
    gc.deregister_thread();
}

/// Sleeps while counted *safe* so the collector never waits on an idle
/// background thread.
fn idle(gc: &Gc, d: Duration) {
    gc.enter_safe();
    std::thread::sleep(d);
    gc.exit_safe();
}
