//! The persistent stop-the-world worker gang (paper §2.2, §6).
//!
//! The paper's pause is *fully* parallel: final card cleaning, root
//! rescanning, mark completion, and sweep are all load-balanced across
//! the GC threads. Spawning those threads per pause (or worse, per
//! phase, as the old `thread::scope` drain and sweep did) puts thread
//! creation on the latency-critical pause path; a server collector keeps
//! a *persistent* gang parked between pauses instead.
//!
//! [`Gang`] owns `stw_workers - 1` long-lived helper threads created
//! once at [`crate::Gc`] construction. Between pauses they sleep on a
//! condvar. The pause leader drives them through a task-barrier
//! protocol:
//!
//! 1. The leader publishes a job (a type-erased closure) together with a
//!    bumped **epoch** counter and issues one `notify_all`.
//! 2. Every helper that observes the new epoch runs the job with its
//!    worker index. Work *within* a job is claimed from atomic cursors
//!    by the closures themselves, so load balancing is dynamic, exactly
//!    like the packet pool's.
//! 3. Each helper decrements the `active` count when done; the leader —
//!    who also ran the job as worker 0 — waits for it to reach zero.
//!
//! **Termination argument.** A dispatch cannot hang: every job is a
//! finite loop over an atomic cursor (or the packet pool's §4.3
//! termination-detecting drain), each helper runs the job exactly once
//! per epoch (it records the epoch it has seen), and the barrier wait is
//! over a plain counter guarded by the same mutex as the condvar — no
//! helper can decrement `active` without the leader eventually observing
//! it. A helper stalled *inside* a job (see the `gang.stall` chaos
//! site) delays only the barrier, never correctness: the cursors let
//! the remaining workers — at minimum the leader — finish all the work.
//!
//! **Panic discipline.** The barrier must hold even when a job panics.
//! If the *leader's* slice of a job unwinds, a drop guard in
//! [`Gang::run`] still waits out the helpers before the dispatching
//! frame — which owns the lifetime-erased job closure — is torn down,
//! then lets the panic propagate. If a *helper's* slice unwinds, the
//! process aborts: a helper that died without decrementing `active`
//! would strand the leader (and the stopped world) forever, and a gang
//! silently short one worker would hang every later dispatch, so the
//! failure is made loud instead. Shutdown is similarly ordered:
//! helpers finish a pending dispatch before honoring the shutdown
//! flag, and a dispatch that observes shutdown runs inline.
//!
//! With `stw_workers = 1` there are no helpers and [`Gang::run`] calls
//! the job inline, degenerating to exactly the serial pause.
//!
//! **Model checking.** This whole protocol — epoch dispatch, the
//! predicate loops, the barrier, panic unwinding, and the shutdown
//! race — is mirrored by `gang_model` in `crates/check` and explored
//! exhaustively (`cargo run -p mcgc-check`). The model's mutation
//! matrix deletes each load-bearing line in turn (the epoch re-check,
//! the dispatch `notify_all`, the epoch-before-shutdown predicate
//! order, the inline fallback, the unwind guard, the helper abort) and
//! proves the checker catches every one as a deadlock, a dangling job
//! closure, or a double-claimed work item. When editing the protocol
//! here, change the model in the same commit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mcgc_membar::sync::{Condvar, Mutex};
use mcgc_telemetry::{SpanKind, SpanRecorder};

/// Which pause phase a dispatch executes. Purely a label: the job
/// closure carries the actual work; the label feeds per-phase dispatch
/// accounting (and makes progress visible in thread dumps).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum GangTask {
    /// Final card cleaning (§2.2), including redirty/re-clean passes.
    Cards,
    /// Stack + global root rescanning (§2.2).
    Roots,
    /// Packet drain to mark completion (§2.2, §4).
    Drain,
    /// Eager bitwise sweep (§2.2).
    Sweep,
    /// Watchdog recovery: flood marked objects' cards.
    Flood,
    /// End-of-pause mark-bit pre-clear.
    ClearBits,
    /// Pre-pause straggler fence: drain the previous sweep epoch's
    /// unswept chunks so the pause itself contains no bulk sweep.
    Straggler,
}

impl GangTask {
    pub(crate) const COUNT: usize = 7;

    pub(crate) fn index(self) -> usize {
        match self {
            GangTask::Cards => 0,
            GangTask::Roots => 1,
            GangTask::Drain => 2,
            GangTask::Sweep => 3,
            GangTask::Flood => 4,
            GangTask::ClearBits => 5,
            GangTask::Straggler => 6,
        }
    }
}

/// A published job: a borrowed closure with its lifetime erased.
///
/// The `'static` here is a lie told to the type system only; see the
/// SAFETY comment in [`Gang::run`] for why no helper can outlive the
/// real borrow.
type Job = &'static (dyn Fn(usize) + Sync);

struct GangState {
    /// Bumped once per dispatch; helpers run a job exactly once per
    /// epoch they observe.
    epoch: u64,
    /// The current job, present from dispatch until the barrier closes.
    job: Option<Job>,
    /// Helpers still running the current job.
    active: usize,
    shutdown: bool,
}

struct GangShared {
    state: Mutex<GangState>,
    /// Helpers park here between pauses, waiting for a new epoch.
    dispatch_cv: Condvar,
    /// The leader waits here for `active == 0`.
    done_cv: Condvar,
    /// Work items claimed per worker (slot 0 = the pause leader), for
    /// the gang-utilization telemetry.
    claimed: Box<[AtomicU64]>,
    /// Dispatches per [`GangTask`].
    dispatched: [AtomicU64; GangTask::COUNT],
    /// Helpers that hit the `gang.stall` chaos site.
    stalls: AtomicU64,
    /// Flight recorder, attached once by the collector after
    /// construction. Helpers record `gang.job` spans (arg = work items
    /// claimed) on their own tracks; the leader records the dispatch and
    /// its barrier wait.
    spans: OnceLock<Arc<SpanRecorder>>,
}

impl GangShared {
    fn recorder(&self) -> Option<&SpanRecorder> {
        self.spans.get().map(Arc::as_ref).filter(|r| r.is_enabled())
    }
}

/// The persistent gang. One per [`crate::Gc`]; dispatched only by the
/// pause leader (who holds the coordinator lock), so `run` is never
/// re-entered.
pub(crate) struct Gang {
    shared: Arc<GangShared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Total workers including the leader (`>= 1`).
    workers: usize,
}

impl Gang {
    /// Creates the gang and spawns its `workers - 1` helper threads.
    /// They park immediately and cost nothing until the first dispatch.
    pub(crate) fn new(workers: usize) -> Gang {
        let workers = workers.max(1);
        let shared = Arc::new(GangShared {
            state: Mutex::new(GangState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            dispatch_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claimed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            dispatched: std::array::from_fn(|_| AtomicU64::new(0)),
            stalls: AtomicU64::new(0),
            spans: OnceLock::new(),
        });
        let mut handles = Vec::with_capacity(workers - 1);
        for idx in 1..workers {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mcgc-gang-{idx}"))
                    .spawn(move || helper_loop(&shared, idx))
                    .expect("spawn gang helper"),
            );
        }
        Gang {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// Total workers including the leader.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Attaches the flight recorder (first caller wins; later calls are
    /// no-ops). Kept out of `new` so the ~8 test construction sites
    /// don't need a recorder.
    pub(crate) fn attach_spans(&self, rec: Arc<SpanRecorder>) {
        let _ = self.shared.spans.set(rec);
    }

    /// Dispatches `f` to every worker (helpers + the calling leader as
    /// worker 0) and blocks until all have finished — one condvar wakeup
    /// per phase, no thread creation. With no helpers, runs `f(0)`
    /// inline: `stw_workers = 1` is byte-for-byte the serial pause.
    ///
    /// Must only be called by the pause leader (under the coordinator
    /// lock); dispatches never overlap. If [`Gang::shutdown`] has
    /// already begun, the helpers may be gone, so the job runs inline on
    /// the caller instead of being dispatched.
    pub(crate) fn run(&self, task: GangTask, f: impl Fn(usize) + Sync) {
        self.shared.dispatched[task.index()].fetch_add(1, Ordering::Relaxed);
        let rec = self.shared.recorder();
        let _dispatch = rec.map(|r| r.span(SpanKind::GangDispatch, task.index() as u64));
        if self.workers == 1 {
            run_job_with_span(&self.shared, rec, 0, &f);
            return;
        }
        {
            let job: &(dyn Fn(usize) + Sync) = &f;
            // SAFETY: erasing the borrow's lifetime to 'static is sound
            // because this frame — which owns `f`, the referent of the
            // erased reference — is not torn down until the barrier
            // observes `active == 0`, i.e. until every helper has
            // finished running the job and can never dereference it
            // again (`job` is also cleared at the barrier). The barrier
            // wait runs from `BarrierGuard::drop`, so it closes on the
            // unwind path too: a panic in the leader's `f(0)` below
            // still waits out the helpers before the frame is freed.
            let job: Job = unsafe { std::mem::transmute(job) };
            let mut st = self.shared.state.lock();
            if st.shutdown {
                // Shutdown raced ahead of this dispatch: helpers are
                // exiting (or already joined), so nobody would pick the
                // job up. Run it serially instead of hanging.
                // MODEL: gang_model — DispatchIgnoresShutdown deletes
                // this fallback and deadlocks the shutdown-race scenario.
                drop(st);
                run_job_with_span(&self.shared, rec, 0, &f);
                return;
            }
            debug_assert!(
                st.active == 0 && st.job.is_none(),
                "gang dispatch overlapped a running job"
            );
            st.job = Some(job);
            st.active = self.workers - 1;
            st.epoch += 1;
            // MODEL: gang_model — MissedNotify deletes this wake and the
            // model finds the sleeping-helper deadlock.
            self.shared.dispatch_cv.notify_all();
        }
        /// Closes the dispatch barrier on drop — on the normal path and,
        /// critically, on unwind (see the SAFETY comment above).
        /// MODEL: gang_model — UnwindPastBarrier deletes this guard and
        /// the model reports a dangling job closure.
        struct BarrierGuard<'a>(&'a GangShared, Option<&'a SpanRecorder>);
        impl Drop for BarrierGuard<'_> {
            fn drop(&mut self) {
                let _wait = self.1.map(|r| r.span(SpanKind::BarrierWait, 0));
                let mut st = self.0.state.lock();
                while st.active > 0 {
                    self.0.done_cv.wait(&mut st);
                }
                st.job = None;
            }
        }
        let barrier = BarrierGuard(&self.shared, rec);
        // The leader is worker 0 and pulls from the same cursors.
        run_job_with_span(&self.shared, rec, 0, &f);
        drop(barrier);
    }

    /// Credits `n` claimed work items to `worker` (utilization stats).
    pub(crate) fn add_claimed(&self, worker: usize, n: u64) {
        self.shared.claimed[worker].fetch_add(n, Ordering::Relaxed);
    }

    /// Work items claimed per worker since construction (slot 0 = the
    /// pause leader).
    pub(crate) fn claimed_per_worker(&self) -> Vec<u64> {
        self.shared
            .claimed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Dispatches so far for `task`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn dispatched(&self, task: GangTask) -> u64 {
        self.shared.dispatched[task.index()].load(Ordering::Relaxed)
    }

    /// Total dispatches across all tasks.
    pub(crate) fn dispatched_total(&self) -> u64 {
        self.shared
            .dispatched
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Times a helper hit the `gang.stall` chaos site.
    pub(crate) fn stalls(&self) -> u64 {
        self.shared.stalls.load(Ordering::Relaxed)
    }

    /// Stops and joins the helper threads. Idempotent, and safe to race
    /// with a dispatch: helpers finish a pending job (closing its
    /// barrier) before exiting, and a [`Gang::run`] that observes the
    /// shutdown flag executes its job inline instead of dispatching.
    pub(crate) fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.dispatch_cv.notify_all();
        }
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Gang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gang")
            .field("workers", &self.workers)
            .field("dispatched", &self.dispatched_total())
            .finish()
    }
}

/// Runs one worker's slice of a job under a `gang.job` span whose arg is
/// the work items the worker claimed while inside it (read from the
/// gang's per-worker claim counters before and after).
fn run_job_with_span(
    shared: &GangShared,
    rec: Option<&SpanRecorder>,
    idx: usize,
    job: &(dyn Fn(usize) + Sync),
) {
    let before = shared.claimed[idx].load(Ordering::Relaxed);
    let mut span = rec.map(|r| r.span(SpanKind::GangJob, 0));
    job(idx);
    if let Some(s) = span.as_mut() {
        let after = shared.claimed[idx].load(Ordering::Relaxed);
        s.set_arg(after.saturating_sub(before));
    }
}

fn helper_loop(shared: &GangShared, idx: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                // A pending dispatch takes priority over shutdown: the
                // leader is blocked at its barrier sized to the helper
                // count, so exiting here without running the job (and
                // decrementing `active`) would strand it forever.
                // MODEL: gang_model — ShutdownBeforeEpoch swaps these two
                // checks (the PR 5 review bug) and WaitIsIf turns the
                // loop into an `if`; the model catches both.
                if st.epoch != seen {
                    break;
                }
                if st.shutdown {
                    return;
                }
                shared.dispatch_cv.wait(&mut st);
            }
            seen = st.epoch;
            st.job.expect("gang epoch advanced without a job")
        };
        // Chaos: a helper stalls at dispatch (payload = milliseconds).
        // The pause must still complete — the leader and the remaining
        // helpers drain the job's cursors — delayed at most by the
        // bounded sleep at the barrier.
        if mcgc_fault::point!("gang.stall") {
            shared.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(
                mcgc_fault::payload("gang.stall").max(1),
            ));
        }
        // A helper must never unwind past the barrier: dying without
        // decrementing `active` would hang the leader — and the whole
        // stopped world — forever, and silently leave every later
        // dispatch one worker short. A panic in a GC job is not
        // recoverable, so surface it (the panic hook has already
        // printed the message and backtrace) and abort.
        // MODEL: gang_model — PanicNoAbort lets the helper die silently
        // instead; the model shows the leader stranded at its barrier.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job_with_span(shared, shared.recorder(), idx, job)
        }))
        .is_err()
        {
            eprintln!("mcgc-gang-{idx}: panic in GC job; aborting");
            std::process::abort();
        }
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_worker_runs_inline() {
        let gang = Gang::new(1);
        let hits = AtomicUsize::new(0);
        gang.run(GangTask::Drain, |w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(gang.dispatched(GangTask::Drain), 1);
        gang.shutdown();
    }

    #[test]
    fn all_workers_run_each_dispatch() {
        let gang = Gang::new(4);
        for round in 1..=3u64 {
            let ran = AtomicU64::new(0);
            gang.run(GangTask::Sweep, |w| {
                assert!(w < 4);
                ran.fetch_add(1 << (8 * w), Ordering::Relaxed);
            });
            // Each worker ran exactly once: one count in each byte lane.
            assert_eq!(ran.load(Ordering::Relaxed), 0x01_01_01_01);
            assert_eq!(gang.dispatched(GangTask::Sweep), round);
        }
        gang.shutdown();
    }

    #[test]
    fn cursor_work_is_fully_claimed() {
        let gang = Gang::new(3);
        const N: usize = 10_000;
        let cursor = AtomicUsize::new(0);
        let sum = AtomicU64::new(0);
        gang.run(GangTask::Cards, |w| {
            let mut claims = 0;
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= N {
                    break;
                }
                claims += 1;
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            }
            gang.add_claimed(w, claims);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (N as u64 * (N as u64 + 1)) / 2);
        assert_eq!(gang.claimed_per_worker().iter().sum::<u64>(), N as u64);
        gang.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let gang = Gang::new(2);
        gang.run(GangTask::Roots, |_| {});
        gang.shutdown();
        gang.shutdown();
    }

    #[test]
    fn leader_panic_closes_barrier_and_gang_survives() {
        let gang = Gang::new(3);
        let helpers_ran = AtomicU64::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gang.run(GangTask::Cards, |w| {
                if w == 0 {
                    panic!("leader slice panics");
                }
                helpers_ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(caught.is_err(), "leader panic propagates");
        assert_eq!(helpers_ran.load(Ordering::Relaxed), 2);
        // The unwind path closed the barrier (active == 0, job cleared),
        // so the gang is still dispatchable.
        let ran = AtomicU64::new(0);
        gang.run(GangTask::Cards, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3);
        gang.shutdown();
    }

    #[test]
    fn dispatch_after_shutdown_runs_inline() {
        let gang = Gang::new(4);
        gang.shutdown();
        let ran = AtomicU64::new(0);
        gang.run(GangTask::Drain, |w| {
            assert_eq!(w, 0, "only the caller runs after shutdown");
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_racing_dispatches_never_hangs() {
        for _ in 0..50 {
            let gang = std::sync::Arc::new(Gang::new(3));
            let g = std::sync::Arc::clone(&gang);
            let t = std::thread::spawn(move || g.shutdown());
            for _ in 0..10 {
                let ran = AtomicU64::new(0);
                gang.run(GangTask::Roots, |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                // Inline (post-shutdown) or full-gang, the job ran.
                assert!(ran.load(Ordering::Relaxed) >= 1);
            }
            t.join().unwrap();
        }
    }
}
