//! Per-cycle collection statistics and aggregation helpers — the raw
//! material for every table and figure in the paper's §6.

use std::time::Duration;

/// What started a collection cycle's stop-the-world phase.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Allocation could not be satisfied (the concurrent phase, if any,
    /// was halted early).
    AllocationFailure,
    /// The concurrent phase finished all its work (stacks scanned, cards
    /// cleaned once, no marked objects left to trace) — a "premature" GC
    /// in Table 2's terms.
    ConcurrentDone,
    /// The stop-the-world baseline collector ran (no concurrent phase).
    Baseline,
    /// An explicit `collect()` request.
    Explicit,
}

/// Statistics for one completed collection cycle.
#[derive(Clone, Debug, Default)]
pub struct CycleStats {
    /// 1-based cycle number.
    pub cycle: u64,
    /// What ended the concurrent phase (or `Baseline`).
    pub trigger: Option<Trigger>,

    // -- pause decomposition, work-model milliseconds --
    /// Total modelled pause.
    pub pause_ms: f64,
    /// Mark component (final card cleaning + root rescan + tracing).
    pub mark_ms: f64,
    /// Sweep component (0 under lazy sweep — it happens outside the
    /// pause).
    pub sweep_ms: f64,
    /// Card-cleaning part of the mark component.
    pub card_ms: f64,
    /// Root-scanning part of the mark component.
    pub root_ms: f64,
    /// Wall-clock pause measured on the host (noisy; for reference).
    pub pause_wall: Duration,

    // -- concurrent phase --
    /// Wall-clock duration of the concurrent phase.
    pub concurrent_wall: Duration,
    /// Wall-clock duration of the pre-concurrent phase (end of previous
    /// pause to kickoff).
    pub pre_concurrent_wall: Duration,
    /// Bytes traced concurrently by mutator increments.
    pub mutator_traced_bytes: u64,
    /// Bytes traced concurrently by background threads.
    pub background_traced_bytes: u64,
    /// Bytes traced during the stop-the-world phase.
    pub stw_traced_bytes: u64,
    /// Bytes allocated during the concurrent phase.
    pub alloc_concurrent_bytes: u64,
    /// Bytes allocated during the pre-concurrent phase.
    pub alloc_pre_concurrent_bytes: u64,

    // -- cards --
    /// Dirty cards cleaned during the concurrent phase.
    pub cards_cleaned_concurrent: u64,
    /// Dirty cards cleaned during the stop-the-world phase.
    pub cards_cleaned_stw: u64,
    /// Cards the concurrent cleaner had not yet reached when the phase
    /// was halted by an allocation failure (Table 2 "Cards Left").
    pub cards_left: u64,
    /// Card-cleaning handshakes performed (§5.3 batches).
    pub handshakes: u64,

    // -- heap --
    /// Free bytes when the stop-the-world phase began.
    pub free_at_stw_start: u64,
    /// Live bytes after marking (swept heap).
    pub live_after_bytes: u64,
    /// Live objects after marking.
    pub live_after_objects: u64,
    /// Free bytes after the cycle completed.
    pub free_after_bytes: u64,
    /// Heap occupancy after the cycle, in `[0, 1]`.
    pub occupancy_after: f64,

    // -- load balancing (Table 4) --
    /// Tracing increments performed by mutators.
    pub increments: u64,
    /// Sum of per-increment tracing factors (actual/assigned).
    pub tracing_factor_sum: f64,
    /// Sum of squared tracing factors (for the fairness stddev).
    pub tracing_factor_sq_sum: f64,
    /// CAS operations on packet sub-pools during this cycle.
    pub cas_ops: u64,
    /// Packet overflow events (§4.3; expected rare).
    pub overflows: u64,
    /// Objects deferred via the §5.2 allocation-bit protocol.
    pub deferred_objects: u64,

    // -- packets (§6.3) --
    /// High-water mark of packets simultaneously in use.
    pub packets_in_use_watermark: usize,
    /// High-water mark of occupied packet entries.
    pub packet_entries_watermark: usize,
}

impl CycleStats {
    /// Average tracing factor over the cycle's increments.
    pub fn tracing_factor(&self) -> f64 {
        if self.increments == 0 {
            0.0
        } else {
            self.tracing_factor_sum / self.increments as f64
        }
    }

    /// Standard deviation of tracing factors (Table 4 "fairness").
    pub fn fairness(&self) -> f64 {
        if self.increments < 2 {
            return 0.0;
        }
        let n = self.increments as f64;
        let mean = self.tracing_factor_sum / n;
        let var = (self.tracing_factor_sq_sum / n - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Total bytes traced concurrently (mutators + background).
    pub fn concurrent_traced_bytes(&self) -> u64 {
        self.mutator_traced_bytes + self.background_traced_bytes
    }

    /// CAS cost normalized by live KB at cycle end (Table 4 "cost").
    pub fn normalized_cas_cost(&self) -> f64 {
        if self.live_after_bytes == 0 {
            0.0
        } else {
            self.cas_ops as f64 / (self.live_after_bytes as f64 / 1024.0)
        }
    }

    /// Card-cleaning ratio: stop-the-world cards relative to concurrent
    /// cards (Table 2 "CC Rate"; the criterion wants the stop-the-world
    /// phase left with under 20% of the concurrent volume).
    pub fn cc_rate(&self) -> f64 {
        if self.cards_cleaned_concurrent == 0 {
            if self.cards_cleaned_stw == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.cards_cleaned_stw as f64 / self.cards_cleaned_concurrent as f64
        }
    }
}

/// The log of all completed cycles plus run-level aggregates.
#[derive(Clone, Debug, Default)]
pub struct GcLog {
    /// Completed cycles in order.
    pub cycles: Vec<CycleStats>,
}

impl GcLog {
    /// Average of `f` over cycles, or 0 for an empty log.
    pub fn avg(&self, f: impl Fn(&CycleStats) -> f64) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.cycles.iter().map(&f).sum::<f64>() / self.cycles.len() as f64
    }

    /// Maximum of `f` over cycles, or 0 for an empty log.
    pub fn max(&self, f: impl Fn(&CycleStats) -> f64) -> f64 {
        self.cycles.iter().map(&f).fold(0.0, f64::max)
    }

    /// Average modelled pause, ms.
    pub fn avg_pause_ms(&self) -> f64 {
        self.avg(|c| c.pause_ms)
    }

    /// Maximum modelled pause, ms.
    pub fn max_pause_ms(&self) -> f64 {
        self.max(|c| c.pause_ms)
    }

    /// Average modelled mark component, ms.
    pub fn avg_mark_ms(&self) -> f64 {
        self.avg(|c| c.mark_ms)
    }

    /// Average modelled sweep component, ms.
    pub fn avg_sweep_ms(&self) -> f64 {
        self.avg(|c| c.sweep_ms)
    }

    /// Average occupancy at cycle end (floating-garbage comparisons).
    pub fn avg_occupancy_after(&self) -> f64 {
        self.avg(|c| c.occupancy_after)
    }

    /// Average cards cleaned in the stop-the-world phase (Table 1
    /// "Average Final Card Cleaning").
    pub fn avg_final_card_cleaning(&self) -> f64 {
        self.avg(|c| c.cards_cleaned_stw as f64)
    }

    /// Fraction of cycles failing the Table 2 CC-Rate criterion
    /// (stop-the-world cleaning exceeding 20% of concurrent cleaning).
    pub fn cc_rate_failures(&self) -> f64 {
        self.fraction(|c| c.cc_rate() > 0.20)
    }

    /// Fraction of cycles failing the free-space criterion: the
    /// concurrent phase finished with more than 5% of `heap_bytes` free.
    pub fn free_space_failures(&self, heap_bytes: usize) -> f64 {
        self.fraction(|c| {
            c.trigger == Some(Trigger::ConcurrentDone)
                && c.free_at_stw_start as f64 > heap_bytes as f64 * 0.05
        })
    }

    /// Average free space at stop-the-world start over premature
    /// (concurrent-done) cycles, as a fraction of the heap.
    pub fn avg_premature_free(&self, heap_bytes: usize) -> f64 {
        let premature: Vec<_> = self
            .cycles
            .iter()
            .filter(|c| c.trigger == Some(Trigger::ConcurrentDone))
            .collect();
        if premature.is_empty() {
            return 0.0;
        }
        premature
            .iter()
            .map(|c| c.free_at_stw_start as f64 / heap_bytes as f64)
            .sum::<f64>()
            / premature.len() as f64
    }

    /// Average cards left unreached when halted by allocation failure.
    pub fn avg_cards_left(&self) -> f64 {
        self.avg(|c| c.cards_left as f64)
    }

    /// Fraction of cycles satisfying `pred`.
    pub fn fraction(&self, pred: impl Fn(&CycleStats) -> bool) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.cycles.iter().filter(|c| pred(c)).count() as f64 / self.cycles.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(pause: f64, factor_samples: &[f64]) -> CycleStats {
        CycleStats {
            pause_ms: pause,
            increments: factor_samples.len() as u64,
            tracing_factor_sum: factor_samples.iter().sum(),
            tracing_factor_sq_sum: factor_samples.iter().map(|f| f * f).sum(),
            ..CycleStats::default()
        }
    }

    #[test]
    fn aggregates_over_cycles() {
        let log = GcLog {
            cycles: vec![cycle(10.0, &[]), cycle(30.0, &[]), cycle(20.0, &[])],
        };
        assert!((log.avg_pause_ms() - 20.0).abs() < 1e-9);
        assert!((log.max_pause_ms() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_is_zero() {
        let log = GcLog::default();
        assert_eq!(log.avg_pause_ms(), 0.0);
        assert_eq!(log.max_pause_ms(), 0.0);
        assert_eq!(log.cc_rate_failures(), 0.0);
    }

    #[test]
    fn fairness_is_stddev_of_factors() {
        let c = cycle(0.0, &[1.0, 1.0, 1.0]);
        assert!(c.fairness() < 1e-9);
        let c = cycle(0.0, &[0.0, 2.0]);
        assert!((c.tracing_factor() - 1.0).abs() < 1e-9);
        assert!((c.fairness() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cc_rate_and_failures() {
        let mut good = CycleStats::default();
        good.cards_cleaned_concurrent = 100;
        good.cards_cleaned_stw = 10;
        assert!((good.cc_rate() - 0.1).abs() < 1e-9);
        let mut bad = CycleStats::default();
        bad.cards_cleaned_concurrent = 100;
        bad.cards_cleaned_stw = 50;
        let log = GcLog {
            cycles: vec![good, bad],
        };
        assert!((log.cc_rate_failures() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn free_space_failures_only_count_premature_cycles() {
        let heap = 100usize << 20;
        let mut premature_fail = CycleStats::default();
        premature_fail.trigger = Some(Trigger::ConcurrentDone);
        premature_fail.free_at_stw_start = 10 << 20; // 10% > 5%
        let mut premature_ok = CycleStats::default();
        premature_ok.trigger = Some(Trigger::ConcurrentDone);
        premature_ok.free_at_stw_start = 1 << 20;
        let mut halted = CycleStats::default();
        halted.trigger = Some(Trigger::AllocationFailure);
        halted.free_at_stw_start = 50 << 20; // irrelevant
        let log = GcLog {
            cycles: vec![premature_fail, premature_ok, halted],
        };
        assert!((log.free_space_failures(heap) - 1.0 / 3.0).abs() < 1e-9);
        assert!((log.avg_premature_free(heap) - 0.055).abs() < 1e-3);
    }

    #[test]
    fn normalized_cas_cost() {
        let mut c = CycleStats::default();
        c.cas_ops = 1000;
        c.live_after_bytes = 10 << 10; // 10 KB
        assert!((c.normalized_cas_cost() - 100.0).abs() < 1e-9);
    }
}
